//! Demonstrates the sampling machinery of Section IV: SIFT keypoints
//! (Fig. 6), k-medoids layout clustering, MST solutions (Fig. 3) and the
//! n-wise covering arrays (Fig. 4).
//!
//! ```sh
//! cargo run --release --example sampling_demo
//! ```

use ldmo::core::sampling::{sample_decompositions, sample_layouts, SamplingConfig};
use ldmo::decomp::covering::{covering_array, is_covering};
use ldmo::decomp::{minimum_spanning_forest, two_color_forest, ConflictGraph};
use ldmo::layout::cells;
use ldmo::layout::classify::{pattern_sets, ClassifyConfig};
use ldmo::layout::generate::{GeneratorConfig, LayoutGenerator};
use ldmo::vision::sift::{extract_features, SiftConfig};

fn main() {
    // --- SIFT features (Fig. 6) ------------------------------------------
    let aoi = cells::cell("AOI211_X1").expect("known cell");
    let img = aoi.rasterize_target(4.0);
    let feats = extract_features(&img, &SiftConfig::default());
    println!(
        "SIFT: {} keypoints on AOI211_X1 (112×112 image)",
        feats.len()
    );
    for f in feats.iter().take(5) {
        println!(
            "  keypoint at ({:.0}, {:.0}) scale {:.1} orientation {:.2} rad",
            f.pos.x, f.pos.y, f.scale, f.orientation
        );
    }

    // --- MST over the SP conflict graph (Fig. 3) -------------------------
    let sets = pattern_sets(&aoi, &ClassifyConfig::default());
    println!(
        "\nclassification: SP {:?}  VP {:?}  NP {:?}",
        sets.sp, sets.vp, sets.np
    );
    let graph = ConflictGraph::build(&aoi, &sets.sp, 80.0);
    let forest = minimum_spanning_forest(&graph);
    println!(
        "conflict graph: {} vertices, {} edges -> {} components, MST weight {:.0} nm",
        graph.vertex_count(),
        graph.edge_count(),
        forest.component_count,
        forest.total_weight()
    );
    let (colors, _) = two_color_forest(&forest);
    println!("MST two-coloring: {colors:?}");

    // --- n-wise covering arrays (Fig. 4) ----------------------------------
    for (k, t) in [(4usize, 2usize), (7, 3)] {
        let rows = covering_array(k, t);
        assert!(is_covering(&rows, k, t));
        println!(
            "\n{t}-wise covering array over {k} binary factors ({} rows):",
            rows.len()
        );
        for row in &rows {
            println!("  {row:?}");
        }
    }

    // --- end-to-end sampling ----------------------------------------------
    let mut generator = LayoutGenerator::new(GeneratorConfig::default(), 7);
    let pool = generator.generate_dataset(16);
    let cfg = SamplingConfig {
        clusters: 4,
        per_cluster: 2,
        ..SamplingConfig::default()
    };
    let picked = sample_layouts(&pool, &cfg);
    println!(
        "\nlayout sampling: {} of {} layouts selected (k-medoids, {} clusters)",
        picked.len(),
        pool.len(),
        cfg.clusters
    );
    let decomps = sample_decompositions(&pool[picked[0]], &cfg);
    println!(
        "decomposition sampling for layout {}: {} candidates (3-wise)",
        picked[0],
        decomps.len()
    );
}
