//! The complete Fig. 2 flow with a CNN predictor, compared on the spot
//! against the litho-proxy and random selectors.
//!
//! ```sh
//! cargo run --release --example full_flow -- [predictor.bin]
//! ```
//!
//! When a weights file (from `train_predictor`) is given it is loaded;
//! otherwise a small predictor is trained inline first (a few minutes).

use ldmo::core::dataset::{build_dataset, DatasetConfig, SamplerKind};
use ldmo::core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo::core::predictor::PrintabilityPredictor;
use ldmo::core::sampling::SamplingConfig;
use ldmo::core::trainer::{train, TrainConfig};
use ldmo::layout::cells;
use ldmo::layout::generate::{GeneratorConfig, LayoutGenerator};

fn make_predictor(weights: Option<&str>) -> PrintabilityPredictor {
    let mut predictor = PrintabilityPredictor::lite(7);
    if let Some(path) = weights {
        match predictor.load(path) {
            Ok(()) => {
                eprintln!("loaded predictor weights from {path}");
                return predictor;
            }
            Err(e) => eprintln!("could not load {path} ({e}); training inline"),
        }
    }
    eprintln!("training a small predictor inline…");
    let mut generator = LayoutGenerator::new(GeneratorConfig::default(), 2020);
    let layouts = generator.generate_dataset(24);
    let scfg = SamplingConfig {
        clusters: 4,
        per_cluster: 2,
        max_per_layout: 6,
        ..SamplingConfig::default()
    };
    let dataset = build_dataset(
        &layouts,
        &SamplerKind::Engineered,
        &scfg,
        &DatasetConfig::default(),
    );
    let _ = train(
        &mut predictor,
        &dataset,
        &TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        },
    );
    predictor
}

fn main() {
    let weights = std::env::args().nth(1);
    let predictor = make_predictor(weights.as_deref());

    let mut strategies: Vec<(&str, LdmoFlow)> = vec![
        (
            "CNN (ours)",
            LdmoFlow::new(
                FlowConfig::default(),
                SelectionStrategy::Cnn(Box::new(predictor)),
            ),
        ),
        (
            "litho proxy",
            LdmoFlow::new(FlowConfig::default(), SelectionStrategy::LithoProxy),
        ),
        (
            "random",
            LdmoFlow::new(FlowConfig::default(), SelectionStrategy::Random { seed: 3 }),
        ),
    ];

    println!(
        "\n{:<12} | {:>11} | {:>4} | {:>5} | {:>8} | {:>8}",
        "cell", "strategy", "EPE#", "viol", "L2", "time (s)"
    );
    for name in ["BUF_X1", "NAND3_X2", "AOI211_X1"] {
        let layout = cells::cell(name).expect("known cell");
        for (label, flow) in &mut strategies {
            let result = flow.run(&layout);
            println!(
                "{name:<12} | {label:>11} | {:>4} | {:>5} | {:>8.1} | {:>8.2}",
                result.outcome.epe_violations(),
                result.outcome.violations.count(),
                result.outcome.l2,
                result.timing.total().as_secs_f64()
            );
        }
    }
}
