//! Train the CNN printability predictor (the paper's Fig. 5 pipeline) and
//! save its weights.
//!
//! ```sh
//! cargo run --release --example train_predictor -- [pool_size] [out.bin]
//! ```
//!
//! The defaults keep the run to a few minutes on one CPU core; scale
//! `pool_size` up for a better predictor.

use ldmo::core::dataset::{build_dataset, DatasetConfig, SamplerKind};
use ldmo::core::predictor::PrintabilityPredictor;
use ldmo::core::sampling::SamplingConfig;
use ldmo::core::trainer::{evaluate_mae, train, TrainConfig};
use ldmo::layout::generate::{GeneratorConfig, LayoutGenerator};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool_size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "predictor.bin".to_owned());

    // 1. layout pool (stand-in for the paper's 8000-layout corpus)
    let mut generator = LayoutGenerator::new(GeneratorConfig::default(), 2020);
    let layouts = generator.generate_dataset(pool_size);
    eprintln!("generated {} DRC-clean layouts", layouts.len());

    // 2. sample representatives (SIFT + k-medoids) and decompositions
    //    (MST + 3-wise), label by full ILT — the expensive step
    let scfg = SamplingConfig {
        clusters: 6,
        per_cluster: 2,
        max_per_layout: 8,
        ..SamplingConfig::default()
    };
    let dcfg = DatasetConfig::default();
    let label_start = Instant::now();
    let dataset = build_dataset(&layouts, &SamplerKind::Engineered, &scfg, &dcfg).augmented();
    eprintln!(
        "labeled {} (layout, decomposition) pairs in {:.1}s (incl. 4x symmetry augmentation)",
        dataset.len(),
        label_start.elapsed().as_secs_f64()
    );

    // 3. train the ResNet-lite regressor with Adam + MAE
    let mut predictor = PrintabilityPredictor::lite(7);
    let tcfg = TrainConfig {
        epochs: 30,
        batch_size: 8,
        lr: 1e-3,
        seed: 1,
        ..TrainConfig::default()
    };
    let train_start = Instant::now();
    let history = train(&mut predictor, &dataset, &tcfg);
    println!(
        "trained {} epochs in {:.1}s; MAE {:.3} -> {:.3}",
        tcfg.epochs,
        train_start.elapsed().as_secs_f64(),
        history.epoch_mae.first().copied().unwrap_or(f32::NAN),
        history.final_mae().unwrap_or(f32::NAN)
    );
    println!("eval MAE: {:.3}", evaluate_mae(&mut predictor, &dataset));

    match predictor.save(&out_path) {
        Ok(()) => println!("weights saved to {out_path}"),
        Err(e) => eprintln!("failed to save weights: {e}"),
    }
}
