//! Process-window analysis of optimized masks: evaluate EPE and PV band
//! across dose/defocus corners (the robustness dimension MOSAIC [6] —
//! the paper's ILT reference — optimizes for).
//!
//! ```sh
//! cargo run --release --example process_window
//! ```

use ldmo::ilt::{optimize, IltConfig};
use ldmo::layout::cells;
use ldmo::litho::process::{print_at_corner, process_window_report, ProcessCorner};
use ldmo::litho::{contour_length, measure_epe};

fn main() {
    let layout = cells::cell("BUF_X1").expect("known cell");
    let cfg = IltConfig::default();

    eprintln!("optimizing BUF_X1 (checkerboard decomposition) …");
    let out = optimize(&layout, &[0, 1, 1, 0], &cfg);
    println!(
        "nominal: EPE violations = {}, L2 = {:.1}",
        out.epe_violations(),
        out.l2
    );

    let corners = ProcessCorner::standard_set(0.08, 0.12);
    let report = process_window_report(&out.masks[0], &out.masks[1], &corners, &cfg.litho);
    println!("\nprocess corners (dose ±8%, defocus +12%):");
    println!(
        "{:>8} {:>9} | {:>12} | {:>6} | {:>14}",
        "dose", "defocus", "printed px", "EPE#", "contour len px"
    );
    for (corner, &area) in corners.iter().zip(&report.printed_area_px) {
        let printed = print_at_corner(&out.masks[0], &out.masks[1], *corner, &cfg.litho);
        let epe = measure_epe(&printed, layout.patterns(), &cfg.litho);
        println!(
            "{:>8.2} {:>9.2} | {:>12} | {:>6} | {:>14.1}",
            corner.dose,
            corner.defocus,
            area,
            epe.violations(),
            contour_length(&printed, cfg.litho.print_level)
        );
    }
    println!("\nPV band (dose swing): {} px", report.pvband_px);
}
