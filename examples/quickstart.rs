//! Quickstart: decompose one layout and optimize its masks.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ldmo::core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo::decomp::{generate_candidates, DecompConfig};
use ldmo::geom::Rect;
use ldmo::layout::classify::{classify_patterns, ClassifyConfig};
use ldmo::layout::Layout;

fn main() {
    // A small contact layout: two close pairs (must be split across masks)
    // plus one free contact.
    let layout = Layout::new(
        Rect::new(0, 0, 448, 448),
        vec![
            Rect::square(40, 40, 64),
            Rect::square(160, 40, 64),  // 56 nm from the first: SP
            Rect::square(40, 192, 64),  // 88 nm above the first: VP
            Rect::square(160, 192, 64), // completes a 2×2 with mixed gaps
            Rect::square(330, 330, 64), // isolated: NP
        ],
    );

    println!("layout: {} contact patterns", layout.len());
    for (i, class) in classify_patterns(&layout, &ClassifyConfig::default())
        .iter()
        .enumerate()
    {
        println!("  pattern {i}: {class:?}");
    }

    let candidates = generate_candidates(&layout, &DecompConfig::default());
    println!(
        "\n{} decomposition candidates (MST + n-wise):",
        candidates.len()
    );
    for c in &candidates {
        println!("  {c:?}");
    }

    // Run the full LDMO flow. The litho-proxy selector needs no training;
    // see examples/full_flow.rs for the CNN-driven version.
    let mut flow = LdmoFlow::new(FlowConfig::default(), SelectionStrategy::LithoProxy);
    let result = flow.run(&layout);

    println!("\nselected decomposition: {:?}", result.assignment);
    println!("attempts:               {}", result.attempts);
    println!(
        "EPE violations:         {}",
        result.outcome.epe_violations()
    );
    println!(
        "print violations:       {}",
        result.outcome.violations.count()
    );
    println!("L2 error:               {:.1}", result.outcome.l2);
    println!(
        "time: {:.2}s selection + {:.2}s mask optimization",
        result.timing.decomposition_selection.as_secs_f64(),
        result.timing.mask_optimization.as_secs_f64()
    );
}
