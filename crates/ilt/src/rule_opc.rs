//! Rule-based OPC — the classic pre-ILT mask correction.
//!
//! Before model-based inverse lithography, masks were corrected with
//! *rules*: bias every edge outward by a table-driven amount depending on
//! the feature's local environment (isolated features get more bias,
//! dense ones less), and add serifs on corners. This module implements a
//! rectangle-level rule-based corrector as an additional baseline: it is
//! orders of magnitude faster than ILT but plateaus at a much worse EPE —
//! the gap that motivated model-based OPC in the first place.

use crate::engine::IltConfig;
use ldmo_geom::{Grid, Rect};
use ldmo_layout::Layout;
use ldmo_litho::{
    combine_prints, detect_violations, measure_epe, simulate_print, EpeReport, KernelBank,
    ViolationReport,
};

/// Bias rules, in nm.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleTable {
    /// Edge bias for isolated features (nearest neighbour beyond
    /// `dense_threshold`).
    pub iso_bias: i32,
    /// Edge bias for dense features.
    pub dense_bias: i32,
    /// Neighbour distance (nm) separating "dense" from "isolated".
    pub dense_threshold: f64,
}

impl Default for RuleTable {
    fn default() -> Self {
        RuleTable {
            // the bias magnitudes match the ILT mask-rule corridor: under
            // our optics an isolated 64 nm contact needs nearly the full
            // ±28 nm growth to reach the resist threshold
            iso_bias: 28,
            dense_bias: 16,
            dense_threshold: 98.0,
        }
    }
}

/// Outcome of a rule-based OPC evaluation.
#[derive(Debug, Clone)]
pub struct RuleOpcOutcome {
    /// Biased masks, rasterized.
    pub masks: Vec<Grid>,
    /// Combined print of the biased masks.
    pub printed: Grid,
    /// EPE report.
    pub epe: EpeReport,
    /// L2 error against the target.
    pub l2: f64,
    /// Print violations.
    pub violations: ViolationReport,
}

impl RuleOpcOutcome {
    /// EPE violation count.
    pub fn epe_violations(&self) -> usize {
        self.epe.violations()
    }
}

/// Applies the bias rules to every pattern: each rectangle grows by its
/// environment-dependent bias on all sides (clamped so biased same-mask
/// rectangles never overlap).
pub fn biased_patterns(layout: &Layout, assignment: &[u8], rules: &RuleTable) -> Vec<Rect> {
    let gaps = layout.gap_matrix();
    let n = layout.len();
    (0..n)
        .map(|i| {
            // nearest same-mask neighbour decides the bias class; the bias
            // may consume at most a third of that gap so neighbours keep
            // separation even after both grow
            let same_mask_gap = (0..n)
                .filter(|&j| j != i && assignment[j] == assignment[i])
                .map(|j| gaps[i][j])
                .fold(f64::INFINITY, f64::min);
            let any_gap = gaps[i].iter().copied().fold(f64::INFINITY, f64::min);
            let class_bias = if any_gap > rules.dense_threshold {
                rules.iso_bias
            } else {
                rules.dense_bias
            };
            let cap = if same_mask_gap.is_finite() {
                (same_mask_gap / 3.0).floor() as i32
            } else {
                i32::MAX
            };
            layout.patterns()[i].expanded(class_bias.min(cap).max(0))
        })
        .collect()
}

/// Runs rule-based OPC on a decomposition and evaluates the print.
///
/// # Panics
///
/// Panics if the assignment length mismatches the layout.
pub fn rule_opc(
    layout: &Layout,
    assignment: &[u8],
    rules: &RuleTable,
    cfg: &IltConfig,
) -> RuleOpcOutcome {
    assert_eq!(
        assignment.len(),
        layout.len(),
        "assignment must cover every pattern"
    );
    let num_masks = assignment
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    let bank = KernelBank::paper_bank(&cfg.litho);
    let scale = cfg.litho.nm_per_px;
    let biased = biased_patterns(layout, assignment, rules);
    let biased_layout = Layout::new(layout.window(), biased);
    let target = layout.rasterize_target(scale);
    let masks: Vec<Grid> = (0..num_masks)
        .map(|m| {
            biased_layout
                .rasterize_mask(assignment, m as u8, scale)
                .expect("assignment length checked")
        })
        .collect();
    let prints: Vec<Grid> = masks
        .iter()
        .map(|m| simulate_print(m, &bank, &cfg.litho))
        .collect();
    let printed = combine_prints(&prints);
    let epe = measure_epe(&printed, layout.patterns(), &cfg.litho);
    let l2 = printed.l2_dist_sq(&target).expect("shapes match");
    let violations = detect_violations(&printed, layout.patterns(), cfg.litho.print_level, scale);
    RuleOpcOutcome {
        masks,
        printed,
        epe,
        l2,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;

    fn pair_layout(gap: i32) -> Layout {
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 192, 64),
                Rect::square(120 + 64 + gap, 192, 64),
            ],
        )
    }

    #[test]
    fn biasing_respects_same_mask_spacing() {
        let layout = pair_layout(90);
        let biased = biased_patterns(&layout, &[0, 0], &RuleTable::default());
        // both grew, but still at least a third of the gap remains
        assert!(biased[0].gap_to(&biased[1]) >= 30.0 - 1e-9);
        for (orig, big) in layout.patterns().iter().zip(&biased) {
            assert!(big.width() >= orig.width());
        }
    }

    #[test]
    fn isolated_features_get_more_bias_than_dense() {
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(60, 60, 64),
                Rect::square(190, 60, 64),  // 66 nm from the first: dense
                Rect::square(320, 320, 64), // far away: isolated
            ],
        );
        let rules = RuleTable::default();
        let biased = biased_patterns(&layout, &[0, 1, 0], &rules);
        let growth = |i: usize| biased[i].width() - layout.patterns()[i].width();
        assert!(growth(2) > growth(0), "isolated should grow more");
    }

    #[test]
    fn rule_opc_improves_over_drawn_masks() {
        let layout = pair_layout(160);
        let cfg = IltConfig::default();
        let corrected = rule_opc(&layout, &[0, 1], &RuleTable::default(), &cfg);
        // drawn masks: zero bias
        let none = RuleTable {
            iso_bias: 0,
            dense_bias: 0,
            ..RuleTable::default()
        };
        let drawn = rule_opc(&layout, &[0, 1], &none, &cfg);
        assert!(
            corrected.epe_violations() < drawn.epe_violations(),
            "biasing did not help: {} vs {}",
            corrected.epe_violations(),
            drawn.epe_violations()
        );
    }

    #[test]
    fn ilt_beats_rule_based_opc() {
        // the reason model-based OPC exists: on anything non-trivial the
        // rule table plateaus above the ILT result
        let layout = pair_layout(90);
        let cfg = IltConfig::default();
        let rule = rule_opc(&layout, &[0, 0], &RuleTable::default(), &cfg);
        let ilt = optimize(&layout, &[0, 0], &cfg);
        assert!(
            ilt.epe_violations() <= rule.epe_violations(),
            "ILT (epe {}) should be at least as good as rules (epe {})",
            ilt.epe_violations(),
            rule.epe_violations()
        );
    }

    #[test]
    fn multi_mask_assignments_supported() {
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 120, 64),
                Rect::square(248, 120, 64),
                Rect::square(184, 230, 64),
            ],
        );
        let out = rule_opc(
            &layout,
            &[0, 1, 2],
            &RuleTable::default(),
            &IltConfig::default(),
        );
        assert_eq!(out.masks.len(), 3);
    }
}
