#![warn(missing_docs)]
//! # ldmo-ilt — inverse lithography for double patterning
//!
//! The gradient-descent ILT engine of the paper's Section II/III-C:
//!
//! - masks are relaxed through the sigmoid of Eq. 1,
//!   `M_i = sigmoid(θm · P_i)` with `θm = 8`, so the unbounded parameters
//!   `P_i` can be optimized by plain gradient descent;
//! - the printed image is formed by the [`ldmo_litho`] forward model
//!   (aerial intensity → Eq. 2 resist → Eq. 3 double-pattern union);
//! - each iteration descends the L2 error `‖T − T′‖²`
//!   (`P_i ← P_i − stepSize · g`);
//! - every `check_interval = 3` iterations the engine looks for print
//!   violations and can abort so the caller selects another decomposition
//!   (Fig. 2's feedback edge);
//! - the iteration cap is 29, as in the paper.
//!
//! The per-iteration [`IterationStats`] trajectory is what Fig. 1(b) plots.
//!
//! ```no_run
//! use ldmo_geom::Rect;
//! use ldmo_layout::Layout;
//! use ldmo_ilt::{optimize, IltConfig};
//!
//! let layout = Layout::new(
//!     Rect::new(0, 0, 448, 448),
//!     vec![Rect::square(80, 80, 64), Rect::square(240, 240, 64)],
//! );
//! let outcome = optimize(&layout, &[0, 1], &IltConfig::default());
//! println!("EPE violations: {}", outcome.epe.violations());
//! ```

mod engine;
mod gradient;
pub mod multi;
pub mod rule_opc;

pub use engine::{
    evaluate_unoptimized, optimize, IltConfig, IltContext, IltOutcome, IltScratch, IltSession,
    IterationStats, ViolationPolicy,
};
// Guard vocabulary used in this crate's public API (IltConfig carries the
// policy and budget; IltOutcome carries the health verdict).
pub use gradient::{
    forward_multi, forward_multi_into, forward_pair, l2_gradient_multi, l2_gradient_multi_into,
    l2_gradient_pair, MultiForward, PairForward,
};
pub use ldmo_guard::{Budget, DegradeReason, GuardPolicy, OutcomeHealth};
pub use multi::{greedy_coloring, optimize_multi, MultiIltOutcome};
