//! Multiple-patterning generalization of the ILT engine.
//!
//! The paper's framework is formulated for double patterning (Eqs. 3-5),
//! but its introduction motivates general MPL; triple patterning is the
//! industrially relevant next step (the paper's refs [1], [3], [4]). This
//! module generalizes the forward model and gradient to `k` masks:
//!
//! `T = min(Σ_i T_i, 1)` with one sigmoid-relaxed parameter field per mask,
//! plus a greedy conflict-graph coloring to produce `k`-mask assignments
//! (the [`greedy_coloring`] decomposition).

use crate::engine::IltConfig;
use crate::gradient::{forward_multi_into, l2_gradient_multi_into, PairForward};
use ldmo_geom::Grid;
use ldmo_layout::{Layout, MaskAssignment};
use ldmo_litho::{
    combine_prints, detect_violations, measure_epe, simulate_print, EpeReport, KernelBank,
    LithoWorkspace, ViolationReport,
};

/// Outcome of a multi-mask ILT run.
#[derive(Debug, Clone)]
pub struct MultiIltOutcome {
    /// Final binarized masks, one per mask index.
    pub masks: Vec<Grid>,
    /// Final combined print.
    pub printed: Grid,
    /// EPE report of the final print.
    pub epe: EpeReport,
    /// Final L2 error.
    pub l2: f64,
    /// Print violations of the final print.
    pub violations: ViolationReport,
    /// Iterations executed.
    pub iterations_run: usize,
}

impl MultiIltOutcome {
    /// EPE violation count.
    pub fn epe_violations(&self) -> usize {
        self.epe.violations()
    }
}

/// Runs `k`-mask ILT on `layout` under `assignment` (`assignment[i] < k`).
///
/// # Panics
///
/// Panics if `num_masks == 0`, the assignment length mismatches, or an
/// assignment entry is out of range.
pub fn optimize_multi(
    layout: &Layout,
    assignment: &[u8],
    num_masks: usize,
    cfg: &IltConfig,
) -> MultiIltOutcome {
    assert!(num_masks >= 1, "need at least one mask");
    assert_eq!(
        assignment.len(),
        layout.len(),
        "assignment must cover every pattern"
    );
    assert!(
        assignment.iter().all(|&m| (m as usize) < num_masks),
        "assignment references a mask beyond num_masks"
    );
    let bank = KernelBank::paper_bank(&cfg.litho);
    let scale = cfg.litho.nm_per_px;
    let target = layout.rasterize_target(scale);
    let p0 = 0.25f32;
    let mut ps: Vec<Grid> = Vec::with_capacity(num_masks);
    let mut corridors: Vec<Grid> = Vec::with_capacity(num_masks);
    for m in 0..num_masks {
        let drawn = layout
            .rasterize_mask(assignment, m as u8, scale)
            .expect("assignment length checked");
        ps.push(drawn.map(|v| if v > 0.5 { p0 } else { -p0 }));
        corridors.push(
            layout
                .rasterize_mask_expanded(assignment, m as u8, scale, cfg.mrc_expand_nm)
                .expect("assignment length checked"),
        );
    }
    // all iteration buffers allocated once, outside the hot loop
    let (w, h) = target.shape();
    let mut ws = LithoWorkspace::new(w, h);
    let mut fwd = PairForward::zeros(w, h, num_masks, bank.kernels().len());
    let mut grads: Vec<Grid> = (0..num_masks).map(|_| Grid::zeros(w, h)).collect();
    for _ in 0..cfg.max_iterations {
        forward_multi_into(
            &ps,
            &target,
            cfg.theta_m,
            &bank,
            &cfg.litho,
            &mut ws,
            &mut fwd,
        );
        l2_gradient_multi_into(
            &fwd,
            &target,
            cfg.theta_m,
            &bank,
            &cfg.litho,
            &mut ws,
            &mut grads,
        );
        for (p, g) in ps.iter_mut().zip(&grads) {
            descend(p, g, cfg.step_size);
        }
        for (p, c) in ps.iter_mut().zip(&corridors) {
            clamp(p, c);
        }
    }
    // final evaluation with binarized masks
    let masks: Vec<Grid> = ps
        .iter()
        .map(|p| p.map(|v| if v > 0.0 { 1.0 } else { 0.0 }))
        .collect();
    let prints: Vec<Grid> = masks
        .iter()
        .map(|m| simulate_print(m, &bank, &cfg.litho))
        .collect();
    let printed = combine_prints(&prints);
    let epe = measure_epe(&printed, layout.patterns(), &cfg.litho);
    let l2 = printed.l2_dist_sq(&target).expect("shapes match");
    let violations = detect_violations(&printed, layout.patterns(), cfg.litho.print_level, scale);
    MultiIltOutcome {
        masks,
        printed,
        epe,
        l2,
        violations,
        iterations_run: cfg.max_iterations,
    }
}

fn descend(p: &mut Grid, g: &Grid, step: f32) {
    let max_abs = g.as_slice().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
    if max_abs <= f32::EPSILON {
        return;
    }
    let scale = step / max_abs;
    for (v, &d) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
        *v -= scale * d;
    }
}

fn clamp(p: &mut Grid, corridor: &Grid) {
    for (v, &c) in p.as_mut_slice().iter_mut().zip(corridor.as_slice()) {
        if c < 0.5 {
            *v = -1.0;
        }
    }
}

/// Greedy `k`-mask decomposition of the conflict graph: patterns in
/// most-constrained-first order take the mask maximizing the minimum
/// same-mask gap (ties to the lower index). The `k = 2` case coincides
/// with the SUALD-style baseline.
///
/// # Panics
///
/// Panics if `num_masks == 0`.
pub fn greedy_coloring(layout: &Layout, num_masks: usize) -> MaskAssignment {
    assert!(num_masks >= 1, "need at least one mask");
    let n = layout.len();
    let gaps = layout.gap_matrix();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ga = gaps[a].iter().copied().fold(f64::INFINITY, f64::min);
        let gb = gaps[b].iter().copied().fold(f64::INFINITY, f64::min);
        ga.total_cmp(&gb)
    });
    let mut assignment = vec![u8::MAX; n];
    for &p in &order {
        let mut best_mask = 0u8;
        let mut best_gap = f64::NEG_INFINITY;
        for m in 0..num_masks as u8 {
            let gap = (0..n)
                .filter(|&q| q != p && assignment[q] == m)
                .map(|q| gaps[p][q])
                .fold(f64::INFINITY, f64::min);
            if gap > best_gap {
                best_gap = gap;
                best_mask = m;
            }
        }
        assignment[p] = best_mask;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    /// Three contacts in a mutual-conflict triangle (all gaps ≤ 80):
    /// impossible for two masks, trivial for three.
    fn triangle() -> Layout {
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 120, 64),
                Rect::square(248, 120, 64),
                Rect::square(184, 230, 64),
            ],
        )
    }

    fn fast_cfg() -> IltConfig {
        IltConfig::default()
    }

    #[test]
    fn greedy_coloring_uses_all_three_masks_on_triangle() {
        let a = greedy_coloring(&triangle(), 3);
        let set: std::collections::HashSet<u8> = a.iter().copied().collect();
        assert_eq!(set.len(), 3, "triangle needs three masks: {a:?}");
    }

    #[test]
    fn greedy_two_mask_matches_layout_size() {
        let a = greedy_coloring(&triangle(), 2);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&m| m < 2));
    }

    #[test]
    fn triple_patterning_beats_double_on_triangle() {
        let layout = triangle();
        let tpl = optimize_multi(&layout, &greedy_coloring(&layout, 3), 3, &fast_cfg());
        let dpl = optimize_multi(&layout, &greedy_coloring(&layout, 2), 2, &fast_cfg());
        assert!(
            tpl.epe_violations() < dpl.epe_violations()
                || tpl.violations.count() < dpl.violations.count(),
            "TPL (epe {}, viol {}) should beat DPL (epe {}, viol {}) on a triangle",
            tpl.epe_violations(),
            tpl.violations.count(),
            dpl.epe_violations(),
            dpl.violations.count()
        );
        assert_eq!(
            tpl.epe_violations(),
            0,
            "three well-separated masks must print cleanly"
        );
    }

    #[test]
    fn single_mask_case_degenerates_gracefully() {
        let layout = Layout::new(Rect::new(0, 0, 448, 448), vec![Rect::square(192, 192, 64)]);
        let out = optimize_multi(&layout, &[0], 1, &fast_cfg());
        assert_eq!(out.masks.len(), 1);
        assert_eq!(out.epe_violations(), 0);
    }

    #[test]
    fn multi_matches_pair_engine_for_two_masks() {
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(120, 192, 64), Rect::square(280, 192, 64)],
        );
        let cfg = IltConfig {
            max_iterations: 6,
            ..fast_cfg()
        };
        let multi = optimize_multi(&layout, &[0, 1], 2, &cfg);
        let pair = crate::optimize(&layout, &[0, 1], &cfg);
        assert_eq!(multi.epe_violations(), pair.epe_violations());
        assert!((multi.l2 - pair.l2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "beyond num_masks")]
    fn out_of_range_assignment_rejected() {
        let _ = optimize_multi(&triangle(), &[0, 1, 2], 2, &fast_cfg());
    }
}
