//! Forward pass and analytic gradient of the double-patterning L2 objective.
//!
//! With `M_i = sigmoid(θm P_i)` (Eq. 1), `I_i = Σ_k w_k (M_i ⊗ h_k)²`,
//! `T_i = sigmoid(θz (I_i − I_th))` (Eq. 2) and `T = min(T1 + T2, 1)`
//! (Eq. 3), the gradient of `L = ‖T − T′‖²` with respect to `P_i` is
//!
//! ```text
//! ∂L/∂T   = 2 (T − T′)                      (zero where T1+T2 ≥ 1, the
//!                                            flat branch of the min)
//! ∂T/∂I_i = θz T_i (1 − T_i)
//! ∂I_i/∂M_i = Σ_k 2 w_k  (G ⊙ (M_i ⊗ h_k)) ⊗ h_k    (h_k symmetric)
//! ∂M_i/∂P_i = θm M_i (1 − M_i)
//! ```
//!
//! All products `⊙` are element-wise; the back-convolution uses the same
//! separable fast path as the forward pass.

use ldmo_geom::Grid;
use ldmo_litho::{
    aerial_image_into, combine_prints_into, resist_threshold_into, sigmoid, AerialImage,
    KernelBank, LithoConfig, LithoWorkspace,
};

/// Forward-pass artifacts for a set of masks (two for the paper's double
/// patterning; `k` for the MPL extension), reused by the gradient.
#[derive(Debug, Clone)]
pub struct PairForward {
    /// Relaxed masks `M_i = sigmoid(θm P_i)`.
    pub masks: Vec<Grid>,
    /// Aerial images with per-kernel fields.
    pub aerials: Vec<AerialImage>,
    /// Per-mask resist images `T_i`.
    pub resists: Vec<Grid>,
    /// Combined print `T = min(Σ T_i, 1)`.
    pub printed: Grid,
    /// Objective value `‖T − T′‖²`.
    pub l2: f64,
}

impl PairForward {
    /// Preallocates the forward-pass buffers for `num_masks` masks on
    /// `width × height` grids under a bank of `num_kernels` kernels, for
    /// use with [`forward_multi_into`].
    pub fn zeros(width: usize, height: usize, num_masks: usize, num_kernels: usize) -> Self {
        PairForward {
            masks: (0..num_masks).map(|_| Grid::zeros(width, height)).collect(),
            aerials: (0..num_masks)
                .map(|_| AerialImage::zeros(width, height, num_kernels))
                .collect(),
            resists: (0..num_masks).map(|_| Grid::zeros(width, height)).collect(),
            printed: Grid::zeros(width, height),
            l2: f64::NAN,
        }
    }
}

/// The MPL-extension alias: the structure is identical for any mask count.
pub type MultiForward = PairForward;

/// Runs the forward model for any number of mask parameter fields.
///
/// Thin wrapper over [`forward_multi_into`] with transient buffers; hot
/// loops should hold a [`PairForward`] and a [`LithoWorkspace`] and call
/// the `_into` variant.
///
/// # Panics
///
/// Panics if `ps` is empty.
pub fn forward_multi(
    ps: &[Grid],
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> MultiForward {
    assert!(!ps.is_empty(), "need at least one mask");
    let (w, h) = ps[0].shape();
    let mut ws = LithoWorkspace::new(w, h);
    let mut out = PairForward::zeros(w, h, ps.len(), bank.kernels().len());
    forward_multi_into(ps, target, theta_m, bank, litho, &mut ws, &mut out);
    out
}

/// Buffer-reuse variant of [`forward_multi`]: every artifact is written
/// into `out` (fully overwritten). Allocation-free.
///
/// # Panics
///
/// Panics if `ps` is empty or `out`/`ws` were not allocated for this mask
/// count, kernel count and grid shape.
pub fn forward_multi_into(
    ps: &[Grid],
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
    ws: &mut LithoWorkspace,
    out: &mut MultiForward,
) {
    assert!(!ps.is_empty(), "need at least one mask");
    assert_eq!(
        out.masks.len(),
        ps.len(),
        "forward buffer mask count mismatch"
    );
    for (mask, p) in out.masks.iter_mut().zip(ps) {
        mask.map_from(p, |v| sigmoid(theta_m * v));
    }
    for (aerial, mask) in out.aerials.iter_mut().zip(&out.masks) {
        aerial_image_into(mask, bank, &mut ws.conv, aerial);
    }
    for (resist, aerial) in out.resists.iter_mut().zip(&out.aerials) {
        resist_threshold_into(&aerial.intensity, litho, resist);
    }
    combine_prints_into(&out.resists, &mut out.printed);
    out.l2 = out.printed.l2_dist_sq(target).expect("shapes match");
}

/// Runs the forward model for parameters `(p1, p2)` against `target`.
pub fn forward_pair(
    p1: &Grid,
    p2: &Grid,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> PairForward {
    forward_multi(&[p1.clone(), p2.clone()], target, theta_m, bank, litho)
}

/// Computes `∂L/∂P_i` for every mask of a forward pass.
///
/// Thin wrapper over [`l2_gradient_multi_into`] with transient buffers.
pub fn l2_gradient_multi(
    fwd: &MultiForward,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> Vec<Grid> {
    let (w, h) = fwd.printed.shape();
    let mut ws = LithoWorkspace::new(w, h);
    let mut grads: Vec<Grid> = (0..fwd.masks.len()).map(|_| Grid::zeros(w, h)).collect();
    l2_gradient_multi_into(fwd, target, theta_m, bank, litho, &mut ws, &mut grads);
    grads
}

/// Buffer-reuse variant of [`l2_gradient_multi`]: the per-mask gradients
/// are written into `grads` (fully overwritten). Allocation-free.
///
/// # Panics
///
/// Panics if `grads.len() != fwd.masks.len()` or shapes differ.
pub fn l2_gradient_multi_into(
    fwd: &MultiForward,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
    ws: &mut LithoWorkspace,
    grads: &mut [Grid],
) {
    assert_eq!(
        grads.len(),
        fwd.masks.len(),
        "gradient buffer mask count mismatch"
    );
    // ∂L/∂T gated by the min branch: zero where Σ T_i ≥ 1
    {
        let t = fwd.printed.as_slice();
        let tp = target.as_slice();
        let out = ws.grad.dl_dt.as_mut_slice();
        assert_eq!(t.len(), out.len(), "output shape mismatch");
        for i in 0..out.len() {
            let sum: f32 = fwd.resists.iter().map(|r| r.as_slice()[i]).sum();
            let gate = if sum < 1.0 { 1.0 } else { 0.0 };
            out[i] = 2.0 * (t[i] - tp[i]) * gate;
        }
    }
    for (idx, out) in grads.iter_mut().enumerate() {
        grad_one_mask_into(fwd, idx, theta_m, bank, litho, ws, out);
    }
}

/// Computes `(∂L/∂P1, ∂L/∂P2)` from a forward pass.
pub fn l2_gradient_pair(
    fwd: &PairForward,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> (Grid, Grid) {
    let mut grads = l2_gradient_multi(fwd, target, theta_m, bank, litho);
    assert_eq!(grads.len(), 2, "pair gradient expects two masks");
    let g2 = grads.pop().expect("two masks");
    let g1 = grads.pop().expect("two masks");
    (g1, g2)
}

/// Workspace-backed gradient of one mask. Expects `ws.grad.dl_dt` to hold
/// the gated `∂L/∂T`; uses the remaining scratch grids and overwrites `out`.
fn grad_one_mask_into(
    fwd: &PairForward,
    idx: usize,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
    ws: &mut LithoWorkspace,
    out: &mut Grid,
) {
    assert_eq!(out.shape(), ws.grad.dl_dt.shape(), "output shape mismatch");
    // G = ∂L/∂I_i = dl_dt ⊙ θz T_i (1 − T_i)
    {
        let t = fwd.resists[idx].as_slice();
        let d = ws.grad.dl_dt.as_slice();
        let g = ws.grad.g_int.as_mut_slice();
        for i in 0..g.len() {
            g[i] = d[i] * litho.theta_z * t[i] * (1.0 - t[i]);
        }
    }
    // ∂L/∂M_i = Σ_k 2 w_k (G ⊙ field_k) ⊗ h_k
    out.fill(0.0);
    for (k, kernel) in bank.kernels().iter().enumerate() {
        let field = &fwd.aerials[idx].fields[k];
        ws.grad
            .weighted
            .zip_from(&ws.grad.g_int, field, |g, f| g * f);
        kernel.backproject_into(&ws.grad.weighted, &mut ws.conv, &mut ws.grad.back);
        let wk = 2.0 * kernel.weight() as f32;
        let acc = out.as_mut_slice();
        for (a, &b) in acc.iter_mut().zip(ws.grad.back.as_slice()) {
            *a += wk * b;
        }
    }
    // chain through Eq. 1: ∂M/∂P = θm M (1 − M)
    let m = fwd.masks[idx].as_slice();
    let s = out.as_mut_slice();
    for i in 0..s.len() {
        s[i] *= theta_m * m[i] * (1.0 - m[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;
    use ldmo_litho::CoherentKernel;

    fn tiny_setup() -> (KernelBank, LithoConfig, Grid) {
        // a small, fast optical system for gradient checking
        let litho = LithoConfig {
            nm_per_px: 1.0,
            sigma_primary: 3.0,
            sigma_secondary: 6.0,
            ..LithoConfig::default()
        };
        let bank = KernelBank::new(vec![
            CoherentKernel::difference_of_gaussians(
                3.0,
                6.0,
                0.3,
                0.8 * litho.total_kernel_weight(),
            ),
            CoherentKernel::gaussian(6.0, 0.2 * litho.total_kernel_weight()),
        ]);
        let mut target = Grid::zeros(32, 32);
        target.fill_rect(&Rect::new(10, 10, 22, 22), 1.0);
        (bank, litho, target)
    }

    #[test]
    fn forward_produces_bounded_print() {
        let (bank, litho, target) = tiny_setup();
        let p1 = target.map(|v| if v > 0.5 { 0.5 } else { -0.5 });
        let p2 = Grid::filled(32, 32, -0.5);
        let fwd = forward_pair(&p1, &p2, &target, 8.0, &bank, &litho);
        assert!(fwd.printed.min() >= 0.0 && fwd.printed.max() <= 1.0);
        assert!(fwd.l2 > 0.0);
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let (bank, litho, target) = tiny_setup();
        let p1 = target.map(|v| if v > 0.5 { 0.4 } else { -0.4 });
        let p2 = Grid::filled(32, 32, -0.4);
        let fwd = forward_pair(&p1, &p2, &target, 8.0, &bank, &litho);
        let (g1, g2) = l2_gradient_pair(&fwd, &target, 8.0, &bank, &litho);
        let eps = 5e-3f32;
        // probe a few pixels on each mask, including edge-adjacent ones
        for &(x, y) in &[(10usize, 10usize), (16, 16), (22, 10), (5, 5), (16, 9)] {
            for (pi, (p, g)) in [(&p1, &g1), (&p2, &g2)].iter().enumerate() {
                // central difference to cancel the quadratic term
                let mut pa = (*p).clone();
                pa.set(x, y, p.get(x, y) + eps);
                let mut pb = (*p).clone();
                pb.set(x, y, p.get(x, y) - eps);
                let (fa1, fa2) = if pi == 0 { (&pa, &p2) } else { (&p1, &pa) };
                let (fb1, fb2) = if pi == 0 { (&pb, &p2) } else { (&p1, &pb) };
                let la = forward_pair(fa1, fa2, &target, 8.0, &bank, &litho).l2;
                let lb = forward_pair(fb1, fb2, &target, 8.0, &bank, &litho).l2;
                let numeric = ((la - lb) / (2.0 * f64::from(eps))) as f32;
                let analytic = g.get(x, y);
                let denom = numeric.abs().max(analytic.abs()).max(0.05);
                assert!(
                    (numeric - analytic).abs() / denom < 0.15,
                    "mask {pi} at ({x},{y}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn gradient_vanishes_for_closed_masks_on_empty_target() {
        let (bank, litho, _) = tiny_setup();
        let target = Grid::zeros(32, 32);
        let p = Grid::filled(32, 32, -5.0); // masks fully closed
        let fwd = forward_pair(&p, &p, &target, 8.0, &bank, &litho);
        // the resist sigmoid never reaches exactly 0, so a small residual
        // L2 remains (sigmoid(-θz·Ith)² per pixel)…
        assert!(fwd.l2 < 0.5, "residual L2 {}", fwd.l2);
        // …but the gradient is dead: the coherent fields are ~0, and the
        // mask sigmoid is saturated
        let (g1, _) = l2_gradient_pair(&fwd, &target, 8.0, &bank, &litho);
        assert!(g1.max().abs() < 1e-6 && g1.min().abs() < 1e-6);
    }

    #[test]
    fn min_gate_blocks_gradient_in_saturated_regions() {
        let (bank, litho, _) = tiny_setup();
        // both masks wide open on a large grid: T1 + T2 >= 1 in the deep
        // interior, so the min gate must zero the gradient there; the probe
        // pixel is farther from the border than the largest kernel radius
        // (18 px), so no boundary gradient can back-propagate into it.
        let target = Grid::zeros(64, 64);
        let p = Grid::filled(64, 64, 2.0);
        let fwd = forward_pair(&p, &p, &target, 8.0, &bank, &litho);
        assert!(fwd.resists[0].get(32, 32) + fwd.resists[1].get(32, 32) >= 1.0);
        let (g1, _) = l2_gradient_pair(&fwd, &target, 8.0, &bank, &litho);
        assert_eq!(g1.get(32, 32), 0.0);
    }
}
