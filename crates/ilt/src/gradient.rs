//! Forward pass and analytic gradient of the double-patterning L2 objective.
//!
//! With `M_i = sigmoid(θm P_i)` (Eq. 1), `I_i = Σ_k w_k (M_i ⊗ h_k)²`,
//! `T_i = sigmoid(θz (I_i − I_th))` (Eq. 2) and `T = min(T1 + T2, 1)`
//! (Eq. 3), the gradient of `L = ‖T − T′‖²` with respect to `P_i` is
//!
//! ```text
//! ∂L/∂T   = 2 (T − T′)                      (zero where T1+T2 ≥ 1, the
//!                                            flat branch of the min)
//! ∂T/∂I_i = θz T_i (1 − T_i)
//! ∂I_i/∂M_i = Σ_k 2 w_k  (G ⊙ (M_i ⊗ h_k)) ⊗ h_k    (h_k symmetric)
//! ∂M_i/∂P_i = θm M_i (1 − M_i)
//! ```
//!
//! All products `⊙` are element-wise; the back-convolution uses the same
//! separable fast path as the forward pass.

use ldmo_geom::Grid;
use ldmo_litho::{
    aerial_image, combine_prints, resist_threshold, sigmoid, AerialImage, KernelBank, LithoConfig,
};

/// Forward-pass artifacts for a set of masks (two for the paper's double
/// patterning; `k` for the MPL extension), reused by the gradient.
#[derive(Debug, Clone)]
pub struct PairForward {
    /// Relaxed masks `M_i = sigmoid(θm P_i)`.
    pub masks: Vec<Grid>,
    /// Aerial images with per-kernel fields.
    pub aerials: Vec<AerialImage>,
    /// Per-mask resist images `T_i`.
    pub resists: Vec<Grid>,
    /// Combined print `T = min(Σ T_i, 1)`.
    pub printed: Grid,
    /// Objective value `‖T − T′‖²`.
    pub l2: f64,
}

/// The MPL-extension alias: the structure is identical for any mask count.
pub type MultiForward = PairForward;

/// Runs the forward model for any number of mask parameter fields.
///
/// # Panics
///
/// Panics if `ps` is empty.
pub fn forward_multi(
    ps: &[Grid],
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> MultiForward {
    assert!(!ps.is_empty(), "need at least one mask");
    let masks: Vec<Grid> = ps.iter().map(|p| p.map(|v| sigmoid(theta_m * v))).collect();
    let aerials: Vec<AerialImage> = masks.iter().map(|m| aerial_image(m, bank)).collect();
    let resists: Vec<Grid> = aerials
        .iter()
        .map(|a| resist_threshold(&a.intensity, litho))
        .collect();
    let printed = combine_prints(&resists);
    let l2 = printed.l2_dist_sq(target).expect("shapes match");
    PairForward {
        masks,
        aerials,
        resists,
        printed,
        l2,
    }
}

/// Runs the forward model for parameters `(p1, p2)` against `target`.
pub fn forward_pair(
    p1: &Grid,
    p2: &Grid,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> PairForward {
    forward_multi(&[p1.clone(), p2.clone()], target, theta_m, bank, litho)
}

/// Computes `∂L/∂P_i` for every mask of a forward pass.
pub fn l2_gradient_multi(
    fwd: &MultiForward,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> Vec<Grid> {
    let (w, h) = fwd.printed.shape();
    // ∂L/∂T gated by the min branch: zero where Σ T_i ≥ 1
    let mut dl_dt = Grid::zeros(w, h);
    {
        let t = fwd.printed.as_slice();
        let tp = target.as_slice();
        let out = dl_dt.as_mut_slice();
        for i in 0..out.len() {
            let sum: f32 = fwd.resists.iter().map(|r| r.as_slice()[i]).sum();
            let gate = if sum < 1.0 { 1.0 } else { 0.0 };
            out[i] = 2.0 * (t[i] - tp[i]) * gate;
        }
    }
    (0..fwd.masks.len())
        .map(|idx| grad_one_mask(fwd, idx, &dl_dt, theta_m, bank, litho))
        .collect()
}

/// Computes `(∂L/∂P1, ∂L/∂P2)` from a forward pass.
pub fn l2_gradient_pair(
    fwd: &PairForward,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> (Grid, Grid) {
    let mut grads = l2_gradient_multi(fwd, target, theta_m, bank, litho);
    assert_eq!(grads.len(), 2, "pair gradient expects two masks");
    let g2 = grads.pop().expect("two masks");
    let g1 = grads.pop().expect("two masks");
    (g1, g2)
}

fn grad_one_mask(
    fwd: &PairForward,
    idx: usize,
    dl_dt: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> Grid {
    let (w, h) = dl_dt.shape();
    // G = ∂L/∂I_i = dl_dt ⊙ θz T_i (1 − T_i)
    let mut g_int = Grid::zeros(w, h);
    {
        let t = fwd.resists[idx].as_slice();
        let d = dl_dt.as_slice();
        let out = g_int.as_mut_slice();
        for i in 0..out.len() {
            out[i] = d[i] * litho.theta_z * t[i] * (1.0 - t[i]);
        }
    }
    // ∂L/∂M_i = Σ_k 2 w_k (G ⊙ field_k) ⊗ h_k
    let mut dl_dm = Grid::zeros(w, h);
    for (k, kernel) in bank.kernels().iter().enumerate() {
        let field = &fwd.aerials[idx].fields[k];
        let weighted = g_int
            .zip_map(field, |g, f| g * f)
            .expect("shapes match");
        let back = kernel.backproject(&weighted);
        let wk = 2.0 * kernel.weight() as f32;
        let acc = dl_dm.as_mut_slice();
        for (a, &b) in acc.iter_mut().zip(back.as_slice()) {
            *a += wk * b;
        }
    }
    // chain through Eq. 1: ∂M/∂P = θm M (1 − M)
    let m = fwd.masks[idx].as_slice();
    let mut out = dl_dm;
    {
        let s = out.as_mut_slice();
        for i in 0..s.len() {
            s[i] *= theta_m * m[i] * (1.0 - m[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;
    use ldmo_litho::CoherentKernel;

    fn tiny_setup() -> (KernelBank, LithoConfig, Grid) {
        // a small, fast optical system for gradient checking
        let litho = LithoConfig {
            nm_per_px: 1.0,
            sigma_primary: 3.0,
            sigma_secondary: 6.0,
            ..LithoConfig::default()
        };
        let bank = KernelBank::new(vec![
            CoherentKernel::difference_of_gaussians(3.0, 6.0, 0.3, 0.8 * litho.total_kernel_weight()),
            CoherentKernel::gaussian(6.0, 0.2 * litho.total_kernel_weight()),
        ]);
        let mut target = Grid::zeros(32, 32);
        target.fill_rect(&Rect::new(10, 10, 22, 22), 1.0);
        (bank, litho, target)
    }

    #[test]
    fn forward_produces_bounded_print() {
        let (bank, litho, target) = tiny_setup();
        let p1 = target.map(|v| if v > 0.5 { 0.5 } else { -0.5 });
        let p2 = Grid::filled(32, 32, -0.5);
        let fwd = forward_pair(&p1, &p2, &target, 8.0, &bank, &litho);
        assert!(fwd.printed.min() >= 0.0 && fwd.printed.max() <= 1.0);
        assert!(fwd.l2 > 0.0);
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let (bank, litho, target) = tiny_setup();
        let p1 = target.map(|v| if v > 0.5 { 0.4 } else { -0.4 });
        let p2 = Grid::filled(32, 32, -0.4);
        let fwd = forward_pair(&p1, &p2, &target, 8.0, &bank, &litho);
        let (g1, g2) = l2_gradient_pair(&fwd, &target, 8.0, &bank, &litho);
        let eps = 5e-3f32;
        // probe a few pixels on each mask, including edge-adjacent ones
        for &(x, y) in &[(10usize, 10usize), (16, 16), (22, 10), (5, 5), (16, 9)] {
            for (pi, (p, g)) in [(&p1, &g1), (&p2, &g2)].iter().enumerate() {
                // central difference to cancel the quadratic term
                let mut pa = (*p).clone();
                pa.set(x, y, p.get(x, y) + eps);
                let mut pb = (*p).clone();
                pb.set(x, y, p.get(x, y) - eps);
                let (fa1, fa2) = if pi == 0 { (&pa, &p2) } else { (&p1, &pa) };
                let (fb1, fb2) = if pi == 0 { (&pb, &p2) } else { (&p1, &pb) };
                let la = forward_pair(fa1, fa2, &target, 8.0, &bank, &litho).l2;
                let lb = forward_pair(fb1, fb2, &target, 8.0, &bank, &litho).l2;
                let numeric = ((la - lb) / (2.0 * f64::from(eps))) as f32;
                let analytic = g.get(x, y);
                let denom = numeric.abs().max(analytic.abs()).max(0.05);
                assert!(
                    (numeric - analytic).abs() / denom < 0.15,
                    "mask {pi} at ({x},{y}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn gradient_vanishes_for_closed_masks_on_empty_target() {
        let (bank, litho, _) = tiny_setup();
        let target = Grid::zeros(32, 32);
        let p = Grid::filled(32, 32, -5.0); // masks fully closed
        let fwd = forward_pair(&p, &p, &target, 8.0, &bank, &litho);
        // the resist sigmoid never reaches exactly 0, so a small residual
        // L2 remains (sigmoid(-θz·Ith)² per pixel)…
        assert!(fwd.l2 < 0.5, "residual L2 {}", fwd.l2);
        // …but the gradient is dead: the coherent fields are ~0, and the
        // mask sigmoid is saturated
        let (g1, _) = l2_gradient_pair(&fwd, &target, 8.0, &bank, &litho);
        assert!(g1.max().abs() < 1e-6 && g1.min().abs() < 1e-6);
    }

    #[test]
    fn min_gate_blocks_gradient_in_saturated_regions() {
        let (bank, litho, _) = tiny_setup();
        // both masks wide open on a large grid: T1 + T2 >= 1 in the deep
        // interior, so the min gate must zero the gradient there; the probe
        // pixel is farther from the border than the largest kernel radius
        // (18 px), so no boundary gradient can back-propagate into it.
        let target = Grid::zeros(64, 64);
        let p = Grid::filled(64, 64, 2.0);
        let fwd = forward_pair(&p, &p, &target, 8.0, &bank, &litho);
        assert!(fwd.resists[0].get(32, 32) + fwd.resists[1].get(32, 32) >= 1.0);
        let (g1, _) = l2_gradient_pair(&fwd, &target, 8.0, &bank, &litho);
        assert_eq!(g1.get(32, 32), 0.0);
    }
}
