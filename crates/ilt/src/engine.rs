//! The ILT optimization loop (paper Section III-C).
//!
//! [`IltSession`] is the resumable core: it owns the mask parameters and
//! advances one gradient iteration at a time, which both the paper's flow
//! (violation checks every 3 iterations) and the ICCAD'17 unified baseline
//! (greedy pruning of partially optimized candidates) are built on.
//! [`optimize`] is the one-shot convenience wrapper.

use crate::gradient::{forward_multi_into, l2_gradient_multi_into, PairForward};
use ldmo_geom::Grid;
use ldmo_guard::{fault, sampled_finite, Budget, DegradeReason, GuardPolicy, OutcomeHealth};
use ldmo_layout::Layout;
use ldmo_litho::{
    combine_double_pattern, detect_violations, measure_epe, simulate_print, simulate_print_batch,
    EpeReport, KernelBank, LithoConfig, LithoWorkspace, ViolationReport,
};
use std::sync::Arc;

/// How the engine reacts to print violations detected mid-optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Run all iterations regardless; report violations only at the end.
    /// Used when labeling training data (the score needs the final count).
    #[default]
    Run,
    /// Abort as soon as a check (every `check_interval` iterations, after
    /// `abort_warmup`) finds a print violation — the Fig. 2 feedback edge
    /// that sends the flow back to decomposition selection. A violation is
    /// a bridge, a missing pattern, a *saturated* EPE site (no printed
    /// contour within ±2× the EPE threshold of a target edge), or an EPE
    /// violation count that failed to improve since the previous check —
    /// all signs that the decomposition, not the mask, is at fault.
    AbortOnViolation,
}

/// ILT engine configuration. Defaults are the paper's constants.
#[derive(Debug, Clone, PartialEq)]
pub struct IltConfig {
    /// Mask relaxation steepness `θm` (paper Eq. 1: 8).
    pub theta_m: f32,
    /// Gradient-descent step size applied to the max-normalized gradient
    /// (each iteration moves the most-active parameter by exactly this much,
    /// which makes convergence insensitive to the objective's scale).
    pub step_size: f32,
    /// Mask-rule-check corridor, nm: ILT may grow a mask feature at most
    /// this far beyond its drawn edge (shrinking inward is unrestricted).
    /// Without this bound a gradient ILT can "cheat" sub-resolution
    /// spacings with disconnected assist dots no mask shop would accept.
    pub mrc_expand_nm: i32,
    /// Maximum iteration count (paper: 29).
    pub max_iterations: usize,
    /// Violation-check cadence (paper: every 3 iterations).
    pub check_interval: usize,
    /// Iterations to skip before violation checks can abort: early masks
    /// have not converged yet and transiently under-print, which is not a
    /// decomposition defect.
    pub abort_warmup: usize,
    /// Violation reaction policy.
    pub policy: ViolationPolicy,
    /// Optical/resist model.
    pub litho: LithoConfig,
    /// Whether to record per-iteration EPE (needed by Fig. 1(b); costs one
    /// EPE measurement per iteration).
    pub record_epe_trajectory: bool,
    /// Numeric-health guard policy (DESIGN.md §11). Enabled by default;
    /// with no rollback firing the trajectory is bit-identical to the
    /// unguarded engine (the step-scale multiplier starts at exactly 1.0).
    pub guard: GuardPolicy,
    /// Per-run iteration/wall-clock budget. Unlimited by default; when it
    /// exhausts, the run stops early and the outcome is marked
    /// [`DegradeReason::BudgetExhausted`] instead of stalling callers.
    pub budget: Budget,
}

impl Default for IltConfig {
    fn default() -> Self {
        IltConfig {
            theta_m: 8.0,
            step_size: 0.5,
            mrc_expand_nm: 28,
            max_iterations: 29,
            check_interval: 3,
            abort_warmup: 9,
            policy: ViolationPolicy::Run,
            litho: LithoConfig::default(),
            record_epe_trajectory: false,
            guard: GuardPolicy::default(),
            budget: Budget::UNLIMITED,
        }
    }
}

/// Statistics of one ILT iteration (`Fig. 1(b)` plots `epe_violations`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// 0-based iteration index.
    pub iteration: usize,
    /// L2 error before the update of this iteration.
    pub l2: f64,
    /// EPE violation count (only populated when
    /// [`IltConfig::record_epe_trajectory`] is set; otherwise `None`).
    pub epe_violations: Option<usize>,
}

/// Result of one ILT run.
#[derive(Debug, Clone)]
pub struct IltOutcome {
    /// Final binarized masks (mask 0, mask 1), at the litho raster scale.
    pub masks: [Grid; 2],
    /// Final printed image from the binarized masks.
    pub printed: Grid,
    /// EPE report of the final print against the layout.
    pub epe: EpeReport,
    /// Final L2 error (Definition 2), binarized-mask print vs target.
    pub l2: f64,
    /// Print violations of the final print.
    pub violations: ViolationReport,
    /// Per-iteration stats.
    pub trajectory: Vec<IterationStats>,
    /// The iteration at which an abort-policy check fired, if any.
    pub aborted_at: Option<usize>,
    /// Iterations actually executed.
    pub iterations_run: usize,
    /// Guard verdict: `Clean`, `RecoveredAfterRollback`, or
    /// `Degraded { reason }`. Degraded outcomes carry the best finite
    /// iterate found, but their score must be replaced by
    /// [`ldmo_guard::penalty_score`].
    pub health: OutcomeHealth,
    /// How many divergence rollbacks fired during the run.
    pub rollbacks: u32,
}

impl IltOutcome {
    /// The paper's headline metric: the number of EPE violations.
    pub fn epe_violations(&self) -> usize {
        self.epe.violations()
    }

    /// Whether the run finished without a violation abort, the final
    /// print is violation-free, and no guard degraded the outcome.
    pub fn is_clean(&self) -> bool {
        self.aborted_at.is_none() && self.violations.is_clean() && self.health.is_usable()
    }
}

/// Recyclable per-worker session buffers: the litho workspace, forward
/// artifacts and gradient fields — exactly the DESIGN.md §6 scratch a
/// session allocates at construction. Labeling and ranking loops hand one
/// `Option<IltScratch>` per pool worker to
/// [`IltContext::optimize_reusing`] / [`IltContext::evaluate_unoptimized_reusing`],
/// which take the buffers when the grid shape matches and return them
/// after the run, so the big buffers are allocated once per worker (at
/// region start) instead of once per sample. The per-sample inputs —
/// target/corridor rasters, parameter fields, and the kernel-bank handle —
/// are still built per session; only the overwritten-every-iteration
/// scratch is recycled, which is what keeps reuse bit-exact.
#[derive(Debug, Clone)]
pub struct IltScratch {
    ws: LithoWorkspace,
    fwd: PairForward,
    grads: [Grid; 2],
}

impl IltScratch {
    /// Whether these buffers fit a `width × height` session under a bank
    /// of `num_kernels` kernels.
    fn matches(&self, width: usize, height: usize, num_kernels: usize) -> bool {
        self.ws.shape() == (width, height)
            && self.fwd.masks.len() == 2
            && self.fwd.printed.shape() == (width, height)
            && self.fwd.aerials[0].fields.len() == num_kernels
    }
}

/// Shared, immutable per-configuration state of the ILT engine: the config
/// plus the kernel bank expanded once for its optical model.
///
/// Building a [`KernelBank`] samples every separable kernel profile;
/// constructing it once per [`IltConfig`] and spawning sessions from the
/// context keeps that cost out of per-candidate loops (the ranking and
/// baseline flows evaluate dozens of decompositions under one config).
/// The bank lives behind an [`Arc`], so every session spawned from the
/// context shares the one expansion — per-candidate loops no longer deep-
/// copy the profile buffers (the `litho.kernel_expansions` counter stays
/// O(1) in the candidate count; `tests/kernel_reload.rs` pins this).
#[derive(Debug, Clone)]
pub struct IltContext {
    cfg: IltConfig,
    bank: Arc<KernelBank>,
}

impl IltContext {
    /// Expands the kernel bank for `cfg` once.
    pub fn new(cfg: &IltConfig) -> Self {
        IltContext {
            cfg: cfg.clone(),
            bank: Arc::new(KernelBank::paper_bank(&cfg.litho)),
        }
    }

    /// The configuration this context was built for.
    pub fn cfg(&self) -> &IltConfig {
        &self.cfg
    }

    /// The pre-expanded kernel bank.
    pub fn bank(&self) -> &KernelBank {
        &self.bank
    }

    /// Derives a context for a config variant (e.g. a different violation
    /// policy), sharing this context's kernel bank.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.litho` differs — the bank is not re-expanded here.
    pub fn with_config(&self, cfg: &IltConfig) -> IltContext {
        assert_eq!(
            cfg.litho, self.cfg.litho,
            "with_config cannot change the optical model"
        );
        IltContext {
            cfg: cfg.clone(),
            bank: self.bank.clone(),
        }
    }

    /// Prepares a resumable session for `layout` under `assignment`,
    /// reusing this context's kernel bank.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != layout.len()` or contains mask
    /// indices other than 0/1.
    pub fn session(&self, layout: &Layout, assignment: &[u8]) -> IltSession {
        IltSession::from_parts(layout, assignment, &self.cfg, self.bank.clone(), None)
    }

    /// Runs the full optimization loop (see [`optimize`]).
    pub fn optimize(&self, layout: &Layout, assignment: &[u8]) -> IltOutcome {
        run_session(self.session(layout, assignment))
    }

    /// [`IltContext::optimize`] with buffer recycling: the session takes
    /// its workspace/forward/gradient buffers from `scratch` when the grid
    /// shape matches (allocating them only otherwise) and returns them to
    /// `scratch` after the run. Bit-identical to [`IltContext::optimize`]
    /// — the recycled buffers are fully overwritten before first read
    /// (DESIGN.md §6).
    pub fn optimize_reusing(
        &self,
        layout: &Layout,
        assignment: &[u8],
        scratch: &mut Option<IltScratch>,
    ) -> IltOutcome {
        let session = IltSession::from_parts(
            layout,
            assignment,
            &self.cfg,
            self.bank.clone(),
            scratch.take(),
        );
        run_session_recycling(session, Some(scratch))
    }

    /// Forward-only evaluation of a decomposition (see
    /// [`evaluate_unoptimized`]).
    pub fn evaluate_unoptimized(&self, layout: &Layout, assignment: &[u8]) -> IltOutcome {
        let mut span = ldmo_obs::span("ilt.evaluate");
        let outcome = self.session(layout, assignment).into_outcome();
        span.set("epe", outcome.epe_violations() as f64);
        outcome
    }

    /// [`IltContext::evaluate_unoptimized`] with buffer recycling, for
    /// per-worker candidate-ranking loops (same contract as
    /// [`IltContext::optimize_reusing`]).
    pub fn evaluate_unoptimized_reusing(
        &self,
        layout: &Layout,
        assignment: &[u8],
        scratch: &mut Option<IltScratch>,
    ) -> IltOutcome {
        let mut span = ldmo_obs::span("ilt.evaluate");
        let session = IltSession::from_parts(
            layout,
            assignment,
            &self.cfg,
            self.bank.clone(),
            scratch.take(),
        );
        let outcome = session.snapshot(Vec::new(), None);
        *scratch = Some(session.into_scratch());
        span.set("epe", outcome.epe_violations() as f64);
        outcome
    }

    /// Forward-only evaluation of several decompositions of one layout in
    /// a single pass: all masks are rasterized up front and pushed through
    /// the kernel bank together via [`ldmo_litho::simulate_print_batch`],
    /// so each kernel's expansion is visited once per *batch* instead of
    /// once per candidate. Bit-identical to calling
    /// [`IltContext::evaluate_unoptimized`] per candidate (the per-mask
    /// accumulation order over kernels is unchanged); outcomes carry an
    /// empty trajectory and `iterations_run == 0`, exactly like the
    /// session path.
    ///
    /// # Panics
    ///
    /// Panics if `assignments` is empty, or any assignment fails the
    /// session invariants (length, mask indices 0/1).
    pub fn evaluate_unoptimized_batch(
        &self,
        layout: &Layout,
        assignments: &[&[u8]],
    ) -> Vec<IltOutcome> {
        assert!(!assignments.is_empty(), "batch must be non-empty");
        let mut span = ldmo_obs::span("ilt.evaluate_batch");
        span.set("candidates", assignments.len() as f64);
        let scale = self.cfg.litho.nm_per_px;
        let target = layout.rasterize_target(scale);
        // Two binarized masks per candidate, in candidate order. The
        // session path inits P = ±p0 from the raster and binarizes P > 0;
        // composing the two maps gives exactly `raster > 0.5`.
        let mut masks = Vec::with_capacity(assignments.len() * 2);
        for assignment in assignments {
            for mask_idx in 0..2u8 {
                let raster = layout
                    .rasterize_mask(assignment, mask_idx, scale)
                    .expect("assignment must cover every pattern");
                masks.push(raster.map(|v| if v > 0.5 { 1.0 } else { 0.0 }));
            }
        }
        let prints = simulate_print_batch(&masks, &self.bank, &self.cfg.litho);
        let mut masks = masks.into_iter();
        let mut prints = prints.into_iter();
        let mut outcomes = Vec::with_capacity(assignments.len());
        for _ in assignments {
            let m1 = masks.next().expect("two masks per candidate");
            let m2 = masks.next().expect("two masks per candidate");
            let t1 = prints.next().expect("two prints per candidate");
            let t2 = prints.next().expect("two prints per candidate");
            let printed = combine_double_pattern(&t1, &t2);
            let epe = measure_epe(&printed, layout.patterns(), &self.cfg.litho);
            let l2 = printed.l2_dist_sq(&target).expect("shapes match");
            let violations = detect_violations(
                &printed,
                layout.patterns(),
                self.cfg.litho.print_level,
                self.cfg.litho.nm_per_px,
            );
            outcomes.push(IltOutcome {
                masks: [m1, m2],
                printed,
                epe,
                l2,
                violations,
                trajectory: Vec::new(),
                aborted_at: None,
                iterations_run: 0,
                health: OutcomeHealth::Clean,
                rollbacks: 0,
            });
        }
        span.set(
            "epe",
            outcomes.iter().map(|o| o.epe_violations()).sum::<usize>() as f64,
        );
        outcomes
    }
}

/// A resumable ILT optimization of one (layout, decomposition) pair.
///
/// All per-iteration buffers (forward artifacts, gradients, convolution
/// scratch) are allocated here at construction; [`IltSession::step_one`]
/// performs no heap allocation.
pub struct IltSession {
    patterns: Vec<ldmo_geom::Rect>,
    cfg: IltConfig,
    bank: Arc<KernelBank>,
    target: Grid,
    corridors: [Grid; 2],
    p: [Grid; 2],
    ws: LithoWorkspace,
    fwd: PairForward,
    grads: [Grid; 2],
    iterations_done: usize,
    last_l2: f64,
    /// Best-L2 iterate seen so far (preallocated at construction; rollback
    /// restores from it without allocating).
    best_p: [Grid; 2],
    best_l2: f64,
    /// Multiplier on `cfg.step_size`; starts at exactly 1.0 (bit-identity
    /// on healthy runs) and halves on every divergence rollback.
    step_scale: f32,
    rollbacks: u32,
    degraded: Option<DegradeReason>,
}

impl IltSession {
    /// Prepares a session for `layout` under `assignment`.
    ///
    /// Expands a fresh kernel bank; prefer [`IltContext::session`] when
    /// running several sessions under one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != layout.len()` or contains mask
    /// indices other than 0/1.
    pub fn new(layout: &Layout, assignment: &[u8], cfg: &IltConfig) -> Self {
        let bank = Arc::new(KernelBank::paper_bank(&cfg.litho));
        IltSession::from_parts(layout, assignment, cfg, bank, None)
    }

    fn from_parts(
        layout: &Layout,
        assignment: &[u8],
        cfg: &IltConfig,
        bank: Arc<KernelBank>,
        recycled: Option<IltScratch>,
    ) -> Self {
        if ldmo_obs::enabled() {
            ldmo_obs::counter("ilt.sessions").incr();
        }
        assert_eq!(
            assignment.len(),
            layout.len(),
            "assignment must cover every pattern"
        );
        assert!(
            assignment.iter().all(|&m| m < 2),
            "double patterning uses masks 0 and 1"
        );
        let scale = cfg.litho.nm_per_px;
        let target = layout.rasterize_target(scale);
        let m1 = layout
            .rasterize_mask(assignment, 0, scale)
            .expect("assignment length checked");
        let m2 = layout
            .rasterize_mask(assignment, 1, scale)
            .expect("assignment length checked");
        let corridors = [
            layout
                .rasterize_mask_expanded(assignment, 0, scale, cfg.mrc_expand_nm)
                .expect("assignment length checked"),
            layout
                .rasterize_mask_expanded(assignment, 1, scale, cfg.mrc_expand_nm)
                .expect("assignment length checked"),
        ];
        // Eq. 1 initialization: P = ±p0 puts M near the drawn mask while
        // keeping sigmoid'(θm P) large enough for gradient flow.
        let p0 = 0.25f32;
        let p = [
            m1.map(|v| if v > 0.5 { p0 } else { -p0 }),
            m2.map(|v| if v > 0.5 { p0 } else { -p0 }),
        ];
        let (w, h) = target.shape();
        let nk = bank.kernels().len();
        let IltScratch { ws, fwd, grads } = match recycled {
            Some(scratch) if scratch.matches(w, h, nk) => scratch,
            _ => IltScratch {
                ws: LithoWorkspace::new(w, h),
                fwd: PairForward::zeros(w, h, 2, nk),
                grads: [Grid::zeros(w, h), Grid::zeros(w, h)],
            },
        };
        let best_p = [p[0].clone(), p[1].clone()];
        IltSession {
            patterns: layout.patterns().to_vec(),
            cfg: cfg.clone(),
            bank,
            target,
            corridors,
            p,
            ws,
            fwd,
            grads,
            iterations_done: 0,
            last_l2: f64::NAN,
            best_p,
            best_l2: f64::INFINITY,
            step_scale: 1.0,
            rollbacks: 0,
            degraded: None,
        }
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations_done
    }

    /// L2 error observed at the start of the most recent iteration
    /// (`NaN` before the first [`IltSession::step_one`]).
    pub fn last_l2(&self) -> f64 {
        self.last_l2
    }

    /// Divergence rollbacks fired so far.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks
    }

    /// Current guard verdict of this session (what the outcome's
    /// [`IltOutcome::health`] will be if the run stopped now).
    pub fn health(&self) -> OutcomeHealth {
        match self.degraded {
            Some(reason) => OutcomeHealth::Degraded { reason },
            None if self.rollbacks > 0 => OutcomeHealth::RecoveredAfterRollback,
            None => OutcomeHealth::Clean,
        }
    }

    /// Latches the first degradation reason (later reasons do not
    /// overwrite it — the first failure is the diagnosis).
    fn mark_degraded(&mut self, reason: DegradeReason) {
        if self.degraded.is_none() {
            self.degraded = Some(reason);
            ldmo_obs::incr("guard.degraded");
            if matches!(reason, DegradeReason::DivergenceLimit) {
                // rollback budget exhausted: capture the flight ring while
                // the divergent tail is still in it
                let _ = ldmo_guard::ops::dump_flight("divergence-limit");
            }
        }
    }

    /// Divergence recovery: restore the best iterate, halve the step, and
    /// account the skipped update as one iteration. No allocation — the
    /// restore is a copy into the preallocated parameter grids.
    fn rollback(&mut self, step_start: Option<std::time::Instant>, l2: f64) -> f64 {
        self.p[0].copy_from(&self.best_p[0]);
        self.p[1].copy_from(&self.best_p[1]);
        self.step_scale *= 0.5;
        self.rollbacks += 1;
        ldmo_obs::incr("guard.rollback");
        if self.rollbacks > self.cfg.guard.max_rollbacks {
            self.mark_degraded(DegradeReason::DivergenceLimit);
        }
        self.iterations_done += 1;
        if l2.is_finite() {
            self.last_l2 = l2;
        }
        if let Some(start) = step_start {
            ldmo_obs::convergence((self.iterations_done - 1) as u32, l2, f64::NAN, -1);
            step_histogram().record_duration(start.elapsed());
        }
        l2
    }

    /// Runs one gradient iteration; returns the pre-update L2 error.
    ///
    /// Allocation-free — even with the `ldmo-obs` collector enabled: the
    /// forward pass, gradients and scratch live in buffers owned by the
    /// session, and the per-iteration convergence record (L2, step norm)
    /// lands in the collector's preallocated buffer. With the collector
    /// disabled the telemetry cost is one relaxed atomic load.
    pub fn step_one(&mut self) -> f64 {
        let step_start = ldmo_obs::enabled().then(std::time::Instant::now);
        forward_multi_into(
            &self.p,
            &self.target,
            self.cfg.theta_m,
            &self.bank,
            &self.cfg.litho,
            &mut self.ws,
            &mut self.fwd,
        );
        let l2 = self.fwd.l2;
        let guard = self.cfg.guard;
        if guard.enabled {
            // Pre-update health: a non-finite objective, non-finite samples
            // in the combined print, or an L2 blow-up past the divergence
            // tolerance all mean the last update overshot — roll back.
            let healthy = l2.is_finite()
                && l2 <= self.best_l2 * (1.0 + guard.divergence_tolerance)
                && sampled_finite(self.fwd.printed.as_slice(), guard.scan_stride);
            if !healthy {
                return self.rollback(step_start, l2);
            }
            if l2 < self.best_l2 {
                self.best_p[0].copy_from(&self.p[0]);
                self.best_p[1].copy_from(&self.p[1]);
                self.best_l2 = l2;
            }
        }
        l2_gradient_multi_into(
            &self.fwd,
            &self.target,
            self.cfg.theta_m,
            &self.bank,
            &self.cfg.litho,
            &mut self.ws,
            &mut self.grads,
        );
        if fault::active() && fault::nan_grad_at(self.iterations_done) {
            // Poison a stride-aligned slot so the sampled scan (offset 0)
            // deterministically sees the injection.
            self.grads[0].as_mut_slice()[0] = f32::NAN;
        }
        if guard.enabled
            && !(sampled_finite(self.grads[0].as_slice(), guard.scan_stride)
                && sampled_finite(self.grads[1].as_slice(), guard.scan_stride))
        {
            return self.rollback(step_start, l2);
        }
        let step = self.cfg.step_size * self.step_scale;
        let step_norm = match step_start {
            Some(_) => update_norm(&self.grads, step),
            None => f64::NAN,
        };
        descend(&mut self.p[0], &self.grads[0], step);
        descend(&mut self.p[1], &self.grads[1], step);
        clamp_to_corridor(&mut self.p[0], &self.corridors[0]);
        clamp_to_corridor(&mut self.p[1], &self.corridors[1]);
        self.iterations_done += 1;
        self.last_l2 = l2;
        if let Some(start) = step_start {
            ldmo_obs::convergence(
                (self.iterations_done - 1) as u32,
                self.fwd.l2,
                step_norm,
                -1,
            );
            step_histogram().record_duration(start.elapsed());
        }
        self.fwd.l2
    }

    /// Runs `n` further iterations (no violation checks).
    pub fn step(&mut self, n: usize) {
        for _ in 0..n {
            let _ = self.step_one();
        }
    }

    /// The combined print of the current *binarized* masks — what
    /// manufacturing would produce right now.
    pub fn current_print(&self) -> Grid {
        let m1 = self.p[0].map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let m2 = self.p[1].map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let t1 = simulate_print(&m1, &self.bank, &self.cfg.litho);
        let t2 = simulate_print(&m2, &self.bank, &self.cfg.litho);
        combine_double_pattern(&t1, &t2)
    }

    /// EPE report of the current print.
    pub fn current_epe(&self) -> EpeReport {
        measure_epe(&self.current_print(), &self.patterns, &self.cfg.litho)
    }

    /// Full evaluation of the current state (does not consume the session).
    pub fn snapshot(
        &self,
        trajectory: Vec<IterationStats>,
        aborted_at: Option<usize>,
    ) -> IltOutcome {
        // On guarded runs where a rollback fired, fall back to the best
        // evaluated iterate unless the current one is provably no worse —
        // this is what makes the outcome "the best finite iterate". Clean
        // runs always use the current parameters (bit-identity).
        let intervened = self.cfg.guard.enabled && (self.rollbacks > 0 || self.degraded.is_some());
        let current_ok = self.last_l2.is_finite() && self.last_l2 <= self.best_l2;
        let src = if intervened && self.best_l2.is_finite() && !current_ok {
            &self.best_p
        } else {
            &self.p
        };
        let m1 = src[0].map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let m2 = src[1].map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let t1 = simulate_print(&m1, &self.bank, &self.cfg.litho);
        let t2 = simulate_print(&m2, &self.bank, &self.cfg.litho);
        let printed = combine_double_pattern(&t1, &t2);
        let epe = measure_epe(&printed, &self.patterns, &self.cfg.litho);
        let l2 = printed.l2_dist_sq(&self.target).expect("shapes match");
        let violations = detect_violations(
            &printed,
            &self.patterns,
            self.cfg.litho.print_level,
            self.cfg.litho.nm_per_px,
        );
        IltOutcome {
            masks: [m1, m2],
            printed,
            epe,
            l2,
            violations,
            trajectory,
            aborted_at,
            iterations_run: self.iterations_done,
            health: self.health(),
            rollbacks: self.rollbacks,
        }
    }

    /// Finishes the session into an outcome with an empty trajectory.
    pub fn into_outcome(self) -> IltOutcome {
        self.snapshot(Vec::new(), None)
    }

    /// Recovers the recyclable buffers for the next session of the same
    /// shape (see [`IltScratch`]).
    fn into_scratch(self) -> IltScratch {
        IltScratch {
            ws: self.ws,
            fwd: self.fwd,
            grads: self.grads,
        }
    }
}

/// Runs double-patterning ILT on `layout` under the decomposition
/// `assignment` (pattern `i` → mask `assignment[i]`).
///
/// # Panics
///
/// Panics if `assignment.len() != layout.len()` or contains values other
/// than 0/1.
pub fn optimize(layout: &Layout, assignment: &[u8], cfg: &IltConfig) -> IltOutcome {
    run_session(IltSession::new(layout, assignment, cfg))
}

/// Drives a prepared session through the full optimization loop with
/// violation checks, as configured by the session's [`IltConfig`].
fn run_session(session: IltSession) -> IltOutcome {
    run_session_recycling(session, None)
}

/// [`run_session`], optionally returning the session's recyclable buffers
/// through `recycle` for the next same-shape session.
fn run_session_recycling(
    mut session: IltSession,
    recycle: Option<&mut Option<IltScratch>>,
) -> IltOutcome {
    let mut span = ldmo_obs::span("ilt.run");
    let cfg = session.cfg.clone();
    let mut trajectory = Vec::with_capacity(cfg.max_iterations);
    let mut aborted_at = None;
    let mut last_check_epe: Option<usize> = None;
    let clock = cfg.budget.start();
    for iter in 0..cfg.max_iterations {
        if !cfg.budget.is_unlimited() && clock.exhausted(session.iterations_done) {
            session.mark_degraded(DegradeReason::BudgetExhausted);
            ldmo_obs::incr("guard.budget_exhausted");
            break;
        }
        let l2 = session.step_one();
        let epe_violations = cfg
            .record_epe_trajectory
            .then(|| session.current_epe().violations());
        // step_one already recorded (iter, l2, step_norm); when an EPE count
        // exists for this iteration, a second row carries it (epe >= 0)
        if let Some(v) = epe_violations.filter(|_| ldmo_obs::enabled()) {
            ldmo_obs::convergence(iter as u32, l2, f64::NAN, v as i64);
        }
        trajectory.push(IterationStats {
            iteration: iter,
            l2,
            epe_violations,
        });

        if cfg.policy == ViolationPolicy::AbortOnViolation
            && iter + 1 >= cfg.abort_warmup
            && (iter + 1) % cfg.check_interval.max(1) == 0
        {
            if ldmo_obs::enabled() {
                ldmo_obs::counter("ilt.violation_checks").incr();
            }
            let printed = session.current_print();
            let report = detect_violations(
                &printed,
                &session.patterns,
                cfg.litho.print_level,
                cfg.litho.nm_per_px,
            );
            let epe = measure_epe(&printed, &session.patterns, &cfg.litho);
            let saturation = 2.0 * cfg.litho.epe_threshold_nm - 1e-6;
            let saturated = epe.sites.iter().any(|s| s.epe_nm.abs() >= saturation);
            let v = epe.violations();
            let stagnant = v > 0 && last_check_epe.is_some_and(|prev| v >= prev);
            last_check_epe = Some(v);
            if ldmo_obs::enabled() && epe_violations.is_none() {
                ldmo_obs::convergence(iter as u32, l2, f64::NAN, v as i64);
            }
            if report.count() > 0 || saturated || stagnant {
                if ldmo_obs::enabled() {
                    ldmo_obs::counter("ilt.aborts").incr();
                }
                aborted_at = Some(iter);
                break;
            }
        }
    }
    let outcome = session.snapshot(trajectory, aborted_at);
    if let Some(slot) = recycle {
        *slot = Some(session.into_scratch());
    }
    span.set("iterations", outcome.iterations_run as f64);
    span.set(
        "aborted",
        if outcome.aborted_at.is_some() {
            1.0
        } else {
            0.0
        },
    );
    span.set("l2", outcome.l2);
    span.set("epe", outcome.epe_violations() as f64);
    span.set("rollbacks", f64::from(outcome.rollbacks));
    outcome
}

/// Telemetry: wall-time histogram of [`IltSession::step_one`], µs.
fn step_histogram() -> ldmo_obs::Histogram {
    static HIST: std::sync::OnceLock<ldmo_obs::Histogram> = std::sync::OnceLock::new();
    *HIST.get_or_init(|| ldmo_obs::histogram("ilt.step_us"))
}

/// L2 norm of the update [`descend`] is about to apply: each mask's
/// gradient is scaled by `step / max|g|`, so the applied step has norm
/// `step · ‖g‖₂ / max|g|` per mask, combined in quadrature. Only computed
/// when the collector is enabled — it costs one extra pass over the
/// gradients.
fn update_norm(grads: &[Grid; 2], step: f32) -> f64 {
    let mut total = 0.0f64;
    for g in grads {
        let mut max_abs = 0.0f32;
        let mut sum_sq = 0.0f64;
        for &v in g.as_slice() {
            max_abs = max_abs.max(v.abs());
            sum_sq += f64::from(v) * f64::from(v);
        }
        if max_abs > f32::EPSILON {
            let scale = f64::from(step) / f64::from(max_abs);
            total += scale * scale * sum_sq;
        }
    }
    total.sqrt()
}

fn descend(p: &mut Grid, g: &Grid, step: f32) {
    let max_abs = g.as_slice().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
    if max_abs <= f32::EPSILON {
        return;
    }
    let scale = step / max_abs;
    let ps = p.as_mut_slice();
    let gs = g.as_slice();
    for (v, &d) in ps.iter_mut().zip(gs) {
        *v -= scale * d;
    }
}

/// Enforces the MRC corridor: parameters outside it are pinned shut.
fn clamp_to_corridor(p: &mut Grid, corridor: &Grid) {
    let ps = p.as_mut_slice();
    let cs = corridor.as_slice();
    for (v, &c) in ps.iter_mut().zip(cs) {
        if c < 0.5 {
            *v = -1.0;
        }
    }
}

/// A convenience forward-only evaluation of a decomposition *without*
/// optimization: rasterize the drawn masks, print, and measure. Useful as
/// the "iteration 0" point of trajectories and as a cheap lower bound.
pub fn evaluate_unoptimized(layout: &Layout, assignment: &[u8], cfg: &IltConfig) -> IltOutcome {
    let session = IltSession::new(layout, assignment, cfg);
    session.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn two_contact_layout(gap: i32) -> Layout {
        let size = 64;
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 192, size),
                Rect::square(120 + size + gap, 192, size),
            ],
        )
    }

    /// 2×2 contact grid at the given gap: the dense 2-D structure where a
    /// same-mask decomposition measurably fails under our optics.
    fn quad_layout(gap: i32) -> Layout {
        let size = 64;
        let pitch = size + gap;
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 120, size),
                Rect::square(120 + pitch, 120, size),
                Rect::square(120, 120 + pitch, size),
                Rect::square(120 + pitch, 120 + pitch, size),
            ],
        )
    }

    fn fast_cfg() -> IltConfig {
        IltConfig::default()
    }

    #[test]
    fn isolated_contacts_converge_to_clean_print() {
        // two far-apart contacts split across masks: ILT must reach zero
        // EPE violations and a clean print within the 29-iteration budget
        let layout = two_contact_layout(160);
        let out = optimize(&layout, &[0, 1], &fast_cfg());
        assert!(
            out.violations.is_clean(),
            "violations: {:?}",
            out.violations
        );
        assert_eq!(
            out.epe_violations(),
            0,
            "EPE violations remain: max |EPE| = {:.1}nm",
            out.epe.max_abs_nm()
        );
    }

    #[test]
    fn optimization_reduces_l2() {
        let layout = two_contact_layout(160);
        let out = optimize(&layout, &[0, 1], &fast_cfg());
        let first = out.trajectory.first().expect("trajectory").l2;
        let last = out.trajectory.last().expect("trajectory").l2;
        assert!(last < first * 0.8, "L2 did not improve: {first} -> {last}");
    }

    #[test]
    fn bad_decomposition_is_worse_than_good() {
        // a dense 2×2 SP cluster (60 nm gaps): the all-same-mask assignment
        // must end up clearly worse than the checkerboard
        let layout = quad_layout(60);
        let good = optimize(&layout, &[0, 1, 1, 0], &fast_cfg());
        let bad = optimize(&layout, &[0, 0, 0, 0], &fast_cfg());
        let good_score = good.epe_violations() + 100 * good.violations.count();
        let bad_score = bad.epe_violations() + 100 * bad.violations.count();
        assert!(
            bad_score > good_score,
            "bad {bad_score} vs good {good_score} (bad epe {}, viol {:?})",
            bad.epe_violations(),
            bad.violations
        );
    }

    #[test]
    fn abort_policy_fires_on_hopeless_decomposition() {
        // dense 2×2 cluster on one mask cannot print; the mid-run violation
        // check (bridge / missing / saturated EPE / stagnation) must abort
        let layout = quad_layout(56);
        let cfg = IltConfig {
            policy: ViolationPolicy::AbortOnViolation,
            ..fast_cfg()
        };
        let out = optimize(&layout, &[0, 0, 0, 0], &cfg);
        assert!(
            out.aborted_at.is_some(),
            "hopeless decomposition was not aborted (epe = {}, viol = {:?})",
            out.epe_violations(),
            out.violations
        );
    }

    #[test]
    fn abort_policy_spares_good_decomposition() {
        let layout = quad_layout(56);
        let cfg = IltConfig {
            policy: ViolationPolicy::AbortOnViolation,
            ..fast_cfg()
        };
        let out = optimize(&layout, &[0, 1, 1, 0], &cfg);
        assert_eq!(out.aborted_at, None, "good decomposition wrongly aborted");
    }

    #[test]
    fn run_policy_never_aborts() {
        let layout = two_contact_layout(56);
        let out = optimize(&layout, &[0, 0], &fast_cfg());
        assert_eq!(out.aborted_at, None);
        assert_eq!(out.iterations_run, fast_cfg().max_iterations);
    }

    #[test]
    fn trajectory_records_epe_when_requested() {
        let layout = two_contact_layout(160);
        let cfg = IltConfig {
            record_epe_trajectory: true,
            max_iterations: 6,
            ..fast_cfg()
        };
        let out = optimize(&layout, &[0, 1], &cfg);
        assert_eq!(out.trajectory.len(), 6);
        assert!(out.trajectory.iter().all(|s| s.epe_violations.is_some()));
    }

    #[test]
    fn batch_evaluation_matches_sessions_bit_exactly() {
        // evaluate_unoptimized_batch must reproduce the per-session path
        // bit for bit — the batched kernel-major loop reorders work across
        // masks but never within one mask's accumulation.
        let layout = quad_layout(60);
        let ctx = IltContext::new(&fast_cfg());
        let candidates: [&[u8]; 3] = [&[0, 1, 1, 0], &[0, 0, 1, 1], &[1, 0, 0, 1]];
        let batch = ctx.evaluate_unoptimized_batch(&layout, &candidates);
        assert_eq!(batch.len(), candidates.len());
        let mut scratch = None;
        for (got, assignment) in batch.iter().zip(candidates) {
            let want = ctx.evaluate_unoptimized_reusing(&layout, assignment, &mut scratch);
            assert_eq!(got.l2.to_bits(), want.l2.to_bits());
            assert_eq!(got.epe_violations(), want.epe_violations());
            assert_eq!(got.violations.count(), want.violations.count());
            assert_eq!(got.printed.as_slice(), want.printed.as_slice());
            assert_eq!(got.masks[0].as_slice(), want.masks[0].as_slice());
            assert_eq!(got.masks[1].as_slice(), want.masks[1].as_slice());
            assert_eq!(got.iterations_run, 0);
            assert!(got.trajectory.is_empty());
            assert_eq!(got.health, OutcomeHealth::Clean);
        }
    }

    #[test]
    fn unoptimized_evaluation_is_fast_baseline() {
        let layout = two_contact_layout(160);
        let out = evaluate_unoptimized(&layout, &[0, 1], &fast_cfg());
        assert_eq!(out.iterations_run, 0);
        assert!(out.trajectory.is_empty());
    }

    #[test]
    fn session_stepping_matches_one_shot() {
        // driving a session manually for max_iterations must land on the
        // same result as optimize() with the Run policy
        let layout = two_contact_layout(120);
        let cfg = IltConfig {
            max_iterations: 6,
            ..fast_cfg()
        };
        let one_shot = optimize(&layout, &[0, 1], &cfg);
        let mut session = IltSession::new(&layout, &[0, 1], &cfg);
        session.step(6);
        let stepped = session.into_outcome();
        assert_eq!(stepped.iterations_run, one_shot.iterations_run);
        assert!((stepped.l2 - one_shot.l2).abs() < 1e-9);
        assert_eq!(stepped.epe_violations(), one_shot.epe_violations());
    }

    #[test]
    fn session_l2_decreases_over_steps() {
        let layout = two_contact_layout(120);
        let mut session = IltSession::new(&layout, &[0, 1], &fast_cfg());
        let first = session.step_one();
        session.step(8);
        let later = session.step_one();
        assert!(later < first, "L2 {first} -> {later}");
        assert_eq!(session.iterations(), 10);
        assert!(session.last_l2().is_finite());
    }

    #[test]
    #[should_panic(expected = "assignment must cover")]
    fn wrong_assignment_length_panics() {
        let layout = two_contact_layout(160);
        let _ = optimize(&layout, &[0], &fast_cfg());
    }

    /// Serializes tests that install a global fault plan.
    static FAULT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn guards_are_bit_identical_to_disabled_on_healthy_runs() {
        let layout = two_contact_layout(120);
        let cfg_on = IltConfig {
            max_iterations: 8,
            ..fast_cfg()
        };
        let cfg_off = IltConfig {
            guard: GuardPolicy::disabled(),
            ..cfg_on.clone()
        };
        let on = optimize(&layout, &[0, 1], &cfg_on);
        let off = optimize(&layout, &[0, 1], &cfg_off);
        assert_eq!(
            on.l2.to_bits(),
            off.l2.to_bits(),
            "guards changed a healthy run"
        );
        assert_eq!(on.masks[0].as_slice(), off.masks[0].as_slice());
        assert_eq!(on.health, OutcomeHealth::Clean);
        assert_eq!(on.rollbacks, 0);
    }

    #[test]
    fn nan_gradient_injection_rolls_back_and_recovers() {
        let _g = FAULT_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let layout = two_contact_layout(120);
        let cfg = IltConfig {
            max_iterations: 8,
            ..fast_cfg()
        };
        fault::install(ldmo_guard::FaultPlan {
            nan_grad_at: Some(3),
            ..Default::default()
        });
        let out = optimize(&layout, &[0, 1], &cfg);
        fault::clear();
        assert_eq!(out.health, OutcomeHealth::RecoveredAfterRollback);
        assert_eq!(out.rollbacks, 1);
        assert!(out.l2.is_finite(), "recovered outcome must be finite");
        assert!(out.masks[0].as_slice().iter().all(|v| v.is_finite()));
        // and with the plan cleared the run is healthy again
        let clean = optimize(&layout, &[0, 1], &cfg);
        assert_eq!(clean.health, OutcomeHealth::Clean);
    }

    #[test]
    fn iteration_budget_degrades_instead_of_running_forever() {
        let layout = two_contact_layout(120);
        let cfg = IltConfig {
            max_iterations: 29,
            budget: Budget {
                max_iterations: Some(4),
                max_wall: None,
            },
            ..fast_cfg()
        };
        let out = optimize(&layout, &[0, 1], &cfg);
        assert_eq!(out.iterations_run, 4);
        assert_eq!(
            out.health,
            OutcomeHealth::Degraded {
                reason: DegradeReason::BudgetExhausted
            }
        );
        assert!(!out.is_clean());
        assert!(
            out.l2.is_finite(),
            "degraded outcome still carries an iterate"
        );
    }

    #[test]
    fn zero_wall_budget_degrades_before_the_first_iteration() {
        let layout = two_contact_layout(160);
        let cfg = IltConfig {
            budget: Budget {
                max_iterations: None,
                max_wall: Some(std::time::Duration::ZERO),
            },
            ..fast_cfg()
        };
        let out = optimize(&layout, &[0, 1], &cfg);
        assert_eq!(out.iterations_run, 0);
        assert!(out.health.is_degraded());
    }

    #[test]
    fn oscillating_candidate_terminates_at_its_deadline_with_a_penalty() {
        // a crafted never-converging run: an absurd step size makes every
        // update overshoot the corridor, so L2 oscillates instead of
        // descending. The budget must cut it off, mark it Degraded, and
        // the penalty for its reason must dwarf any healthy Eq. 9 score.
        let layout = two_contact_layout(120);
        let cfg = IltConfig {
            step_size: 64.0,
            max_iterations: 29,
            budget: Budget {
                max_iterations: Some(6),
                max_wall: None,
            },
            ..fast_cfg()
        };
        let out = optimize(&layout, &[0, 1], &cfg);
        assert!(out.iterations_run <= 6, "deadline did not cut the run");
        assert!(
            out.health.is_degraded(),
            "never-converging run must degrade, got {:?}",
            out.health
        );
        assert!(out.l2.is_finite(), "best iterate must still be usable");
        let OutcomeHealth::Degraded { reason } = out.health else {
            unreachable!("checked degraded above");
        };
        assert!(ldmo_guard::penalty_score(reason) > 1.0e12);
    }
}
