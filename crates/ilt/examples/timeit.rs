//! Measure one full ILT run at default settings.
use ldmo_geom::Rect;
use ldmo_ilt::{optimize, IltConfig};
use ldmo_layout::Layout;
use std::time::Instant;

fn main() {
    let layout = Layout::new(
        Rect::new(0, 0, 448, 448),
        vec![
            Rect::square(120, 120, 64),
            Rect::square(248, 120, 64),
            Rect::square(120, 248, 64),
            Rect::square(248, 248, 64),
        ],
    );
    let cfg = IltConfig::default();
    let t = Instant::now();
    let out = optimize(&layout, &[0, 1, 1, 0], &cfg);
    eprintln!(
        "one ILT run (29 iters): {:.3}s, epe={} ",
        t.elapsed().as_secs_f64(),
        out.epe_violations()
    );
}
