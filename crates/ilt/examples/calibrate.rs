//! Calibration probe: printability of dense same-mask configurations vs
//! decomposed ones, across optics parameters.
use ldmo_geom::Rect;
use ldmo_ilt::{optimize, IltConfig};
use ldmo_layout::Layout;

fn run(name: &str, layout: &Layout, a: &[u8], b: &[u8], cfg: &IltConfig) {
    let bad = optimize(layout, a, cfg);
    let good = optimize(layout, b, cfg);
    eprintln!(
        "{name:>14} | bad: epe={:>3} viol={} | good: epe={:>3} viol={}",
        bad.epe_violations(),
        bad.violations.count(),
        good.epe_violations(),
        good.violations.count()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sigma_p: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40.0);
    let sigma_s: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(75.0);
    let mrc: i32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(24);
    let size: i32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(64);
    let mut cfg = IltConfig::default();
    cfg.litho.sigma_primary = sigma_p;
    cfg.litho.sigma_secondary = sigma_s;
    cfg.mrc_expand_nm = mrc;
    eprintln!("== sigma=({sigma_p},{sigma_s}) mrc={mrc} size={size}");

    let win = Rect::new(0, 0, 448, 448);
    // isolated contact
    let iso = Layout::new(win, vec![Rect::square(192, 192, size)]);
    let out = optimize(&iso, &[0], &cfg);
    eprintln!(
        "      isolated | epe={} viol={}",
        out.epe_violations(),
        out.violations.count()
    );

    for gap in [56, 68, 80, 92] {
        let pitch = size + gap;
        // pair
        let pair = Layout::new(
            win,
            vec![
                Rect::square(120, 192, size),
                Rect::square(120 + pitch, 192, size),
            ],
        );
        run(&format!("pair g={gap}"), &pair, &[0, 0], &[0, 1], &cfg);
        // row of 3
        let row3 = Layout::new(
            win,
            vec![
                Rect::square(60, 192, size),
                Rect::square(60 + pitch, 192, size),
                Rect::square(60 + 2 * pitch, 192, size),
            ],
        );
        run(
            &format!("row3 g={gap}"),
            &row3,
            &[0, 0, 0],
            &[0, 1, 0],
            &cfg,
        );
    }
    // 3x3 grid at gap 68 (DFF-like)
    let g = 68;
    let pitch = size + g;
    let mut pats = Vec::new();
    for r in 0..3 {
        for c in 0..3 {
            pats.push(Rect::square(60 + c * pitch, 60 + r * pitch, size));
        }
    }
    let grid9 = Layout::new(win, pats.clone());
    let all0 = vec![0u8; 9];
    let checker: Vec<u8> = (0..9).map(|i| ((i / 3 + i % 3) % 2) as u8).collect();
    run("grid9 g=68", &grid9, &all0, &checker, &cfg);

    // 2x2 grid, bad vs good
    for g in [56, 64, 72] {
        let pitch = size + g;
        let quad = Layout::new(
            win,
            vec![
                Rect::square(120, 120, size),
                Rect::square(120 + pitch, 120, size),
                Rect::square(120, 120 + pitch, size),
                Rect::square(120 + pitch, 120 + pitch, size),
            ],
        );
        run(
            &format!("quad g={g}"),
            &quad,
            &[0, 0, 0, 0],
            &[0, 1, 1, 0],
            &cfg,
        );
    }

    // does AbortOnBridge ever fire on dense same-mask clusters?
    let mut acfg = cfg.clone();
    acfg.policy = ldmo_ilt::ViolationPolicy::AbortOnViolation;
    for g in [50, 56, 68] {
        let pitch = size + g;
        let quad = Layout::new(
            win,
            vec![
                Rect::square(120, 120, size),
                Rect::square(120 + pitch, 120, size),
                Rect::square(120, 120 + pitch, size),
                Rect::square(120 + pitch, 120 + pitch, size),
            ],
        );
        let out = optimize(&quad, &[0, 0, 0, 0], &acfg);
        eprintln!(
            "abort quad g={g}: aborted_at={:?} viol={} epe={}",
            out.aborted_at,
            out.violations.count(),
            out.epe_violations()
        );
    }
    let out9 = optimize(&grid9, &all0, &acfg);
    eprintln!(
        "abort grid9 g=68: aborted_at={:?} viol={} epe={}",
        out9.aborted_at,
        out9.violations.count(),
        out9.epe_violations()
    );
}
