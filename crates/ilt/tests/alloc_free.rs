//! Allocation-count regression test: `IltSession::step_one` must not touch
//! the heap once the session is constructed — every per-iteration buffer
//! (forward artifacts, gradients, convolution scratch) is owned by the
//! session.
//!
//! The counting allocator that started life in this file is now the
//! reusable `ldmo_obs::alloc::CountingAlloc` (the same machinery the
//! `mem.*` trace gauges read), so this test doubles as proof that the
//! memory self-profiling layer itself observes zero hot-path allocations.
//!
//! This test lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`, which must not observe allocations from
//! unrelated concurrently running tests.

use ldmo_obs::alloc::{alloc_event_count, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn step_one_is_allocation_free_after_warmup() {
    use ldmo_geom::Rect;
    use ldmo_ilt::{IltConfig, IltSession};
    use ldmo_layout::Layout;

    let layout = Layout::new(
        Rect::new(0, 0, 448, 448),
        vec![
            Rect::square(120, 120, 64),
            Rect::square(248, 120, 64),
            Rect::square(120, 248, 64),
            Rect::square(248, 248, 64),
        ],
    );
    // The trace collector must also be allocation-free on the hot path:
    // records go into a preallocated buffer, metric handles are leaked
    // statics. Enabling it here makes the guard cover the instrumented
    // path, not just the disabled fast path.
    ldmo_obs::enable();
    assert!(
        ldmo_obs::alloc::installed(),
        "the counting allocator must have observed the setup allocations"
    );
    // Every backend must keep the hot loop allocation-free — the SIMD
    // passes use the same caller-owned buffers as scalar, and the batched
    // backend's per-pass arithmetic is the SIMD path. One loop in one test:
    // the counting allocator is process-global, so parallel per-backend
    // tests would observe each other's setup allocations.
    use ldmo_litho::backend::{self, BackendKind};
    let prev = backend::backend_kind();
    for kind in [BackendKind::Scalar, BackendKind::Simd, BackendKind::Batched] {
        backend::set_backend(kind);
        let mut session = IltSession::new(&layout, &[0, 1, 1, 0], &IltConfig::default());
        // warmup: the first iterations populate anything touched lazily
        // (including lazy metric registration in ldmo-obs and the SIMD
        // feature-detection cache)
        session.step_one();
        session.step_one();

        let before = alloc_event_count();
        let l2 = session.step_one();
        let allocated = alloc_event_count() - before;
        assert!(l2.is_finite());
        assert_eq!(
            allocated, 0,
            "step_one under backend '{kind}' performed {allocated} heap allocations; \
             the hot path must reuse session buffers"
        );
    }
    backend::set_backend(prev);
    // the self-profiling counters themselves must have seen real traffic
    assert!(ldmo_obs::alloc::peak_bytes() > 0);
    assert!(ldmo_obs::alloc::current_bytes() <= ldmo_obs::alloc::peak_bytes());
}
