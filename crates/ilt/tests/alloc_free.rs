//! Allocation-count regression test: `IltSession::step_one` must not touch
//! the heap once the session is constructed — every per-iteration buffer
//! (forward artifacts, gradients, convolution scratch) is owned by the
//! session.
//!
//! This test lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`, which must not observe allocations from
//! unrelated concurrently running tests.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every allocation and
/// reallocation (frees are irrelevant to the regression being guarded).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn step_one_is_allocation_free_after_warmup() {
    use ldmo_geom::Rect;
    use ldmo_ilt::{IltConfig, IltSession};
    use ldmo_layout::Layout;

    let layout = Layout::new(
        Rect::new(0, 0, 448, 448),
        vec![
            Rect::square(120, 120, 64),
            Rect::square(248, 120, 64),
            Rect::square(120, 248, 64),
            Rect::square(248, 248, 64),
        ],
    );
    // The trace collector must also be allocation-free on the hot path:
    // records go into a preallocated buffer, metric handles are leaked
    // statics. Enabling it here makes the guard cover the instrumented
    // path, not just the disabled fast path.
    ldmo_obs::enable();
    let mut session = IltSession::new(&layout, &[0, 1, 1, 0], &IltConfig::default());
    // warmup: the first iterations populate anything touched lazily
    // (including lazy metric registration in ldmo-obs)
    session.step_one();
    session.step_one();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let l2 = session.step_one();
    let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(l2.is_finite());
    assert_eq!(
        allocated, 0,
        "step_one performed {allocated} heap allocations; the hot path must reuse session buffers"
    );
}
