//! Dense row-major `f32` raster grids (images, masks, aerial intensities).

use crate::{GeomError, Rect};
use std::fmt;

/// A dense `width × height` grid of `f32` values with 1 nm pixels.
///
/// Grids carry target layouts (binary 0/1), relaxed masks (values in
/// `(0, 1)`), aerial intensities and printed resist images. Indexing is
/// `(x, y)` with `x` the column and `y` the row; storage is row-major
/// (`y * width + x`).
///
/// ```
/// use ldmo_geom::{Grid, Rect};
/// let mut g = Grid::zeros(32, 16);
/// g.fill_rect(&Rect::new(4, 4, 8, 8), 1.0);
/// assert_eq!(g.sum(), 16.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Grid {
    /// Creates a grid filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0.0)
    }

    /// Creates a grid filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "buffer length mismatch");
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid {
            width,
            height,
            data,
        }
    }

    /// Grid width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the grid, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Value at `(x, y)`, or `0.0` outside the grid (zero padding).
    #[inline]
    pub fn get_padded(&self, x: i64, y: i64) -> f32 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0.0
        } else {
            self.data[y as usize * self.width + x as usize]
        }
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "grid index out of bounds"
        );
        self.data[y * self.width + x] = value;
    }

    /// Fills the intersection of `rect` with the grid with `value`.
    /// Portions of the rectangle outside the grid are ignored.
    pub fn fill_rect(&mut self, rect: &Rect, value: f32) {
        let x0 = rect.x0.max(0) as usize;
        let y0 = rect.y0.max(0) as usize;
        let x1 = (rect.x1.max(0) as usize).min(self.width);
        let y1 = (rect.y1.max(0) as usize).min(self.height);
        for y in y0..y1 {
            let row = &mut self.data[y * self.width..(y + 1) * self.width];
            for v in &mut row[x0..x1] {
                *v = value;
            }
        }
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum()
    }

    /// Maximum value (`-inf` never occurs since grids are non-empty).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum value.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sets every element to `value` without reallocating. The scratch-buffer
    /// counterpart of [`Grid::filled`].
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Overwrites this grid with the contents of `src` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Grid) {
        assert_eq!(self.shape(), src.shape(), "grids must share a shape");
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites this grid with `f` applied element-wise to `src` — the
    /// buffer-reuse counterpart of [`Grid::map`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn map_from<F: FnMut(f32) -> f32>(&mut self, src: &Grid, mut f: F) {
        assert_eq!(self.shape(), src.shape(), "grids must share a shape");
        for (d, &s) in self.data.iter_mut().zip(&src.data) {
            *d = f(s);
        }
    }

    /// Overwrites this grid with `f(a, b)` element-wise from two equally
    /// shaped sources — the buffer-reuse counterpart of [`Grid::zip_map`].
    ///
    /// # Panics
    ///
    /// Panics if any shape differs.
    pub fn zip_from<F: FnMut(f32, f32) -> f32>(&mut self, a: &Grid, b: &Grid, mut f: F) {
        assert_eq!(self.shape(), a.shape(), "grids must share a shape");
        assert_eq!(self.shape(), b.shape(), "grids must share a shape");
        for ((d, &x), &y) in self.data.iter_mut().zip(&a.data).zip(&b.data) {
            *d = f(x, y);
        }
    }

    /// New grid with `f` applied to every element.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Grid {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise binary combination of two equally shaped grids.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ShapeMismatch`] when shapes differ.
    pub fn zip_map<F: FnMut(f32, f32) -> f32>(
        &self,
        other: &Grid,
        mut f: F,
    ) -> Result<Grid, GeomError> {
        if self.shape() != other.shape() {
            return Err(GeomError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(Grid {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Squared L2 distance to `other`: `Σ (a - b)²`.
    ///
    /// This is the paper's "L2 Error" (Definition 2) when `self` is the
    /// printed image and `other` the target image.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::ShapeMismatch`] when shapes differ.
    pub fn l2_dist_sq(&self, other: &Grid) -> Result<f64, GeomError> {
        if self.shape() != other.shape() {
            return Err(GeomError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum())
    }

    /// Binary grid: 1.0 where `value >= threshold`, else 0.0.
    pub fn binarize(&self, threshold: f32) -> Grid {
        self.map(|v| if v >= threshold { 1.0 } else { 0.0 })
    }

    /// Count of pixels `>= threshold`.
    pub fn count_above(&self, threshold: f32) -> usize {
        self.data.iter().filter(|&&v| v >= threshold).count()
    }

    /// Bilinear sample at a floating-point position (zero padded outside).
    pub fn sample_bilinear(&self, x: f64, y: f64) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = (x - x0) as f32;
        let fy = (y - y0) as f32;
        let (xi, yi) = (x0 as i64, y0 as i64);
        let v00 = self.get_padded(xi, yi);
        let v10 = self.get_padded(xi + 1, yi);
        let v01 = self.get_padded(xi, yi + 1);
        let v11 = self.get_padded(xi + 1, yi + 1);
        v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy
    }

    /// Extracts the sub-grid covered by `rect` (clipped to bounds,
    /// zero-filled where `rect` extends beyond the grid).
    pub fn crop(&self, rect: &Rect) -> Grid {
        let w = rect.width() as usize;
        let h = rect.height() as usize;
        let mut out = Grid::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                let sx = i64::from(rect.x0) + x as i64;
                let sy = i64::from(rect.y0) + y as i64;
                out.data[y * w + x] = self.get_padded(sx, sy);
            }
        }
        out
    }

    /// The grid mirrored left-right.
    pub fn flip_horizontal(&self) -> Grid {
        let mut out = Grid::zeros(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(self.width - 1 - x, y, self.get(x, y));
            }
        }
        out
    }

    /// The grid mirrored top-bottom.
    pub fn flip_vertical(&self) -> Grid {
        let mut out = Grid::zeros(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(x, self.height - 1 - y, self.get(x, y));
            }
        }
        out
    }

    /// The grid rotated 90° counter-clockwise (width and height swap).
    pub fn rotate90(&self) -> Grid {
        let mut out = Grid::zeros(self.height, self.width);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(y, self.width - 1 - x, self.get(x, y));
            }
        }
        out
    }

    /// Downsamples by an integer `factor` using average pooling. Trailing
    /// rows/columns that do not fill a complete block are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or exceeds either dimension.
    pub fn downsample_avg(&self, factor: usize) -> Grid {
        assert!(factor > 0, "factor must be positive");
        let w = self.width / factor;
        let h = self.height / factor;
        assert!(w > 0 && h > 0, "factor exceeds grid dimensions");
        let mut out = Grid::zeros(w, h);
        let norm = 1.0 / (factor * factor) as f32;
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                for dy in 0..factor {
                    for dx in 0..factor {
                        acc += self.get(x * factor + dx, y * factor + dy);
                    }
                }
                out.set(x, y, acc * norm);
            }
        }
        out
    }

    /// Renders the grid as a binary PGM (P2) string, mapping `[0, 1]` to
    /// `[0, 255]`. Used by the figure harnesses to dump images.
    pub fn to_pgm(&self) -> String {
        let mut s = format!("P2\n{} {}\n255\n", self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = (self.get(x, y).clamp(0.0, 1.0) * 255.0).round() as u8;
                s.push_str(&v.to_string());
                s.push(if x + 1 == self.width { '\n' } else { ' ' });
            }
        }
        s
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid({}×{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_fill() {
        let mut g = Grid::zeros(8, 4);
        assert_eq!(g.shape(), (8, 4));
        assert_eq!(g.sum(), 0.0);
        g.fill_rect(&Rect::new(1, 1, 3, 3), 1.0);
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.get(1, 1), 1.0);
        assert_eq!(g.get(3, 3), 0.0);
    }

    #[test]
    fn fill_rect_clips_to_bounds() {
        let mut g = Grid::zeros(4, 4);
        g.fill_rect(&Rect::new(-10, -10, 2, 2), 1.0);
        assert_eq!(g.sum(), 4.0);
        g.fill_rect(&Rect::new(3, 3, 100, 100), 1.0);
        assert_eq!(g.sum(), 5.0);
    }

    #[test]
    fn padded_access() {
        let mut g = Grid::zeros(2, 2);
        g.set(1, 1, 7.0);
        assert_eq!(g.get_padded(1, 1), 7.0);
        assert_eq!(g.get_padded(-1, 0), 0.0);
        assert_eq!(g.get_padded(2, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let g = Grid::zeros(2, 2);
        let _ = g.get(2, 0);
    }

    #[test]
    fn l2_dist_and_shape_mismatch() {
        let a = Grid::filled(2, 2, 1.0);
        let b = Grid::filled(2, 2, 0.5);
        assert!((a.l2_dist_sq(&b).expect("shapes match") - 1.0).abs() < 1e-9);
        let c = Grid::zeros(3, 2);
        assert!(matches!(
            a.l2_dist_sq(&c),
            Err(GeomError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn binarize_and_count() {
        let g = Grid::from_vec(2, 2, vec![0.1, 0.6, 0.5, 0.9]);
        let b = g.binarize(0.5);
        assert_eq!(b.as_slice(), &[0.0, 1.0, 1.0, 1.0]);
        assert_eq!(g.count_above(0.5), 3);
    }

    #[test]
    fn bilinear_interpolates_between_pixels() {
        let g = Grid::from_vec(2, 1, vec![0.0, 1.0]);
        assert!((g.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
        assert!((g.sample_bilinear(0.0, 0.0) - 0.0).abs() < 1e-6);
        assert!((g.sample_bilinear(1.0, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn crop_with_padding() {
        let mut g = Grid::zeros(4, 4);
        g.set(0, 0, 5.0);
        let c = g.crop(&Rect::new(-1, -1, 2, 2));
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.get(0, 0), 0.0); // padded corner
        assert_eq!(c.get(1, 1), 5.0); // original (0,0)
    }

    #[test]
    fn flips_are_involutions() {
        let g = Grid::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(g.flip_horizontal().flip_horizontal(), g);
        assert_eq!(g.flip_vertical().flip_vertical(), g);
        assert_eq!(g.flip_horizontal().get(0, 0), 3.0);
        assert_eq!(g.flip_vertical().get(0, 0), 4.0);
    }

    #[test]
    fn four_rotations_are_identity() {
        let g = Grid::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = g.rotate90();
        assert_eq!(r.shape(), (2, 3));
        // (0,0) -> (y=0, x=w-1-0=2): value 1 lands at (0, 2)
        assert_eq!(r.get(0, 2), 1.0);
        let back = g.rotate90().rotate90().rotate90().rotate90();
        assert_eq!(back, g);
    }

    #[test]
    fn downsample_averages_blocks() {
        let g = Grid::from_vec(4, 2, vec![1.0, 3.0, 0.0, 0.0, 5.0, 7.0, 0.0, 0.0]);
        let d = g.downsample_avg(2);
        assert_eq!(d.shape(), (2, 1));
        assert_eq!(d.get(0, 0), 4.0); // (1+3+5+7)/4
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    fn downsample_drops_partial_blocks() {
        let g = Grid::filled(5, 5, 1.0);
        let d = g.downsample_avg(2);
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d.get(1, 1), 1.0);
    }

    #[test]
    fn pgm_header() {
        let g = Grid::filled(2, 2, 1.0);
        let pgm = g.to_pgm();
        assert!(pgm.starts_with("P2\n2 2\n255\n"));
        assert!(pgm.contains("255"));
    }

    #[test]
    fn buffer_reuse_helpers_match_allocating_counterparts() {
        let src = Grid::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.0]);
        let other = Grid::from_vec(2, 2, vec![1.0, 1.0, -0.5, 3.0]);
        let mut buf = Grid::filled(2, 2, 9.0);
        buf.fill(0.25);
        assert_eq!(buf, Grid::filled(2, 2, 0.25));
        buf.copy_from(&src);
        assert_eq!(buf, src);
        buf.map_from(&src, |v| v * 2.0);
        assert_eq!(buf, src.map(|v| v * 2.0));
        buf.zip_from(&src, &other, |a, b| a + b);
        assert_eq!(buf, src.zip_map(&other, |a, b| a + b).expect("same shape"));
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn copy_from_rejects_shape_mismatch() {
        let mut a = Grid::zeros(2, 2);
        a.copy_from(&Grid::zeros(3, 2));
    }

    #[test]
    fn min_max_mean() {
        let g = Grid::from_vec(3, 1, vec![-1.0, 0.0, 4.0]);
        assert_eq!(g.min(), -1.0);
        assert_eq!(g.max(), 4.0);
        assert!((g.mean() - 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn l2_dist_is_zero_iff_equal(vals in proptest::collection::vec(-1.0f32..1.0, 16)) {
            let g = Grid::from_vec(4, 4, vals);
            prop_assert_eq!(g.l2_dist_sq(&g).expect("same shape"), 0.0);
        }

        #[test]
        fn binarize_idempotent(vals in proptest::collection::vec(0.0f32..1.0, 16)) {
            let g = Grid::from_vec(4, 4, vals);
            let b = g.binarize(0.5);
            prop_assert_eq!(b.binarize(0.5), b.clone());
        }

        #[test]
        fn fill_rect_sum_equals_clipped_area(x0 in -8i32..8, y0 in -8i32..8, w in 1i32..12, h in 1i32..12) {
            let mut g = Grid::zeros(8, 8);
            let r = Rect::new(x0, y0, x0 + w, y0 + h);
            g.fill_rect(&r, 1.0);
            let clipped_w = (r.x1.clamp(0, 8) - r.x0.clamp(0, 8)).max(0);
            let clipped_h = (r.y1.clamp(0, 8) - r.y0.clamp(0, 8)).max(0);
            prop_assert_eq!(g.sum() as i64, i64::from(clipped_w) * i64::from(clipped_h));
        }
    }
}
