#![warn(missing_docs)]
//! # ldmo-geom — geometry and raster substrate
//!
//! Fixed-point planar geometry (1 unit = 1 nm) and dense `f32` raster grids
//! used everywhere in the LDMO reproduction: layouts are sets of rectangular
//! contact patterns, lithography operates on rasterized grids, and EPE is
//! measured against rectangle edges.
//!
//! The two central types are [`Rect`] (an axis-aligned rectangle in nm) and
//! [`Grid`] (a row-major `f32` image whose pixels are 1 nm² each).
//!
//! ```
//! use ldmo_geom::{Rect, Grid};
//!
//! let r = Rect::new(10, 10, 40, 40);
//! assert_eq!(r.width(), 30);
//! let mut g = Grid::zeros(64, 64);
//! g.fill_rect(&r, 1.0);
//! assert_eq!(g.get(20, 20), 1.0);
//! assert_eq!(g.get(5, 5), 0.0);
//! ```

mod grid;
mod point;
mod rect;

pub use grid::Grid;
pub use point::{Point, Vec2};
pub use rect::Rect;

/// Errors produced by geometry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A rectangle had non-positive width or height.
    EmptyRect {
        /// Offending coordinates `(x0, y0, x1, y1)`.
        coords: (i32, i32, i32, i32),
    },
    /// Grid dimensions mismatched for an element-wise operation.
    ShapeMismatch {
        /// Left operand shape `(w, h)`.
        left: (usize, usize),
        /// Right operand shape `(w, h)`.
        right: (usize, usize),
    },
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::EmptyRect { coords } => {
                write!(f, "rectangle {coords:?} has non-positive extent")
            }
            GeomError::ShapeMismatch { left, right } => {
                write!(f, "grid shapes differ: {left:?} vs {right:?}")
            }
        }
    }
}

impl std::error::Error for GeomError {}
