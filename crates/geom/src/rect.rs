//! Axis-aligned rectangles on the nm grid.

use crate::{GeomError, Point, Vec2};
use std::fmt;

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)` in nm.
///
/// Contact patterns in the synthetic layouts are squares represented by this
/// type; EPE checkpoints are sampled on its edges. The half-open convention
/// matches raster semantics: a `w × h` rectangle covers exactly `w·h` pixels.
///
/// ```
/// use ldmo_geom::Rect;
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(20, 0, 30, 10);
/// assert_eq!(a.gap_to(&b), 10.0); // edge-to-edge spacing
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i32,
    /// Bottom edge (inclusive).
    pub y0: i32,
    /// Right edge (exclusive).
    pub x1: i32,
    /// Top edge (exclusive).
    pub y1: i32,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x1 <= x0` or `y1 <= y0`; use [`Rect::try_new`] for a
    /// fallible constructor.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Self::try_new(x0, y0, x1, y1).expect("rectangle must have positive extent")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if the extent is non-positive.
    pub fn try_new(x0: i32, y0: i32, x1: i32, y1: i32) -> Result<Self, GeomError> {
        if x1 <= x0 || y1 <= y0 {
            return Err(GeomError::EmptyRect {
                coords: (x0, y0, x1, y1),
            });
        }
        Ok(Rect { x0, y0, x1, y1 })
    }

    /// Creates a square of side `size` whose lower-left corner is `(x0, y0)`.
    pub fn square(x0: i32, y0: i32, size: i32) -> Self {
        Rect::new(x0, y0, x0 + size, y0 + size)
    }

    /// Creates a rectangle from its center and full extents.
    pub fn centered(cx: i32, cy: i32, w: i32, h: i32) -> Self {
        Rect::new(cx - w / 2, cy - h / 2, cx - w / 2 + w, cy - h / 2 + h)
    }

    /// Width in nm.
    pub fn width(&self) -> i32 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> i32 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        i64::from(self.width()) * i64::from(self.height())
    }

    /// Center (rounded down to the grid).
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// Exact floating-point center.
    pub fn center_f(&self) -> Vec2 {
        Vec2::new(
            f64::from(self.x0 + self.x1) / 2.0,
            f64::from(self.y0 + self.y1) / 2.0,
        )
    }

    /// Whether the point `(x, y)` lies inside the half-open rectangle.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Whether `self` and `other` overlap (share interior area).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Intersection of two rectangles, if non-empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        Rect::try_new(x0, y0, x1, y1).ok()
    }

    /// Smallest rectangle containing both.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Rectangle grown by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin collapses the rectangle.
    pub fn expanded(&self, margin: i32) -> Rect {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// Rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Minimum edge-to-edge Euclidean gap between two rectangles, in nm.
    ///
    /// Returns `0.0` for touching or overlapping rectangles. This is the
    /// spacing measure `d` used by the paper's pattern classification
    /// (Eq. 6): patterns with `gap <= nmin` are separated patterns, etc.
    pub fn gap_to(&self, other: &Rect) -> f64 {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        f64::from(dx).hypot(f64::from(dy))
    }

    /// Center-to-center Euclidean distance, in nm.
    pub fn center_dist(&self, other: &Rect) -> f64 {
        (self.center_f() - other.center_f()).norm()
    }

    /// Iterates over the four corner points, counter-clockwise from `(x0, y0)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.x0, self.y0),
            Point::new(self.x1, self.y0),
            Point::new(self.x1, self.y1),
            Point::new(self.x0, self.y1),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} — {},{}]", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_measures() {
        let r = Rect::new(2, 3, 12, 8);
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 50);
        assert_eq!(r.center(), Point::new(7, 5));
    }

    #[test]
    fn try_new_rejects_empty() {
        assert!(Rect::try_new(0, 0, 0, 5).is_err());
        assert!(Rect::try_new(0, 0, 5, 0).is_err());
        assert!(Rect::try_new(5, 0, 0, 5).is_err());
        assert!(Rect::try_new(0, 0, 1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn new_panics_on_empty() {
        let _ = Rect::new(3, 3, 3, 3);
    }

    #[test]
    fn containment_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(0, 0));
        assert!(r.contains(9, 9));
        assert!(!r.contains(10, 0));
        assert!(!r.contains(0, 10));
        assert!(!r.contains(-1, 5));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        let c = Rect::new(10, 0, 20, 10); // touching edge: no interior overlap
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn gap_horizontal_vertical_diagonal() {
        let a = Rect::new(0, 0, 10, 10);
        assert_eq!(a.gap_to(&Rect::new(25, 0, 35, 10)), 15.0);
        assert_eq!(a.gap_to(&Rect::new(0, 22, 10, 30)), 12.0);
        // diagonal: dx = 3, dy = 4 -> 5
        assert_eq!(a.gap_to(&Rect::new(13, 14, 20, 20)), 5.0);
        // overlap -> 0
        assert_eq!(a.gap_to(&Rect::new(5, 5, 9, 9)), 0.0);
    }

    #[test]
    fn square_and_centered() {
        let s = Rect::square(5, 6, 40);
        assert_eq!((s.width(), s.height()), (40, 40));
        let c = Rect::centered(50, 50, 20, 10);
        assert_eq!(c, Rect::new(40, 45, 60, 55));
    }

    #[test]
    fn translate_and_expand() {
        let r = Rect::new(0, 0, 10, 10).translated(5, -2).expanded(1);
        assert_eq!(r, Rect::new(4, -3, 16, 9));
    }

    #[test]
    fn corners_ccw() {
        let r = Rect::new(1, 2, 3, 4);
        assert_eq!(
            r.corners(),
            [
                Point::new(1, 2),
                Point::new(3, 2),
                Point::new(3, 4),
                Point::new(1, 4)
            ]
        );
    }

    proptest! {
        #[test]
        fn gap_symmetric(ax in -100i32..100, ay in -100i32..100, aw in 1i32..50, ah in 1i32..50,
                         bx in -100i32..100, by in -100i32..100, bw in 1i32..50, bh in 1i32..50) {
            let a = Rect::new(ax, ay, ax + aw, ay + ah);
            let b = Rect::new(bx, by, bx + bw, by + bh);
            prop_assert!((a.gap_to(&b) - b.gap_to(&a)).abs() < 1e-9);
        }

        #[test]
        fn overlap_implies_zero_gap(ax in -50i32..50, ay in -50i32..50, aw in 1i32..40, ah in 1i32..40,
                                    bx in -50i32..50, by in -50i32..50, bw in 1i32..40, bh in 1i32..40) {
            let a = Rect::new(ax, ay, ax + aw, ay + ah);
            let b = Rect::new(bx, by, bx + bw, by + bh);
            if a.intersects(&b) {
                prop_assert_eq!(a.gap_to(&b), 0.0);
            } else {
                prop_assert!(a.gap_to(&b) >= 0.0);
            }
        }

        #[test]
        fn union_contains_both(ax in -50i32..50, ay in -50i32..50, aw in 1i32..40, ah in 1i32..40,
                               bx in -50i32..50, by in -50i32..50, bw in 1i32..40, bh in 1i32..40) {
            let a = Rect::new(ax, ay, ax + aw, ay + ah);
            let b = Rect::new(bx, by, bx + bw, by + bh);
            let u = a.union_bbox(&b);
            prop_assert!(u.x0 <= a.x0 && u.x1 >= a.x1 && u.y0 <= b.y0 && u.y1 >= b.y1);
        }
    }
}
