//! Integer lattice points and floating-point vectors.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A point on the 1 nm design grid.
///
/// ```
/// use ldmo_geom::Point;
/// let a = Point::new(3, 4);
/// assert_eq!(a.dist(Point::new(0, 0)), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate in nm.
    pub x: i32,
    /// Vertical coordinate in nm.
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        let dx = f64::from(self.x - other.x);
        let dy = f64::from(self.y - other.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance to `other` (exact, in nm²).
    pub fn dist_sq(self, other: Point) -> i64 {
        let dx = i64::from(self.x - other.x);
        let dy = i64::from(self.y - other.y);
        dx * dx + dy * dy
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Point) -> i64 {
        i64::from((self.x - other.x).abs()) + i64::from((self.y - other.y).abs())
    }

    /// Converts to a floating-point vector.
    pub fn to_vec2(self) -> Vec2 {
        Vec2::new(f64::from(self.x), f64::from(self.y))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

/// A 2-D floating-point vector, used for sub-pixel positions
/// (EPE checkpoints, SIFT keypoints) and directions.
///
/// ```
/// use ldmo_geom::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Unit vector in the same direction; returns `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1, 2);
        let b = Point::new(3, -4);
        assert_eq!(a + b, Point::new(4, -2));
        assert_eq!(a - b, Point::new(-2, 6));
        assert_eq!(-a, Point::new(-1, -2));
    }

    #[test]
    fn point_distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25);
        assert_eq!(a.manhattan(b), 7);
    }

    #[test]
    fn dist_sq_no_overflow_on_extremes() {
        let a = Point::new(-1_000_000, -1_000_000);
        let b = Point::new(1_000_000, 1_000_000);
        assert_eq!(a.dist_sq(b), 8_000_000_000_000);
    }

    #[test]
    fn vec2_norm_dot() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        let u = v.normalized().expect("nonzero");
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::default().normalized().is_none());
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((v.x - 0.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_from_tuple_and_display() {
        let p: Point = (7, 9).into();
        assert_eq!(format!("{p}"), "(7, 9)");
    }
}
