//! Diagnostic: per-cell class mix and candidate counts.
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_layout::cells;
use ldmo_layout::classify::{pattern_sets, ClassifyConfig};
use ldmo_layout::drc::{check_drc, DrcRules};

fn main() {
    let cfg = DecompConfig::default();
    for (name, l) in cells::all_cells() {
        let sets = pattern_sets(&l, &ClassifyConfig::default());
        let cands = generate_candidates(&l, &cfg);
        let drc = check_drc(&l, &DrcRules::default());
        println!(
            "{name:>12}: n={} sp={} vp={} np={} candidates={} drc_violations={}",
            l.len(),
            sets.sp.len(),
            sets.vp.len(),
            sets.np.len(),
            cands.len(),
            drc.len()
        );
    }
}
