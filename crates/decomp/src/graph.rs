//! The weighted conflict graph over separated patterns (paper Fig. 3a).
//!
//! Vertices are the `SP` pattern indices; an edge connects two `SP` patterns
//! whose edge-to-edge gap is at most the conflict distance (`nmin`), weighted
//! by that gap. "The closer two patterns are, the stronger their interaction
//! is, so the nearest nodes should be separated in the first place" — which
//! is why the *minimum* spanning tree identifies the pairs that must go to
//! different masks first.

use ldmo_layout::Layout;

/// A weighted undirected edge between two pattern indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Lower endpoint (pattern index into the layout).
    pub a: usize,
    /// Higher endpoint.
    pub b: usize,
    /// Edge-to-edge gap in nm.
    pub weight: f64,
}

/// The conflict graph over a subset of patterns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConflictGraph {
    /// The vertex set: pattern indices, ascending.
    pub vertices: Vec<usize>,
    /// Conflict edges (gap ≤ the conflict distance).
    pub edges: Vec<Edge>,
}

impl ConflictGraph {
    /// Builds the conflict graph over the given `sp` pattern indices of
    /// `layout`, connecting pairs with gap at most `conflict_distance`
    /// (`nmin` in the paper).
    ///
    /// ```
    /// use ldmo_geom::Rect;
    /// use ldmo_layout::Layout;
    /// use ldmo_decomp::ConflictGraph;
    ///
    /// let layout = Layout::new(
    ///     Rect::new(0, 0, 448, 448),
    ///     vec![Rect::square(40, 40, 64), Rect::square(170, 40, 64)],
    /// );
    /// let g = ConflictGraph::build(&layout, &[0, 1], 80.0);
    /// assert_eq!(g.edges.len(), 1); // 66 nm gap ≤ 80
    /// ```
    pub fn build(layout: &Layout, sp: &[usize], conflict_distance: f64) -> Self {
        let mut edges = Vec::new();
        for (i, &pa) in sp.iter().enumerate() {
            for &pb in &sp[i + 1..] {
                let gap = layout.patterns()[pa].gap_to(&layout.patterns()[pb]);
                if gap <= conflict_distance {
                    edges.push(Edge {
                        a: pa.min(pb),
                        b: pa.max(pb),
                        weight: gap,
                    });
                }
            }
        }
        ConflictGraph {
            vertices: sp.to_vec(),
            edges,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph is bipartite (2-colorable), checked by BFS.
    pub fn is_bipartite(&self) -> bool {
        use std::collections::{HashMap, VecDeque};
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in &self.edges {
            adj.entry(e.a).or_default().push(e.b);
            adj.entry(e.b).or_default().push(e.a);
        }
        let mut color: HashMap<usize, u8> = HashMap::new();
        for &start in &self.vertices {
            if color.contains_key(&start) {
                continue;
            }
            color.insert(start, 0);
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                let cu = color[&u];
                for &v in adj.get(&u).into_iter().flatten() {
                    match color.get(&v) {
                        Some(&cv) if cv == cu => return false,
                        Some(_) => {}
                        None => {
                            color.insert(v, 1 - cu);
                            queue.push_back(v);
                        }
                    }
                }
            }
        }
        true
    }
}

/// Whether `layout` is double-patterning compatible: its conflict graph
/// over *all* patterns (edges where the gap is at most `conflict_distance`,
/// the paper's `nmin`) must be bipartite, otherwise some pattern pair
/// closer than `nmin` inevitably shares a mask and cannot print. Real DPL
/// design flows reject such layouts before decomposition.
pub fn is_dpl_compatible(layout: &Layout, conflict_distance: f64) -> bool {
    let all: Vec<usize> = (0..layout.len()).collect();
    ConflictGraph::build(layout, &all, conflict_distance).is_bipartite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn layout(corners: &[(i32, i32)]) -> Layout {
        Layout::new(
            Rect::new(0, 0, 1000, 1000),
            corners
                .iter()
                .map(|&(x, y)| Rect::square(x, y, 64))
                .collect(),
        )
    }

    #[test]
    fn edges_only_within_conflict_distance() {
        // gaps: 0-1 = 66 (edge), 1-2 = 120 (no edge)
        let l = layout(&[(0, 0), (130, 0), (314, 0)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2], 80.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!((g.edges[0].a, g.edges[0].b), (0, 1));
        assert!((g.edges[0].weight - 66.0).abs() < 1e-9);
    }

    #[test]
    fn vertices_preserved_even_isolated() {
        let l = layout(&[(0, 0), (500, 500)]);
        let g = ConflictGraph::build(&l, &[0, 1], 80.0);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn subset_of_patterns_respected() {
        let l = layout(&[(0, 0), (130, 0), (260, 0)]);
        // only patterns 0 and 2 in the SP set: their gap is 196 -> no edge
        let g = ConflictGraph::build(&l, &[0, 2], 80.0);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn bipartite_detection() {
        // 4-cycle: bipartite
        let l = layout(&[(0, 0), (130, 0), (0, 130), (130, 130)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2, 3], 80.0);
        assert!(g.is_bipartite());
        // triangle: odd cycle
        let l = layout(&[(0, 0), (128, 0), (64, 110)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2], 80.0);
        assert_eq!(g.edge_count(), 3, "need a full triangle for this test");
        assert!(!g.is_bipartite());
    }

    #[test]
    fn dpl_compatibility_wrapper() {
        let good = layout(&[(0, 0), (130, 0), (260, 0)]);
        assert!(is_dpl_compatible(&good, 80.0));
        let bad = layout(&[(0, 0), (128, 0), (64, 110)]);
        assert!(!is_dpl_compatible(&bad, 80.0));
    }

    #[test]
    fn fig3_two_components() {
        // two clusters far apart, like the paper's Fig. 3
        let l = layout(&[(0, 0), (130, 0), (65, 130), (700, 700), (830, 700)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2, 3, 4], 80.0);
        // cluster 1: edges 0-1 (66), 0-2 and 1-2 (diagonal ~ less than 80?)
        // at least the two horizontal edges exist
        assert!(g.edge_count() >= 2);
        // no edge crosses the clusters
        assert!(g
            .edges
            .iter()
            .all(|e| (e.a < 3 && e.b < 3) || (e.a >= 3 && e.b >= 3)));
    }
}
