//! n-wise (combinatorial) covering arrays over binary factors — the
//! substitute for the Microsoft PICT library the paper uses.
//!
//! A strength-`t` covering array over `k` binary factors is a set of rows in
//! `{0,1}^k` such that for *any* `t` columns, all `2^t` value combinations
//! appear in some row (paper Section III-A, Fig. 4). The generator is a
//! deterministic greedy in the AETG family: each new row is chosen among
//! several greedily completed candidates to cover as many still-uncovered
//! `t`-tuples as possible.

/// Generates a strength-`t` covering array over `k` binary factors.
///
/// Rows are returned as `Vec<u8>` of length `k` with values 0/1. The result
/// is deterministic for given `(k, t)`.
///
/// Edge cases: `k == 0` yields one empty row; `t >= k` yields the full
/// Cartesian product `{0,1}^k`; `t == 0` yields a single all-zero row.
///
/// ```
/// use ldmo_decomp::covering::{covering_array, is_covering};
///
/// let rows = covering_array(6, 2);
/// assert!(is_covering(&rows, 6, 2));
/// // far fewer rows than the 64-row Cartesian product
/// assert!(rows.len() <= 10);
/// ```
///
/// # Panics
///
/// Panics if `t > 16` (tuple enumeration would overflow; the paper only
/// uses strengths 2 and 3).
pub fn covering_array(k: usize, t: usize) -> Vec<Vec<u8>> {
    assert!(t <= 16, "strength above 16 is not supported");
    if k == 0 {
        return vec![vec![]];
    }
    if t == 0 {
        return vec![vec![0; k]];
    }
    if t >= k {
        return cartesian(k);
    }
    let columns = column_combos(k, t);
    // uncovered[ci] = bitmask over 2^t value combinations not yet seen
    let full: u32 = (1u32 << (1 << t)) - 1;
    let mut uncovered: Vec<u32> = vec![full; columns.len()];
    let mut remaining: usize = columns.len() << t;
    let mut rows: Vec<Vec<u8>> = Vec::new();
    let mut rotate = 0usize;
    while remaining > 0 {
        let mut best: Option<(usize, Vec<u8>)> = None;
        // several deterministic candidate rows, varying the seed tuple and
        // the column fill order
        for c in 0..8 {
            let cand = build_candidate(k, t, &columns, &uncovered, rotate + c);
            let gain = coverage_gain(&cand, t, &columns, &uncovered);
            if best.as_ref().is_none_or(|(g, _)| gain > *g) {
                best = Some((gain, cand));
            }
        }
        let (gain, row) = best.expect("at least one candidate");
        debug_assert!(gain > 0, "greedy must always make progress");
        // mark covered
        for (ci, cols) in columns.iter().enumerate() {
            let v = value_index(&row, cols);
            if uncovered[ci] & (1 << v) != 0 {
                uncovered[ci] &= !(1 << v);
                remaining -= 1;
            }
        }
        rows.push(row);
        rotate += 1;
    }
    rows
}

/// Verifies that `rows` is a strength-`t` covering array over `k` binary
/// factors.
pub fn is_covering(rows: &[Vec<u8>], k: usize, t: usize) -> bool {
    if k == 0 || t == 0 {
        return !rows.is_empty();
    }
    let t = t.min(k);
    for cols in column_combos(k, t) {
        let mut seen = 0u32;
        for row in rows {
            if row.len() != k {
                return false;
            }
            seen |= 1 << value_index(row, &cols);
        }
        if seen != (1u32 << (1 << t)) - 1 {
            return false;
        }
    }
    true
}

fn cartesian(k: usize) -> Vec<Vec<u8>> {
    (0..(1usize << k))
        .map(|m| (0..k).map(|i| ((m >> i) & 1) as u8).collect())
        .collect()
}

fn column_combos(k: usize, t: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..t).collect();
    loop {
        out.push(combo.clone());
        // next lexicographic combination
        let mut i = t;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if combo[i] != i + k - t {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        combo[i] += 1;
        for j in i + 1..t {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

#[inline]
fn value_index(row: &[u8], cols: &[usize]) -> u32 {
    cols.iter()
        .enumerate()
        .fold(0u32, |acc, (i, &c)| acc | (u32::from(row[c]) << i))
}

fn build_candidate(
    k: usize,
    t: usize,
    columns: &[Vec<usize>],
    uncovered: &[u32],
    variant: usize,
) -> Vec<u8> {
    // seed: the `variant`-th column set that still has uncovered tuples
    let mut row: Vec<Option<u8>> = vec![None; k];
    let open: Vec<usize> = (0..columns.len())
        .filter(|&ci| uncovered[ci] != 0)
        .collect();
    if !open.is_empty() {
        let ci = open[variant % open.len()];
        let v = uncovered[ci].trailing_zeros();
        for (i, &c) in columns[ci].iter().enumerate() {
            row[c] = Some(((v >> i) & 1) as u8);
        }
    }
    // fill remaining columns greedily, in an order rotated by `variant`
    for off in 0..k {
        let c = (off + variant * 7) % k;
        if row[c].is_some() {
            continue;
        }
        let mut best_v = 0u8;
        let mut best_gain = -1i64;
        for v in 0..2u8 {
            row[c] = Some(v);
            let gain = partial_gain(&row, t, columns, uncovered) as i64;
            if gain > best_gain {
                best_gain = gain;
                best_v = v;
            }
        }
        row[c] = Some(best_v);
    }
    row.into_iter().map(|v| v.unwrap_or(0)).collect()
}

/// Number of uncovered tuples that a (possibly partial) row can still cover:
/// counts column sets fully assigned by the row whose value is uncovered.
fn partial_gain(row: &[Option<u8>], _t: usize, columns: &[Vec<usize>], uncovered: &[u32]) -> u32 {
    let mut gain = 0;
    for (ci, cols) in columns.iter().enumerate() {
        if uncovered[ci] == 0 {
            continue;
        }
        let mut v = 0u32;
        let mut complete = true;
        for (i, &c) in cols.iter().enumerate() {
            match row[c] {
                Some(bit) => v |= u32::from(bit) << i,
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && uncovered[ci] & (1 << v) != 0 {
            gain += 1;
        }
    }
    gain
}

fn coverage_gain(row: &[u8], _t: usize, columns: &[Vec<usize>], uncovered: &[u32]) -> usize {
    let mut gain = 0;
    for (ci, cols) in columns.iter().enumerate() {
        if uncovered[ci] == 0 {
            continue;
        }
        let v = value_index(row, cols);
        if uncovered[ci] & (1 << v) != 0 {
            gain += 1;
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pairwise_small_counts() {
        for k in 2..=12 {
            let rows = covering_array(k, 2);
            assert!(is_covering(&rows, k, 2), "k={k} not covering");
            // pairwise binary arrays stay tiny; Cartesian would be 2^k
            assert!(rows.len() <= 12, "k={k}: {} rows", rows.len());
        }
    }

    #[test]
    fn three_wise_counts() {
        for k in 4..=10 {
            let rows = covering_array(k, 3);
            assert!(is_covering(&rows, k, 3), "k={k} not covering");
            assert!(
                rows.len() <= 30,
                "k={k}: {} rows (should be far below 2^{k})",
                rows.len()
            );
        }
    }

    #[test]
    fn strength_equal_k_is_cartesian() {
        let rows = covering_array(3, 3);
        assert_eq!(rows.len(), 8);
        assert!(is_covering(&rows, 3, 3));
    }

    #[test]
    fn strength_above_k_is_cartesian() {
        let rows = covering_array(2, 3);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn zero_factors() {
        let rows = covering_array(0, 2);
        assert_eq!(rows, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn one_factor_pairwise() {
        let rows = covering_array(1, 2);
        assert!(is_covering(&rows, 1, 1));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn deterministic() {
        assert_eq!(covering_array(7, 2), covering_array(7, 2));
        assert_eq!(covering_array(6, 3), covering_array(6, 3));
    }

    #[test]
    fn paper_example_shape() {
        // the paper's pairwise example: 4 factors, 5 instances; ours must be
        // a valid array of comparable size (±2 rows)
        let rows = covering_array(4, 2);
        assert!(is_covering(&rows, 4, 2));
        assert!(rows.len() <= 7);
    }

    #[test]
    fn verifier_rejects_bad_arrays() {
        // a single row cannot be pairwise covering for k >= 2
        assert!(!is_covering(&[vec![0, 0]], 2, 2));
        // wrong row width
        assert!(!is_covering(&[vec![0]], 2, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_sizes_always_cover(k in 2usize..10, t in 2usize..4) {
            let rows = covering_array(k, t);
            prop_assert!(is_covering(&rows, k, t));
        }
    }
}
