//! Dual-decomposition canonicalization (paper Fig. 4c).
//!
//! Masks are unordered: flipping every bit of an assignment describes the
//! same decomposition, so the same physical solution has two image
//! encodings. The paper "manually numbers the masks and fixes the pattern
//! numbered 1 on M1": whenever pattern 0 lands on mask 1, the whole row is
//! reversed, then identical rows are merged.

/// Canonicalizes a mask assignment in place: if the first pattern is on
/// mask 1, every bit is flipped. The relative position relationship among
/// patterns is untouched.
///
/// ```
/// use ldmo_decomp::canonical::canonicalize;
///
/// let mut a = vec![1, 0, 1];
/// canonicalize(&mut a);
/// assert_eq!(a, vec![0, 1, 0]);
///
/// let mut b = vec![0, 1, 0];
/// canonicalize(&mut b);
/// assert_eq!(b, vec![0, 1, 0]); // already canonical
/// ```
pub fn canonicalize(assignment: &mut [u8]) {
    if assignment.first() == Some(&1) {
        for v in assignment.iter_mut() {
            *v = 1 - *v;
        }
    }
}

/// Canonicalizes every row and drops duplicates, preserving first-seen
/// order (the paper's "merge the group with the same value").
pub fn canonical_dedup(mut rows: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut row = row;
        canonicalize(&mut row);
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flip_only_when_first_is_one() {
        let mut a = vec![1, 1, 0, 1];
        canonicalize(&mut a);
        assert_eq!(a, vec![0, 0, 1, 0]);
        let mut b = vec![0, 0, 1];
        canonicalize(&mut b);
        assert_eq!(b, vec![0, 0, 1]);
    }

    #[test]
    fn empty_assignment_is_fine() {
        let mut a: Vec<u8> = vec![];
        canonicalize(&mut a);
        assert!(a.is_empty());
    }

    #[test]
    fn dual_rows_merge_to_one() {
        let rows = vec![vec![0, 1, 0], vec![1, 0, 1]]; // duals of each other
        let merged = canonical_dedup(rows);
        assert_eq!(merged, vec![vec![0, 1, 0]]);
    }

    #[test]
    fn distinct_decompositions_survive() {
        let rows = vec![vec![0, 1, 0], vec![0, 0, 1], vec![0, 1, 1]];
        let merged = canonical_dedup(rows);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn order_preserved() {
        let rows = vec![vec![1, 0], vec![0, 0], vec![0, 1]];
        // first row canonicalizes to [0, 1]; third is its duplicate
        let merged = canonical_dedup(rows);
        assert_eq!(merged, vec![vec![0, 1], vec![0, 0]]);
    }

    proptest! {
        #[test]
        fn canonical_is_idempotent(mut row in proptest::collection::vec(0u8..2, 1..12)) {
            canonicalize(&mut row);
            let once = row.clone();
            canonicalize(&mut row);
            prop_assert_eq!(once, row);
        }

        #[test]
        fn canonical_identifies_duals(row in proptest::collection::vec(0u8..2, 1..12)) {
            let mut a = row.clone();
            let mut b: Vec<u8> = row.iter().map(|v| 1 - v).collect();
            canonicalize(&mut a);
            canonicalize(&mut b);
            prop_assert_eq!(a, b);
        }
    }
}
