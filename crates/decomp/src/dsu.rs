//! Disjoint-set union (union-find) with path compression and union by rank,
//! used by Kruskal's MST and connected-component analysis.

/// A disjoint-set forest over `0..n`.
///
/// ```
/// use ldmo_decomp::DisjointSets;
///
/// let mut d = DisjointSets::new(4);
/// d.union(0, 1);
/// assert!(d.connected(0, 1));
/// assert!(!d.connected(0, 2));
/// assert_eq!(d.component_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Groups element indices by representative, in ascending order of the
    /// smallest member.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.component_count(), 5);
        for i in 0..5 {
            assert_eq!(d.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = DisjointSets::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2), "already connected");
        assert_eq!(d.component_count(), 3);
        assert!(d.connected(0, 2));
        assert!(!d.connected(0, 3));
    }

    #[test]
    fn groups_are_sorted_partitions() {
        let mut d = DisjointSets::new(6);
        d.union(4, 1);
        d.union(2, 5);
        let g = d.groups();
        assert_eq!(g, vec![vec![0], vec![1, 4], vec![2, 5], vec![3]]);
    }

    #[test]
    fn empty_sets() {
        let mut d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.component_count(), 0);
        assert!(d.groups().is_empty());
    }

    proptest! {
        #[test]
        fn transitivity(pairs in proptest::collection::vec((0usize..12, 0usize..12), 0..20)) {
            let mut d = DisjointSets::new(12);
            for (a, b) in &pairs {
                d.union(*a, *b);
            }
            // connectivity must be an equivalence relation: check transitivity
            for x in 0..12 {
                for y in 0..12 {
                    for z in 0..12 {
                        if d.connected(x, y) && d.connected(y, z) {
                            prop_assert!(d.connected(x, z));
                        }
                    }
                }
            }
        }

        #[test]
        fn component_count_matches_groups(pairs in proptest::collection::vec((0usize..10, 0usize..10), 0..15)) {
            let mut d = DisjointSets::new(10);
            for (a, b) in &pairs {
                d.union(*a, *b);
            }
            prop_assert_eq!(d.component_count(), d.groups().len());
        }
    }
}
