#![warn(missing_docs)]
//! # ldmo-decomp — layout decomposition candidate generation
//!
//! Implements Section III-A of the paper (Algorithm 1):
//!
//! 1. Classify patterns into `SP` / `VP` / `NP` (done by
//!    [`ldmo_layout::classify`]).
//! 2. Build the weighted conflict graph over `SP` patterns and solve a
//!    minimum spanning tree per connected component ([`mst`]); two-coloring
//!    each MST yields the *relative position relationship*: adjacent MST
//!    vertices go to different masks, and the only remaining freedom per
//!    component is a global flip.
//! 3. Generate *n-wise covering arrays* ([`covering`], our substitute for
//!    Microsoft PICT): a three-wise array over the component-flip factors
//!    plus the `VP` patterns (`Arrs1`), a two-wise array over the `NP`
//!    patterns (`Arrs2`).
//! 4. Resolve the dual-mask symmetry by fixing pattern 0 on mask 0 and merge
//!    duplicate rows ([`canonical`]), then combine
//!    `mergedArrs1 × mergedArrs2` into full mask assignments ([`generate`]).
//!
//! ```
//! use ldmo_layout::cells;
//! use ldmo_decomp::{generate_candidates, DecompConfig};
//!
//! let layout = cells::cell("BUF_X1").expect("known cell");
//! let candidates = generate_candidates(&layout, &DecompConfig::default());
//! assert!(!candidates.is_empty());
//! // every candidate assigns every pattern
//! assert!(candidates.iter().all(|a| a.len() == layout.len()));
//! ```

pub mod canonical;
pub mod covering;
mod dsu;
pub mod generate;
pub mod graph;
pub mod mst;
pub mod oracle;

pub use dsu::DisjointSets;
pub use generate::{generate_candidates, DecompConfig};
pub use graph::{is_dpl_compatible, ConflictGraph, Edge};
pub use mst::{minimum_spanning_forest, two_color_forest, MstForest};
