//! Exhaustive decomposition enumeration — the brute-force oracle.
//!
//! For small layouts (the paper's cells have ≤ 9 patterns) all `2^(n-1)`
//! canonical mask assignments can be enumerated outright. The oracle serves
//! two purposes:
//!
//! - tests verify that Algorithm 1's covering-array candidate set contains
//!   assignments close to the global optimum of a given objective;
//! - ablation benches quantify how much quality the n-wise reduction gives
//!   up relative to exhaustive search (the paper's answer: almost none,
//!   at exponentially lower cost).

use crate::canonical::canonicalize;
use ldmo_layout::{Layout, MaskAssignment};

/// Enumerates every canonical double-patterning assignment of `n` patterns
/// (pattern 0 fixed on mask 0), i.e. `2^(n-1)` rows; a single empty row
/// for `n == 0`.
///
/// # Panics
///
/// Panics if `n > 24` (16M+ assignments is surely a bug upstream).
pub fn enumerate_assignments(n: usize) -> Vec<MaskAssignment> {
    assert!(n <= 24, "exhaustive enumeration beyond 24 patterns");
    if n == 0 {
        return vec![vec![]];
    }
    (0..(1usize << (n - 1)))
        .map(|bits| {
            let mut row = vec![0u8; n];
            for (i, slot) in row.iter_mut().enumerate().skip(1) {
                *slot = ((bits >> (i - 1)) & 1) as u8;
            }
            row
        })
        .collect()
}

/// Finds the assignment minimizing `objective` by exhaustive search.
/// Returns `(assignment, objective value)`.
///
/// # Panics
///
/// Panics if the layout is empty or has more than 24 patterns.
pub fn exhaustive_best<F>(layout: &Layout, mut objective: F) -> (MaskAssignment, f64)
where
    F: FnMut(&Layout, &[u8]) -> f64,
{
    assert!(!layout.is_empty(), "cannot search an empty layout");
    let mut best: Option<(MaskAssignment, f64)> = None;
    for a in enumerate_assignments(layout.len()) {
        let v = objective(layout, &a);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((a, v));
        }
    }
    best.expect("at least one assignment")
}

/// A cheap geometric objective: the sum over same-mask pairs of
/// `max(0, interaction_range - gap)²` — a proxy for optical conflict that
/// needs no simulation. Used by oracle-based tests.
pub fn proximity_conflict_objective(layout: &Layout, assignment: &[u8]) -> f64 {
    let range = 98.0; // the paper's nmax: beyond it, no interaction
    let gaps = layout.gap_matrix();
    let mut total = 0.0;
    for i in 0..layout.len() {
        for j in (i + 1)..layout.len() {
            if assignment[i] == assignment[j] {
                let overlap = (range - gaps[i][j]).max(0.0);
                total += overlap * overlap;
            }
        }
    }
    total
}

/// Verifies that `candidates` contains an assignment whose objective is
/// within `tolerance` (relative) of the exhaustive optimum; returns
/// `(best candidate value, exhaustive optimum)`.
pub fn candidate_set_gap<F>(
    layout: &Layout,
    candidates: &[MaskAssignment],
    mut objective: F,
) -> (f64, f64)
where
    F: FnMut(&Layout, &[u8]) -> f64,
{
    let (_, optimum) = exhaustive_best(layout, &mut objective);
    let best_candidate = candidates
        .iter()
        .map(|c| {
            let mut canonical = c.clone();
            canonicalize(&mut canonical);
            objective(layout, &canonical)
        })
        .fold(f64::INFINITY, f64::min);
    (best_candidate, optimum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_candidates, DecompConfig};
    use ldmo_geom::Rect;
    use ldmo_layout::cells;

    #[test]
    fn enumeration_counts() {
        assert_eq!(enumerate_assignments(0).len(), 1);
        assert_eq!(enumerate_assignments(1), vec![vec![0]]);
        assert_eq!(enumerate_assignments(4).len(), 8);
        // all canonical, all unique
        let rows = enumerate_assignments(5);
        assert!(rows.iter().all(|r| r[0] == 0));
        let set: std::collections::HashSet<_> = rows.iter().cloned().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn exhaustive_finds_the_obvious_split() {
        // two close patterns: the optimum must separate them
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(40, 40, 64), Rect::square(160, 40, 64)],
        );
        let (best, value) = exhaustive_best(&layout, proximity_conflict_objective);
        assert_eq!(best, vec![0, 1]);
        assert_eq!(value, 0.0);
    }

    #[test]
    fn objective_counts_only_same_mask_pairs() {
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(40, 40, 64), Rect::square(160, 40, 64)],
        );
        assert_eq!(proximity_conflict_objective(&layout, &[0, 1]), 0.0);
        assert!(proximity_conflict_objective(&layout, &[0, 0]) > 0.0);
    }

    #[test]
    fn algorithm1_candidates_near_exhaustive_optimum() {
        // the paper's claim behind the n-wise reduction: the covering-array
        // candidate set retains (near-)optimal decompositions at a tiny
        // fraction of the exhaustive count
        for (name, layout) in cells::all_cells() {
            let candidates = generate_candidates(&layout, &DecompConfig::default());
            let (best, optimum) =
                candidate_set_gap(&layout, &candidates, proximity_conflict_objective);
            assert!(
                best <= optimum * 1.3 + 1e-9,
                "{name}: candidate best {best} vs optimum {optimum} \
                 ({} candidates vs {} exhaustive)",
                candidates.len(),
                1usize << (layout.len() - 1)
            );
        }
    }

    #[test]
    #[should_panic(expected = "beyond 24")]
    fn runaway_enumeration_rejected() {
        let _ = enumerate_assignments(25);
    }
}
