//! Minimum spanning forest over the SP conflict graph (paper Fig. 3b) and
//! its two-coloring.
//!
//! Kruskal's algorithm with the [`DisjointSets`] substrate produces one MST
//! per connected component. Because the MST is a tree, it is bipartite: a
//! BFS two-coloring assigns adjacent (= closest, most conflicting) patterns
//! to different masks. The per-component color flip is the only remaining
//! degree of freedom, which is exactly what Algorithm 1 exposes as one
//! n-wise factor per component.

use crate::dsu::DisjointSets;
use crate::graph::{ConflictGraph, Edge};
use std::collections::HashMap;

/// A minimum spanning forest over a conflict graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MstForest {
    /// The vertex set (pattern indices), ascending.
    pub vertices: Vec<usize>,
    /// Chosen tree edges, ascending by weight.
    pub edges: Vec<Edge>,
    /// `component[i]` is the component id (0-based, dense) of
    /// `vertices[i]`. Isolated vertices get their own component.
    pub component: Vec<usize>,
    /// Number of connected components.
    pub component_count: usize,
}

impl MstForest {
    /// Total weight of the forest.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Vertices of each component, grouped and ascending.
    pub fn component_members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.component_count];
        for (i, &v) in self.vertices.iter().enumerate() {
            groups[self.component[i]].push(v);
        }
        groups
    }
}

/// Runs Kruskal's algorithm on `graph`, returning the spanning forest.
pub fn minimum_spanning_forest(graph: &ConflictGraph) -> MstForest {
    let n = graph.vertices.len();
    // map pattern index -> dense local index
    let local: HashMap<usize, usize> = graph
        .vertices
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let mut edges = graph.edges.clone();
    edges.sort_by(|a, b| a.weight.total_cmp(&b.weight));
    let mut dsu = DisjointSets::new(n);
    let mut chosen = Vec::new();
    for e in edges {
        let (la, lb) = (local[&e.a], local[&e.b]);
        if dsu.union(la, lb) {
            chosen.push(e);
        }
    }
    // dense component ids in order of first appearance
    let mut component = vec![0usize; n];
    let mut ids: HashMap<usize, usize> = HashMap::new();
    for (i, comp) in component.iter_mut().enumerate() {
        let root = dsu.find(i);
        let next = ids.len();
        *comp = *ids.entry(root).or_insert(next);
    }
    MstForest {
        vertices: graph.vertices.clone(),
        edges: chosen,
        component,
        component_count: ids.len(),
    }
}

/// Two-colors each tree of the forest by BFS: adjacent MST vertices receive
/// different colors. Returns `(colors, component)` maps keyed by pattern
/// index: `colors[&p]` is 0/1 with the smallest pattern of each component
/// fixed at color 0, `component[&p]` is the component id.
pub fn two_color_forest(forest: &MstForest) -> (HashMap<usize, u8>, HashMap<usize, usize>) {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for e in &forest.edges {
        adj.entry(e.a).or_default().push(e.b);
        adj.entry(e.b).or_default().push(e.a);
    }
    let mut colors: HashMap<usize, u8> = HashMap::new();
    let mut component: HashMap<usize, usize> = HashMap::new();
    for (cid, members) in forest.component_members().into_iter().enumerate() {
        // members are ascending: root the BFS at the smallest pattern
        let Some(&root) = members.first() else {
            continue;
        };
        let mut queue = std::collections::VecDeque::new();
        colors.insert(root, 0);
        component.insert(root, cid);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let cu = colors[&u];
            for &v in adj.get(&u).into_iter().flatten() {
                if let std::collections::hash_map::Entry::Vacant(e) = colors.entry(v) {
                    e.insert(1 - cu);
                    component.insert(v, cid);
                    queue.push_back(v);
                }
            }
        }
        // isolated members unreachable by edges (shouldn't happen inside a
        // component, but keep the maps total)
        for &m in &members {
            colors.entry(m).or_insert(0);
            component.entry(m).or_insert(cid);
        }
    }
    (colors, component)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;
    use ldmo_layout::Layout;

    fn layout(corners: &[(i32, i32)]) -> Layout {
        Layout::new(
            Rect::new(0, 0, 1200, 1200),
            corners
                .iter()
                .map(|&(x, y)| Rect::square(x, y, 64))
                .collect(),
        )
    }

    #[test]
    fn chain_mst_picks_n_minus_1_edges() {
        // three contacts in a row, gaps 66 and 70: MST has both edges
        let l = layout(&[(0, 0), (130, 0), (264, 0)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2], 80.0);
        let f = minimum_spanning_forest(&g);
        assert_eq!(f.edges.len(), 2);
        assert_eq!(f.component_count, 1);
        assert!((f.total_weight() - (66.0 + 70.0)).abs() < 1e-9);
    }

    #[test]
    fn triangle_drops_heaviest_edge() {
        // L-shaped triple where all three pairwise gaps are ≤ 95:
        // MST keeps the two lightest edges (64 and 66), drops the 91.9
        let l = layout(&[(0, 0), (128, 0), (0, 130)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2], 95.0);
        assert_eq!(g.edge_count(), 3);
        let f = minimum_spanning_forest(&g);
        assert_eq!(f.edges.len(), 2);
        let max_w = f.edges.iter().map(|e| e.weight).fold(0.0, f64::max);
        let dropped: Vec<&Edge> = g
            .edges
            .iter()
            .filter(|e| !f.edges.iter().any(|fe| fe.a == e.a && fe.b == e.b))
            .collect();
        assert_eq!(dropped.len(), 1);
        assert!(dropped[0].weight >= max_w);
    }

    #[test]
    fn fig3_two_components_solved_independently() {
        let l = layout(&[(0, 0), (130, 0), (700, 700), (830, 700), (960, 700)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2, 3, 4], 80.0);
        let f = minimum_spanning_forest(&g);
        assert_eq!(f.component_count, 2);
        assert_eq!(f.edges.len(), 3); // 1 + 2
        let members = f.component_members();
        assert_eq!(members[0], vec![0, 1]);
        assert_eq!(members[1], vec![2, 3, 4]);
    }

    #[test]
    fn two_coloring_separates_mst_neighbours() {
        let l = layout(&[(0, 0), (130, 0), (264, 0)]);
        let g = ConflictGraph::build(&l, &[0, 1, 2], 80.0);
        let f = minimum_spanning_forest(&g);
        let (colors, component) = two_color_forest(&f);
        for e in &f.edges {
            assert_ne!(colors[&e.a], colors[&e.b], "edge {e:?} monochromatic");
        }
        assert_eq!(colors[&0], 0, "smallest pattern anchored to color 0");
        assert!(component.values().all(|&c| c == 0));
    }

    #[test]
    fn isolated_vertices_form_own_components() {
        let l = layout(&[(0, 0), (500, 500)]);
        let g = ConflictGraph::build(&l, &[0, 1], 80.0);
        let f = minimum_spanning_forest(&g);
        assert_eq!(f.component_count, 2);
        let (colors, component) = two_color_forest(&f);
        assert_eq!(colors[&0], 0);
        assert_eq!(colors[&1], 0);
        assert_ne!(component[&0], component[&1]);
    }

    #[test]
    fn empty_graph() {
        let g = ConflictGraph::default();
        let f = minimum_spanning_forest(&g);
        assert_eq!(f.component_count, 0);
        let (colors, component) = two_color_forest(&f);
        assert!(colors.is_empty() && component.is_empty());
    }
}
