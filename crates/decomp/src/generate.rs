//! Algorithm 1: decomposition candidate generation.
//!
//! Glues the classification, MST and covering-array machinery together:
//!
//! ```text
//! SP, VP, NP    <- PatternClassify(L)
//! V             <- SolveMST(SP)            (one flip factor per component)
//! Arrs1         <- 3-wise(components ∪ VP)
//! Arrs2         <- 2-wise(NP)
//! candidates    <- canonical_dedup(Arrs1 × Arrs2)
//! ```
//!
//! Each candidate is a full [`MaskAssignment`] over the layout's patterns:
//! SP patterns take their MST two-coloring XOR the component flip bit, VP
//! patterns take their dedicated factor bit, NP patterns theirs.

use crate::canonical::canonical_dedup;
use crate::covering::covering_array;
use crate::graph::ConflictGraph;
use crate::mst::{minimum_spanning_forest, two_color_forest};
use ldmo_layout::classify::{pattern_sets, ClassifyConfig};
use ldmo_layout::{Layout, MaskAssignment};

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompConfig {
    /// Eq. 6 thresholds (`nmin`, `nmax`).
    pub classify: ClassifyConfig,
    /// Covering strength for the component-flip + VP array (paper: 3).
    pub strength_primary: usize,
    /// Covering strength for the NP array (paper: 2).
    pub strength_secondary: usize,
    /// Upper bound on emitted candidates (the Arrs1 × Arrs2 product is
    /// truncated beyond this; 0 means unlimited).
    pub max_candidates: usize,
}

impl Default for DecompConfig {
    fn default() -> Self {
        DecompConfig {
            classify: ClassifyConfig::default(),
            strength_primary: 3,
            strength_secondary: 2,
            max_candidates: 64,
        }
    }
}

/// Generates decomposition candidates for `layout` per Algorithm 1.
///
/// Candidates are canonical (pattern 0 on mask 0), deduplicated, and in a
/// deterministic order. Layouts with no patterns yield a single empty
/// assignment.
///
/// ```
/// use ldmo_geom::Rect;
/// use ldmo_layout::Layout;
/// use ldmo_decomp::{generate_candidates, DecompConfig};
///
/// // two SP contacts: the MST forces them apart, so exactly one
/// // decomposition exists after canonicalization
/// let layout = Layout::new(
///     Rect::new(0, 0, 448, 448),
///     vec![Rect::square(60, 60, 64), Rect::square(190, 60, 64)],
/// );
/// let cands = generate_candidates(&layout, &DecompConfig::default());
/// assert_eq!(cands, vec![vec![0, 1]]);
/// ```
pub fn generate_candidates(layout: &Layout, cfg: &DecompConfig) -> Vec<MaskAssignment> {
    let sets = pattern_sets(layout, &cfg.classify);
    let graph = ConflictGraph::build(layout, &sets.sp, cfg.classify.nmin);
    let forest = minimum_spanning_forest(&graph);
    let (colors, component) = two_color_forest(&forest);

    // Arrs1 factors: one flip per SP component, then one per VP pattern
    let k1 = forest.component_count + sets.vp.len();
    let arrs1 = covering_array(k1, cfg.strength_primary);
    // Arrs2 factors: one per NP pattern
    let arrs2 = covering_array(sets.np.len(), cfg.strength_secondary);

    let n = layout.len();
    let mut rows: Vec<MaskAssignment> = Vec::with_capacity(arrs1.len() * arrs2.len());
    'outer: for r1 in &arrs1 {
        for r2 in &arrs2 {
            let mut assignment = vec![0u8; n];
            for &p in &sets.sp {
                let flip = r1[component[&p]];
                assignment[p] = colors[&p] ^ flip;
            }
            for (i, &p) in sets.vp.iter().enumerate() {
                assignment[p] = r1[forest.component_count + i];
            }
            for (j, &p) in sets.np.iter().enumerate() {
                assignment[p] = r2[j];
            }
            rows.push(assignment);
            if cfg.max_candidates > 0 && rows.len() >= cfg.max_candidates * 4 {
                // dedup will shrink this; keep a generous margin before
                // truncating the raw product
                break 'outer;
            }
        }
    }
    let mut out = canonical_dedup(rows);
    if cfg.max_candidates > 0 && out.len() > cfg.max_candidates {
        out.truncate(cfg.max_candidates);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;
    use ldmo_layout::cells;

    fn layout(corners: &[(i32, i32)]) -> Layout {
        Layout::new(
            Rect::new(0, 0, 1000, 1000),
            corners
                .iter()
                .map(|&(x, y)| Rect::square(x, y, 64))
                .collect(),
        )
    }

    /// Counts same-mask pattern pairs with gap ≤ nmin. Odd cycles in the
    /// conflict graph make zero conflicts impossible for some layouts; the
    /// MST guarantees only that *tree* edges are separated (the paper's flow
    /// catches the rest via print-violation checks).
    fn sp_conflicts(layout: &Layout, assignment: &[u8], nmin: f64) -> usize {
        let gaps = layout.gap_matrix();
        let mut conflicts = 0;
        for i in 0..layout.len() {
            for j in (i + 1)..layout.len() {
                if gaps[i][j] <= nmin && assignment[i] == assignment[j] {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    #[test]
    fn empty_layout_single_empty_candidate() {
        let l = Layout::new(Rect::new(0, 0, 100, 100), vec![]);
        let cands = generate_candidates(&l, &DecompConfig::default());
        assert_eq!(cands, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn all_candidates_canonical_and_unique() {
        let l = cells::cell("NAND3_X2").expect("known cell");
        let cands = generate_candidates(&l, &DecompConfig::default());
        assert!(!cands.is_empty());
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            assert_eq!(c.len(), l.len());
            assert_eq!(c[0], 0, "canonical candidates fix pattern 0 on mask 0");
            assert!(seen.insert(c.clone()), "duplicate candidate {c:?}");
        }
    }

    #[test]
    fn mst_neighbours_always_split() {
        // every candidate must separate patterns joined by an MST edge —
        // that is the whole point of the MST structure
        let l = cells::cell("DFF_X1").expect("known cell");
        let cfg = DecompConfig::default();
        let sets = pattern_sets(&l, &cfg.classify);
        let graph = ConflictGraph::build(&l, &sets.sp, cfg.classify.nmin);
        let forest = minimum_spanning_forest(&graph);
        for cand in generate_candidates(&l, &cfg) {
            for e in &forest.edges {
                assert_ne!(
                    cand[e.a], cand[e.b],
                    "MST edge {}-{} not separated in {cand:?}",
                    e.a, e.b
                );
            }
        }
    }

    #[test]
    fn chain_of_three_sp_has_unique_coloring() {
        // A-B-C chain with both gaps ≤ nmin: MST = both edges, so the
        // alternating coloring is forced; only one candidate results
        let l = layout(&[(0, 0), (130, 0), (260, 0)]);
        let cands = generate_candidates(&l, &DecompConfig::default());
        assert_eq!(cands, vec![vec![0, 1, 0]]);
    }

    #[test]
    fn vp_patterns_take_both_masks_across_candidates() {
        // one SP pair plus one VP pattern: candidates must explore the VP
        // pattern on both masks
        let l = layout(&[(0, 0), (130, 0), (0, 150)]);
        let cands = generate_candidates(&l, &DecompConfig::default());
        let vp_values: std::collections::HashSet<u8> = cands.iter().map(|c| c[2]).collect();
        assert_eq!(
            vp_values.len(),
            2,
            "VP pattern stuck on one mask: {cands:?}"
        );
    }

    #[test]
    fn np_patterns_take_both_masks_across_candidates() {
        let l = layout(&[(0, 0), (130, 0), (600, 600)]);
        let cands = generate_candidates(&l, &DecompConfig::default());
        let np_values: std::collections::HashSet<u8> = cands.iter().map(|c| c[2]).collect();
        assert_eq!(np_values.len(), 2);
    }

    #[test]
    fn candidates_respect_max_bound() {
        let cfg = DecompConfig {
            max_candidates: 4,
            ..DecompConfig::default()
        };
        let l = cells::cell("AOI211_X1").expect("known cell");
        let cands = generate_candidates(&l, &cfg);
        assert!(cands.len() <= 4);
        assert!(!cands.is_empty());
    }

    #[test]
    fn all_cell_templates_generate_valid_candidates() {
        let cfg = DecompConfig::default();
        for (name, l) in cells::all_cells() {
            let cands = generate_candidates(&l, &cfg);
            assert!(!cands.is_empty(), "{name} produced no candidates");
            // compute the unavoidable conflict floor: non-bipartite conflict
            // graphs force at least (edges - tree edges adjusted) conflicts;
            // the MST guarantees tree edges are clean, so any candidate's
            // conflicts are at most (total conflict edges - tree edges)
            let sets = pattern_sets(&l, &cfg.classify);
            let graph = ConflictGraph::build(&l, &sets.sp, cfg.classify.nmin);
            let forest = minimum_spanning_forest(&graph);
            let slack = graph.edge_count() - forest.edges.len();
            let best = cands
                .iter()
                .map(|c| sp_conflicts(&l, c, cfg.classify.nmin))
                .min()
                .expect("non-empty");
            assert!(
                best <= slack,
                "{name}: best candidate has {best} conflicts, slack is {slack}"
            );
        }
    }
}
