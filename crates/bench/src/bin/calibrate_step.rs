//! Probe: step size vs residual EPE at the 29-iteration budget for good
//! and bad decompositions.
use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_geom::Rect;
use ldmo_ilt::{optimize, IltConfig};
use ldmo_layout::{cells, Layout};

fn quad(gap: i32) -> Layout {
    let p = 64 + gap;
    Layout::new(
        Rect::new(0, 0, 448, 448),
        vec![
            Rect::square(120, 120, 64),
            Rect::square(120 + p, 120, 64),
            Rect::square(120, 120 + p, 64),
            Rect::square(120 + p, 120 + p, 64),
        ],
    )
}

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let args: Vec<String> = std::env::args().collect();
    let sigma: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40.0);
    let ring: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let mrc: i32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(28);
    let mut cfg = IltConfig::default();
    cfg.litho.sigma_primary = sigma;
    cfg.litho.ring_sigma = sigma * 2.0;
    cfg.litho.sigma_secondary = sigma * 1.875;
    cfg.litho.ring_amplitude = ring;
    cfg.mrc_expand_nm = mrc;
    eprintln!("sigma={sigma} ring={ring} mrc={mrc}");
    let mut report = BenchReport::new("calibrate_step");
    let iso = Layout::new(Rect::new(0, 0, 448, 448), vec![Rect::square(192, 192, 64)]);
    let t0 = std::time::Instant::now();
    let iso_epe = optimize(&iso, &[0], &cfg).epe_violations();
    report
        .push_value("isolated/optimize", "s", t0.elapsed().as_secs_f64())
        .meta
        .push(("epe".into(), iso_epe as f64));
    eprintln!("  isolated: epe={iso_epe}");
    for g in [64, 84, 92, 104, 120] {
        let l = quad(g);
        let good = optimize(&l, &[0, 1, 1, 0], &cfg);
        let bad = optimize(&l, &[0, 0, 1, 1], &cfg); // rows same-mask (vertical pairs split)
        let worst = optimize(&l, &[0, 0, 0, 0], &cfg);
        eprintln!(
            "  quad g={g}: checker={} rows={} all0={}",
            good.epe_violations(),
            bad.epe_violations(),
            worst.epe_violations()
        );
        report.push_value(
            format!("quad_g{g}/checker"),
            "count",
            good.epe_violations() as f64,
        );
    }
    // 2x3 grid: SP rows at 66, rows stacked at VP distance 86.
    // aligned = vertical same-mask pairs at 86; anti = diagonal 108
    for vgap in [84, 92] {
        let hp = 64 + 66;
        let vp = 64 + vgap;
        let mut pats = Vec::new();
        for r in 0..2 {
            for c in 0..3 {
                pats.push(Rect::square(40 + c * hp, 80 + r * vp, 64));
            }
        }
        let l = Layout::new(Rect::new(0, 0, 448, 448), pats);
        let aligned = optimize(&l, &[0, 1, 0, 0, 1, 0], &cfg);
        let anti = optimize(&l, &[0, 1, 0, 1, 0, 1], &cfg);
        eprintln!(
            "  grid2x3 vg={vgap}: aligned={} anti={}",
            aligned.epe_violations(),
            anti.epe_violations()
        );
    }
    // 3x3 grid at VP pitch: all-same vs checker
    for g in [84, 92] {
        let p = 64 + g;
        let mut pats = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                pats.push(Rect::square(30 + c * p, 30 + r * p, 64));
            }
        }
        let l = Layout::new(Rect::new(0, 0, 448, 448), pats);
        let same = optimize(&l, &[0u8; 9], &cfg);
        let checker: Vec<u8> = (0..9).map(|i| ((i / 3 + i % 3) % 2) as u8).collect();
        let chk = optimize(&l, &checker, &cfg);
        eprintln!(
            "  grid3x3 g={g}: all_same={} checker={}",
            same.epe_violations(),
            chk.epe_violations()
        );
    }

    // cells: spread of candidate outcomes
    for name in ["AOI211_X1", "NAND2_X1", "OAI21_X1"] {
        let l = cells::cell(name).unwrap();
        let cands = generate_candidates(&l, &DecompConfig::default());
        let epes: Vec<usize> = cands
            .iter()
            .map(|c| optimize(&l, c, &cfg).epe_violations())
            .collect();
        eprintln!("  {name}: candidate EPEs {epes:?}");
    }
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
