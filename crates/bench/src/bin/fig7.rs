//! Reproduces **Fig. 7**: qualitative comparison with ICCAD'17 [10] on
//! `AOI211_X1`, `NAND3_X2` and `BUF_X1`. The paper's claim: "in all three
//! cases our proposed framework can effectively remove EPE".
//!
//! Writes the printed images as PGM files under `bench_out/` and prints the
//! per-cell EPE counts.
//!
//! ```sh
//! cargo run --release -p ldmo-bench --bin fig7
//! ```

use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_bench::{fast_mode, trained_predictor};
use ldmo_core::baselines::{two_stage_bfs, two_stage_suald, unified_flow, UnifiedConfig};
use ldmo_core::dataset::SamplerKind;
use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo_ilt::IltConfig;
use ldmo_layout::cells;

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let mut ilt = IltConfig::default();
    if fast_mode() {
        ilt.max_iterations = 8;
    }
    let out_dir = std::path::Path::new("bench_out");
    let _ = std::fs::create_dir_all(out_dir);

    let predictor = trained_predictor(&SamplerKind::Engineered, "engineered");
    let mut ours = LdmoFlow::new(
        FlowConfig {
            ilt: ilt.clone(),
            ..FlowConfig::default()
        },
        SelectionStrategy::Cnn(Box::new(predictor)),
    );
    let unified_cfg = UnifiedConfig {
        ilt,
        ..UnifiedConfig::default()
    };

    println!("FIG 7 — qualitative comparison on the paper's three cells");
    println!(
        "{:>12} | {:>9} | {:>9} | {:>13} | {:>10}",
        "cell", "[16]+[6]", "[17]+[6]", "ICCAD'17 [10]", "Ours EPE#"
    );
    let mut report = BenchReport::new("fig7");
    for name in ["AOI211_X1", "NAND3_X2", "BUF_X1"] {
        let layout = cells::cell(name).expect("known cell");
        eprintln!("[fig7] {name} …");
        let suald = two_stage_suald(&layout, &unified_cfg.ilt);
        let bfs = two_stage_bfs(&layout, &unified_cfg.ilt);
        let unified = unified_flow(&layout, &unified_cfg);
        let our = ours.run(&layout);
        let row = report.push_value(
            format!("{name}/ours"),
            "s",
            our.timing.total().as_secs_f64(),
        );
        row.meta
            .push(("epe".into(), our.outcome.epe_violations() as f64));
        let row = report.push_value(
            format!("{name}/unified"),
            "s",
            unified.total_time().as_secs_f64(),
        );
        row.meta
            .push(("epe".into(), unified.outcome.epe_violations() as f64));
        println!(
            "{:>12} | {:>9} | {:>9} | {:>13} | {:>10}",
            name,
            suald.outcome.epe_violations(),
            bfs.outcome.epe_violations(),
            unified.outcome.epe_violations(),
            our.outcome.epe_violations()
        );
        for (tag, printed) in [
            ("iccad17", &unified.outcome.printed),
            ("ours", &our.outcome.printed),
        ] {
            let path = out_dir.join(format!("fig7_{name}_{tag}.pgm"));
            if let Err(e) = std::fs::write(&path, printed.to_pgm()) {
                eprintln!("[fig7] could not write {}: {e}", path.display());
            }
        }
        // also dump the target for visual reference
        let target = layout.rasterize_target(2.0);
        let _ = std::fs::write(
            out_dir.join(format!("fig7_{name}_target.pgm")),
            target.to_pgm(),
        );
    }
    eprintln!("\nprinted-image PGMs written to bench_out/");
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
