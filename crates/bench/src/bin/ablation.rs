//! Ablation studies of the design choices called out in DESIGN.md §4:
//!
//! 1. selection strategy: trained CNN vs litho proxy vs random vs first;
//! 2. covering strength of candidate generation: 3-wise vs 2-wise;
//! 3. violation-triggered reselection: on vs off.
//!
//! ```sh
//! cargo run --release -p ldmo-bench --bin ablation
//! ```

use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_bench::{eval_suite, fast_mode, trained_predictor};
use ldmo_core::dataset::SamplerKind;
use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo_decomp::DecompConfig;
use ldmo_ilt::IltConfig;
use ldmo_layout::{cells, Layout};
use std::time::Duration;

fn base_flow_cfg() -> FlowConfig {
    let mut ilt = IltConfig::default();
    if fast_mode() {
        ilt.max_iterations = 8;
    }
    FlowConfig {
        ilt,
        ..FlowConfig::default()
    }
}

/// The discriminating suite: cells with spread candidate quality plus the
/// held-out generated layouts (same as fig8).
fn suite() -> Vec<(String, Layout)> {
    let mut s: Vec<(String, Layout)> = ["AOI211_X1", "NAND2_X1", "NAND3_X2", "OAI21_X1"]
        .iter()
        .map(|&n| (n.to_owned(), cells::cell(n).expect("known cell")))
        .collect();
    s.extend(eval_suite());
    s
}

fn run_suite(flow: &mut LdmoFlow, suite: &[(String, ldmo_layout::Layout)]) -> (usize, Duration) {
    let mut epe = 0usize;
    let mut time = Duration::ZERO;
    for (_, layout) in suite {
        let r = flow.run(layout);
        epe += r.outcome.epe_violations();
        time += r.timing.total();
    }
    (epe, time)
}

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let suite = suite();
    let mut report = BenchReport::new("ablation");
    println!("ABLATIONS over {} evaluation layouts\n", suite.len());

    // 1. selection strategy, first-choice protocol: the selector's pick
    // directly determines the outcome (reselection would mask differences)
    println!("1) selection strategy (single attempt: selection quality only)");
    println!("{:>14} | {:>6} | {:>8}", "strategy", "EPE#", "Time(s)");
    let strategies: Vec<(&str, SelectionStrategy)> = vec![
        (
            "CNN (ours)",
            SelectionStrategy::Cnn(Box::new(trained_predictor(
                &SamplerKind::Engineered,
                "engineered",
            ))),
        ),
        ("litho proxy", SelectionStrategy::LithoProxy),
        ("first", SelectionStrategy::First),
    ];
    for (name, strategy) in strategies {
        eprintln!("[ablation] strategy {name} …");
        let mut cfg = base_flow_cfg();
        cfg.max_attempts = 1;
        let mut flow = LdmoFlow::new(cfg, strategy);
        let (epe, time) = run_suite(&mut flow, &suite);
        println!("{name:>14} | {epe:>6} | {:>8.1}", time.as_secs_f64());
        let id = format!(
            "strategy/{}",
            name.split_whitespace()
                .next()
                .unwrap_or(name)
                .to_lowercase()
        );
        report
            .push_value(id, "s", time.as_secs_f64())
            .meta
            .push(("epe".into(), epe as f64));
    }
    // random selection is high-variance: average over several seeds
    {
        let seeds = [1u64, 2, 3, 4, 5];
        let mut total_epe = 0usize;
        let mut total_time = Duration::ZERO;
        for &seed in &seeds {
            eprintln!("[ablation] strategy random (seed {seed}) …");
            let mut cfg = base_flow_cfg();
            cfg.max_attempts = 1;
            let mut flow = LdmoFlow::new(cfg, SelectionStrategy::Random { seed });
            let (epe, time) = run_suite(&mut flow, &suite);
            total_epe += epe;
            total_time += time;
        }
        println!(
            "{:>14} | {:>6.1} | {:>8.1}   (mean of {} seeds)",
            "random",
            total_epe as f64 / seeds.len() as f64,
            total_time.as_secs_f64() / seeds.len() as f64,
            seeds.len()
        );
        report
            .push_value(
                "strategy/random",
                "s",
                total_time.as_secs_f64() / seeds.len() as f64,
            )
            .meta
            .push(("epe".into(), total_epe as f64 / seeds.len() as f64));
    }

    // 2. covering strength for candidate generation
    println!("\n2) candidate covering strength (litho-proxy selector)");
    println!("{:>14} | {:>6} | {:>10}", "strength", "EPE#", "candidates");
    for strength in [2usize, 3] {
        eprintln!("[ablation] strength {strength} …");
        let mut cfg = base_flow_cfg();
        cfg.decomp = DecompConfig {
            strength_primary: strength,
            ..DecompConfig::default()
        };
        let mut flow = LdmoFlow::new(cfg, SelectionStrategy::LithoProxy);
        let mut epe = 0usize;
        let mut cands = 0usize;
        for (_, layout) in &suite {
            let r = flow.run(layout);
            epe += r.outcome.epe_violations();
            cands += r.candidates;
        }
        println!("{strength:>13}-wise | {epe:>6} | {cands:>10}");
        let row = report.push_value(format!("covering/{strength}-wise"), "count", epe as f64);
        row.meta.push(("candidates".into(), cands as f64));
    }

    // 3. violation-triggered reselection on/off
    println!("\n3) violation-triggered reselection (random selector, worst case)");
    println!("{:>14} | {:>6}", "reselection", "EPE#");
    for (label, attempts) in [("on (4 tries)", 4usize), ("off (1 try)", 1)] {
        eprintln!("[ablation] reselection {label} …");
        let mut cfg = base_flow_cfg();
        cfg.max_attempts = attempts;
        let mut flow = LdmoFlow::new(cfg, SelectionStrategy::Random { seed: 5 });
        let (epe, _) = run_suite(&mut flow, &suite);
        println!("{label:>14} | {epe:>6}");
        report.push_value(
            format!("reselection/attempts_{attempts}"),
            "count",
            epe as f64,
        );
    }
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
