//! Reproduces **Table I**: EPE violations and runtime of four flows on the
//! 13 testcases.
//!
//! Columns, matching the paper:
//! - `[16]+[6]`  — SUALD-style decomposition + independent ILT
//! - `[17]+[6]`  — BFS-coloring decomposition + independent ILT
//! - `[10]`      — ICCAD'17 unified framework with greedy pruning
//! - `Ours`      — the CNN-driven LDMO flow
//!
//! ```sh
//! cargo run --release -p ldmo-bench --bin table1          # full run
//! LDMO_FAST=1 cargo run --release -p ldmo-bench --bin table1   # smoke run
//! ```
//!
//! Pass `--trace-out trace.jsonl` (or set `LDMO_TRACE=1`) to capture an
//! `ldmo-obs` trace of every flow stage and ILT iteration.

use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_bench::{fast_mode, testcases, trained_predictor};
use ldmo_core::baselines::{two_stage_bfs, two_stage_suald, unified_flow, UnifiedConfig};
use ldmo_core::dataset::SamplerKind;
use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo_ilt::IltConfig;
use std::time::Duration;

struct Row {
    name: String,
    epe: [usize; 4],
    time: [Duration; 4],
}

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let fast = fast_mode();
    let mut ilt = IltConfig::default();
    if fast {
        ilt.max_iterations = 8;
    }

    let predictor = trained_predictor(&SamplerKind::Engineered, "engineered");
    let mut ours = LdmoFlow::new(
        FlowConfig {
            ilt: ilt.clone(),
            ..FlowConfig::default()
        },
        SelectionStrategy::Cnn(Box::new(predictor)),
    );
    let unified_cfg = UnifiedConfig {
        ilt: ilt.clone(),
        ..UnifiedConfig::default()
    };

    let mut rows = Vec::new();
    for (name, layout) in testcases() {
        eprintln!("[table1] {name} …");
        let suald = two_stage_suald(&layout, &ilt);
        let bfs = two_stage_bfs(&layout, &ilt);
        let unified = unified_flow(&layout, &unified_cfg);
        let our = ours.run(&layout);
        rows.push(Row {
            name,
            epe: [
                suald.outcome.epe_violations(),
                bfs.outcome.epe_violations(),
                unified.outcome.epe_violations(),
                our.outcome.epe_violations(),
            ],
            time: [
                suald.total_time(),
                bfs.total_time(),
                unified.total_time(),
                our.timing.total(),
            ],
        });
    }

    println!("\nTABLE I — Comparison with previous frameworks");
    println!(
        "{:>10} | {:>5} {:>8} | {:>5} {:>8} | {:>5} {:>8} | {:>5} {:>8}",
        "ID", "EPE#", "Time(s)", "EPE#", "Time(s)", "EPE#", "Time(s)", "EPE#", "Time(s)"
    );
    println!(
        "{:>10} | {:^14} | {:^14} | {:^14} | {:^14}",
        "", "[16]+[6]", "[17]+[6]", "[10]", "Ours"
    );
    let mut epe_sum = [0usize; 4];
    let mut time_sum = [Duration::ZERO; 4];
    for row in &rows {
        println!(
            "{:>10} | {:>5} {:>8.1} | {:>5} {:>8.1} | {:>5} {:>8.1} | {:>5} {:>8.1}",
            row.name,
            row.epe[0],
            row.time[0].as_secs_f64(),
            row.epe[1],
            row.time[1].as_secs_f64(),
            row.epe[2],
            row.time[2].as_secs_f64(),
            row.epe[3],
            row.time[3].as_secs_f64(),
        );
        for i in 0..4 {
            epe_sum[i] += row.epe[i];
            time_sum[i] += row.time[i];
        }
    }
    let n = rows.len() as f64;
    let avg_epe: Vec<f64> = epe_sum.iter().map(|&e| e as f64 / n).collect();
    let avg_time: Vec<f64> = time_sum.iter().map(|t| t.as_secs_f64() / n).collect();
    println!(
        "{:>10} | {:>5.2} {:>8.2} | {:>5.2} {:>8.2} | {:>5.2} {:>8.2} | {:>5.2} {:>8.2}",
        "Ave.",
        avg_epe[0],
        avg_time[0],
        avg_epe[1],
        avg_time[1],
        avg_epe[2],
        avg_time[2],
        avg_epe[3],
        avg_time[3],
    );
    let ratio = |v: f64, ours: f64| if ours > 0.0 { v / ours } else { f64::INFINITY };
    println!(
        "{:>10} | {:>5.2} {:>8.2} | {:>5.2} {:>8.2} | {:>5.2} {:>8.2} | {:>5.2} {:>8.2}",
        "Ratio",
        ratio(avg_epe[0], avg_epe[3]),
        ratio(avg_time[0], avg_time[3]),
        ratio(avg_epe[1], avg_epe[3]),
        ratio(avg_time[1], avg_time[3]),
        ratio(avg_epe[2], avg_epe[3]),
        ratio(avg_time[2], avg_time[3]),
        1.0,
        1.0,
    );
    let mut report = BenchReport::new("table1");
    for row in &rows {
        for (i, flow) in ["suald", "bfs", "unified", "ours"].iter().enumerate() {
            let r = report.push_value(
                format!("{}/{flow}", row.name),
                "s",
                row.time[i].as_secs_f64(),
            );
            r.meta.push(("epe".into(), row.epe[i] as f64));
        }
    }
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
