//! Reproduces **Fig. 1(c)**: the runtime breakdown of the unified ICCAD'17
//! flow into decomposition selection (DS) and mask optimization (MO).
//!
//! The paper reports DS 59.1% vs MO 40.9% — selection by simulation costs
//! more than the optimization itself, which motivates the CNN predictor.
//!
//! ```sh
//! cargo run --release -p ldmo-bench --bin fig1c
//! ```

use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_bench::{fast_mode, testcases};
use ldmo_core::baselines::{unified_flow, UnifiedConfig};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_ilt::IltConfig;
use std::time::Duration;

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let mut ilt = IltConfig::default();
    if fast_mode() {
        ilt.max_iterations = 8;
    }
    let cfg = UnifiedConfig {
        ilt,
        ..UnifiedConfig::default()
    };
    let mut all = (Duration::ZERO, Duration::ZERO);
    let mut multi = (Duration::ZERO, Duration::ZERO);
    for (name, layout) in testcases() {
        eprintln!("[fig1c] {name} …");
        let candidates = generate_candidates(&layout, &DecompConfig::default()).len();
        let result = unified_flow(&layout, &cfg);
        all.0 += result.decomposition_selection;
        all.1 += result.mask_optimization;
        if candidates >= 4 {
            multi.0 += result.decomposition_selection;
            multi.1 += result.mask_optimization;
        }
    }
    println!("\nFIG 1(c) — runtime breakdown of the unified flow [10]");
    for (label, (ds, mo)) in [
        ("all 13 testcases", all),
        ("testcases with ≥4 candidates (the paper's regime)", multi),
    ] {
        let total = (ds + mo).as_secs_f64().max(1e-9);
        println!("\n{label}:");
        println!(
            "  DS (decomposition selection): {:>7.1}s  ({:.1}%)",
            ds.as_secs_f64(),
            100.0 * ds.as_secs_f64() / total
        );
        println!(
            "  MO (mask optimization):       {:>7.1}s  ({:.1}%)",
            mo.as_secs_f64(),
            100.0 * mo.as_secs_f64() / total
        );
    }
    println!("\n(paper: DS 59.1%, MO 40.9% — measured on layouts with many candidates)");
    let mut report = BenchReport::new("fig1c");
    for (label, (ds, mo)) in [("all", all), ("multi_candidate", multi)] {
        report.push_value(format!("{label}/ds"), "s", ds.as_secs_f64());
        report.push_value(format!("{label}/mo"), "s", mo.as_secs_f64());
    }
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
