//! Reproduces **Fig. 8**: the sampling-strategy ablation.
//!
//! Two predictors are trained under identical budgets — one with the
//! paper's engineered sampling (SIFT + k-medoids layouts, MST + 3-wise
//! decompositions), one with uniform random sampling — and the CNN-driven
//! flow is evaluated with each on a held-out suite. The paper reports the
//! random-sampling network roughly doubling the EPE count at comparable
//! runtime.
//!
//! ```sh
//! cargo run --release -p ldmo-bench --bin fig8
//! ```

use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_bench::{eval_suite, fast_mode, trained_predictor};
use ldmo_core::dataset::SamplerKind;
use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo_ilt::IltConfig;
use ldmo_layout::{cells, Layout};
use std::time::Duration;

fn suite() -> Vec<(String, Layout)> {
    // cells whose candidate sets have a real quality spread, plus the
    // held-out generated layouts
    let mut s: Vec<(String, Layout)> = ["AOI211_X1", "NAND2_X1", "NAND3_X2", "OAI21_X1"]
        .iter()
        .map(|&n| (n.to_owned(), cells::cell(n).expect("known cell")))
        .collect();
    s.extend(eval_suite());
    s
}

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let mut ilt = IltConfig::default();
    if fast_mode() {
        ilt.max_iterations = 8;
    }

    let suite = suite();
    println!(
        "FIG 8 — sampling-strategy ablation ({} eval layouts)",
        suite.len()
    );
    // two protocols: the full flow (the violation feedback converts bad
    // rankings into retries, i.e. runtime), and single-attempt (the
    // network's first choice determines the EPE directly)
    let mut report = BenchReport::new("fig8");
    for (protocol, attempts) in [("full flow", 4usize), ("first choice only", 1)] {
        let mut results: Vec<(&str, usize, Duration)> = Vec::new();
        for (kind, tag) in [
            (SamplerKind::Engineered, "engineered"),
            (SamplerKind::Random, "random"),
        ] {
            let predictor = trained_predictor(&kind, tag);
            let flow_cfg = FlowConfig {
                ilt: ilt.clone(),
                max_attempts: attempts,
                ..FlowConfig::default()
            };
            let mut flow = LdmoFlow::new(flow_cfg, SelectionStrategy::Cnn(Box::new(predictor)));
            let mut epe = 0usize;
            let mut time = Duration::ZERO;
            for (name, layout) in &suite {
                eprintln!("[fig8] {protocol} / {tag} / {name} …");
                let r = flow.run(layout);
                epe += r.outcome.epe_violations();
                time += r.timing.total();
            }
            results.push((tag, epe, time));
        }
        println!("\nprotocol: {protocol}");
        println!("{:>12} | {:>6} | {:>8}", "strategy", "EPE#", "Time(s)");
        for (tag, epe, time) in &results {
            println!("{tag:>12} | {epe:>6} | {:>8.1}", time.as_secs_f64());
            let row = report.push_value(
                format!("attempts_{attempts}/{tag}"),
                "s",
                time.as_secs_f64(),
            );
            row.meta.push(("epe".into(), *epe as f64));
        }
        let ours = &results[0];
        let random = &results[1];
        let epe_ratio = if ours.1 > 0 {
            random.1 as f64 / ours.1 as f64
        } else if random.1 > 0 {
            f64::INFINITY
        } else {
            1.0
        };
        println!(
            "ratios (random / ours): EPE# {:.2}, runtime {:.2}",
            epe_ratio,
            random.2.as_secs_f64() / ours.2.as_secs_f64().max(1e-9)
        );
    }
    println!("\n(paper: random sampling ≈ 2× the EPE count at ≈ equal runtime)");
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
