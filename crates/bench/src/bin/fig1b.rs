//! Reproduces **Fig. 1(b)**: EPE-violation trajectories of different
//! decompositions of the same layout during mask optimization.
//!
//! The paper's observation: trajectories cross — intermediate printability
//! does not predict the final ranking, which is why greedy pruning on
//! intermediate results (the ICCAD'17 selection) is unreliable.
//!
//! ```sh
//! cargo run --release -p ldmo-bench --bin fig1b
//! ```

use ldmo_bench::fast_mode;
use ldmo_bench::report::{maybe_write, BenchReport};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_ilt::{optimize, IltConfig};
use ldmo_layout::cells;

fn main() {
    let trace_out = ldmo_obs::trace_setup();
    ldmo_par::cli_setup();
    ldmo_litho::backend::cli_setup();
    let _live = ldmo_bench::live_setup();
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let candidates = generate_candidates(&layout, &DecompConfig::default());
    let take = candidates.len().min(3);
    let cfg = IltConfig {
        record_epe_trajectory: true,
        max_iterations: if fast_mode() { 10 } else { 30 },
        ..IltConfig::default()
    };

    println!("FIG 1(b) — EPE convergence of {take} decompositions of AOI211_X1");
    let mut series = Vec::new();
    let mut report = BenchReport::new("fig1b");
    for (i, cand) in candidates.iter().take(take).enumerate() {
        eprintln!("[fig1b] DECMP#{} = {cand:?} …", i + 1);
        let t0 = std::time::Instant::now();
        let out = optimize(&layout, cand, &cfg);
        let elapsed = t0.elapsed();
        let epe: Vec<usize> = out
            .trajectory
            .iter()
            .map(|s| s.epe_violations.unwrap_or(0))
            .collect();
        let row = report.push_value(
            format!("DECMP#{}/optimize", i + 1),
            "s",
            elapsed.as_secs_f64(),
        );
        row.meta
            .push(("final_epe".into(), epe.last().copied().unwrap_or(0) as f64));
        row.meta.push(("iters".into(), epe.len() as f64));
        series.push((format!("DECMP#{}", i + 1), epe));
    }

    print!("{:>10}", "#Iter");
    for (name, _) in &series {
        print!(" {name:>10}");
    }
    println!();
    let len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for it in 0..len {
        print!("{:>10}", it + 1);
        for (_, s) in &series {
            match s.get(it) {
                Some(v) => print!(" {v:>10}"),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }

    // the paper's point: report whether the final winner ever trailed
    let finals: Vec<usize> = series
        .iter()
        .map(|(_, s)| *s.last().unwrap_or(&0))
        .collect();
    let winner = finals
        .iter()
        .enumerate()
        .min_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let trailed = series.iter().enumerate().any(|(i, (_, s))| {
        i != winner
            && s.iter()
                .zip(&series[winner].1)
                .any(|(other, win)| win > other)
    });
    println!(
        "\nfinal EPE counts: {finals:?}; winner: {}; winner trailed mid-run: {trailed}",
        series[winner].0
    );
    maybe_write(&report);
    ldmo_obs::trace_finish(trace_out.as_deref());
}
