#![warn(missing_docs)]
//! # ldmo-bench — the benchmark harness
//!
//! Shared infrastructure for the table/figure reproduction binaries
//! (`src/bin/table1.rs`, `fig1b.rs`, `fig1c.rs`, `fig7.rs`, `fig8.rs`) and
//! the criterion micro-benchmarks (`benches/`).
//!
//! Every binary accepts the `LDMO_FAST=1` environment variable to shrink
//! workloads (fewer training labels, fewer ILT iterations) for smoke runs;
//! the full settings reproduce the shapes reported in EXPERIMENTS.md.
//!
//! Every binary also accepts `--json-out PATH` to emit a machine-readable
//! `BENCH_<name>.json` report ([`report`]) consumed by the
//! `ldmo bench-report` aggregator and the CI perf gate.

pub mod report;

use ldmo_core::dataset::{build_dataset, DatasetConfig, SamplerKind};
use ldmo_core::predictor::PrintabilityPredictor;
use ldmo_core::sampling::SamplingConfig;
use ldmo_core::trainer::{train, TrainConfig};
use ldmo_decomp::is_dpl_compatible;
use ldmo_layout::cells;
use ldmo_layout::classify::ClassifyConfig;
use ldmo_layout::generate::{GeneratorConfig, LayoutGenerator};
use ldmo_layout::Layout;
use std::path::PathBuf;

/// Whether fast (smoke-test) mode is requested via `LDMO_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("LDMO_FAST").is_ok_and(|v| v == "1")
}

/// The live-ops guards a bench binary holds for the duration of its run:
/// the `/metrics` endpoint server and the sampling profiler, both `None`
/// unless requested (`--metrics-addr` / `--sample-hz` or their env
/// equivalents). Dropping this stops both.
pub struct LiveOps {
    /// The metrics endpoint server guard.
    pub server: Option<ldmo_obs::serve::MetricsServer>,
    /// The sampling-profiler guard.
    pub sampler: Option<ldmo_obs::profiler::Sampler>,
}

/// One-call live-ops setup for the bench bins, mirroring the `ldmo` CLI:
/// installs the crash hooks (panic → trace flush + flight dump), then
/// starts the metrics endpoint and the sampling profiler when the CLI or
/// environment asks for them. Call after [`ldmo_obs::trace_setup`] so the
/// crash path knows the trace destination; keep the returned guard alive
/// until the run ends.
pub fn live_setup() -> LiveOps {
    ldmo_guard::ops::install_crash_hooks();
    // bench bins honor LDMO_FAULTS like the ldmo CLI does — chaos runs
    // against the real workloads are how the flight recorder is exercised
    // in CI; a malformed spec is a hard error (exit 7), not a silent no-op
    if let Err(e) = ldmo_guard::fault::init_from_env() {
        eprintln!("error: {e}");
        std::process::exit(7);
    }
    LiveOps {
        server: ldmo_obs::serve::cli_setup(),
        sampler: ldmo_obs::profiler::cli_setup(),
    }
}

/// The 13 Table-I testcases: the 8 NanGate-like cell templates plus 5
/// seeded generator layouts, mirroring the paper's 13 NanGate testcases.
pub fn testcases() -> Vec<(String, Layout)> {
    let mut cases: Vec<(String, Layout)> = cells::all_cells()
        .into_iter()
        .map(|(n, l)| (n.to_owned(), l))
        .collect();
    let mut generator = LayoutGenerator::new(dense_generator_config(), 777);
    for (i, layout) in dpl_compatible(&mut generator, 5).into_iter().enumerate() {
        cases.push((format!("GEN_{}", i + 1), layout));
    }
    cases
}

/// Draws `count` DPL-compatible layouts: layouts whose sub-`nmin` conflict
/// graph is non-bipartite are rejected, as a real double-patterning design
/// flow would do before decomposition.
fn dpl_compatible(generator: &mut LayoutGenerator, count: usize) -> Vec<Layout> {
    let nmin = ClassifyConfig::default().nmin;
    let mut out = Vec::with_capacity(count);
    let mut guard = 0;
    while out.len() < count && guard < count * 40 {
        guard += 1;
        for layout in generator.generate_dataset(1) {
            if is_dpl_compatible(&layout, nmin) {
                out.push(layout);
            }
        }
    }
    out
}

/// A denser generator configuration for testcases: more contacts, tighter
/// gap mix, so decomposition choice measurably matters.
pub fn dense_generator_config() -> GeneratorConfig {
    GeneratorConfig {
        min_patterns: 6,
        max_patterns: 9,
        gap_choices: vec![56.0, 60.0, 64.0, 72.0, 84.0, 92.0, 104.0],
        ..GeneratorConfig::default()
    }
}

/// A smaller evaluation suite for the Fig. 8 sampling ablation (distinct
/// from the training pool).
pub fn eval_suite() -> Vec<(String, Layout)> {
    let mut generator = LayoutGenerator::new(dense_generator_config(), 31_337);
    dpl_compatible(&mut generator, 6)
        .into_iter()
        .enumerate()
        .map(|(i, l)| (format!("EVAL_{}", i + 1), l))
        .collect()
}

/// Where cached predictor weights live (survives across harness runs).
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from("target").join("ldmo-cache");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Training-set scale used by the harness.
pub fn harness_sampling_config(fast: bool) -> SamplingConfig {
    if fast {
        SamplingConfig {
            clusters: 2,
            per_cluster: 1,
            max_per_layout: 4,
            ..SamplingConfig::default()
        }
    } else {
        SamplingConfig {
            clusters: 10,
            per_cluster: 3,
            max_per_layout: 8,
            ..SamplingConfig::default()
        }
    }
}

/// Returns a trained predictor for the given sampling strategy, loading
/// cached weights when available (cache key includes the strategy and
/// scale tag).
pub fn trained_predictor(kind: &SamplerKind, tag: &str) -> PrintabilityPredictor {
    let fast = fast_mode();
    let path = cache_dir().join(format!(
        "predictor-{tag}-{}.bin",
        if fast { "fast" } else { "full" }
    ));
    let mut predictor = PrintabilityPredictor::lite(7);
    if predictor.load(&path).is_ok() {
        eprintln!("[bench] loaded cached predictor: {}", path.display());
        return predictor;
    }
    eprintln!("[bench] training predictor '{tag}' (strategy {kind:?}) …");
    let pool = if fast { 10 } else { 36 };
    // train on a mix matching the testcase distribution: dense
    // DPL-compatible layouts plus default-density layouts (which carry the
    // VP/NP variety that yields multiple decompositions per layout)
    let mut dense = LayoutGenerator::new(dense_generator_config(), 2020);
    let mut layouts = dpl_compatible(&mut dense, pool / 2);
    let mut default_gen = LayoutGenerator::new(GeneratorConfig::default(), 4040);
    layouts.extend(dpl_compatible(&mut default_gen, pool - pool / 2));
    let scfg = harness_sampling_config(fast);
    let mut dcfg = DatasetConfig::default();
    if fast {
        dcfg.ilt.max_iterations = 8;
    }
    let dataset = build_dataset(&layouts, kind, &scfg, &dcfg).augmented();
    eprintln!(
        "[bench] labeled {} pairs (with symmetry augmentation); training …",
        dataset.len()
    );
    let tcfg = TrainConfig {
        epochs: if fast { 8 } else { 30 },
        batch_size: 8,
        lr: 1e-3,
        seed: 1,
        ..TrainConfig::default()
    };
    let history = train(&mut predictor, &dataset, &tcfg);
    eprintln!(
        "[bench] trained: MAE {:.3} -> {:.3}",
        history.epoch_mae.first().copied().unwrap_or(f32::NAN),
        history.final_mae().unwrap_or(f32::NAN)
    );
    if let Err(e) = predictor.save(&path) {
        eprintln!("[bench] warning: could not cache weights: {e}");
    }
    predictor
}

/// Formats a `Duration` as seconds with one decimal.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_testcases() {
        let cases = testcases();
        assert_eq!(cases.len(), 13);
        // unique names
        let names: std::collections::HashSet<_> = cases.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn eval_suite_has_expected_size() {
        assert_eq!(eval_suite().len(), 6);
    }
}
