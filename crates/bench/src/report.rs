//! Machine-readable bench reports: the `BENCH_<name>.json` schema shared by
//! the reproduction binaries, the vendored criterion harness and the
//! `ldmo bench-report` aggregator / CI perf gate.
//!
//! One report per harness run, one result row per measured quantity:
//!
//! ```json
//! {"schema":"ldmo-bench-report","version":1,"name":"table1",
//!  "git_rev":"abc1234","threads":8,"fast":false,"written_unix_ms":0,
//!  "results":[{"id":"AOI211_X1/ours","unit":"s","n":1,
//!              "min":1.2,"median":1.2,"max":1.2,"mean":1.2,
//!              "meta":{"epe":0}}]}
//! ```
//!
//! Row `id`s are stable across runs (testcase/flow names, bench ids), which
//! is what lets `scripts/perf_gate.py` and `ldmo trace diff`-style tooling
//! match rows between a fresh run and a committed baseline. Conventions are
//! documented in DESIGN.md §12.

use ldmo_obs::json::{self, Value};
use std::io;
use std::path::{Path, PathBuf};

/// One measured quantity: summary statistics over `n` samples plus free-form
/// numeric metadata (grid sizes, EPE counts, iteration counts …).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable row identifier, e.g. `"AOI211_X1/ours"` or
    /// `"ilt/step_one_448"`.
    pub id: String,
    /// Unit of the statistics fields: `"s"`, `"ns"`, `"count"` …
    pub unit: String,
    /// Number of samples the statistics summarize.
    pub n: u64,
    /// Smallest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Extra numeric context, emitted as a nested `"meta"` object.
    pub meta: Vec<(String, f64)>,
}

/// A full `BENCH_<name>.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Harness name (`table1`, `kernels` …); also names the output file.
    pub name: String,
    /// `git rev-parse --short HEAD` at collection time, `"unknown"` when
    /// git is unavailable.
    pub git_rev: String,
    /// Worker-thread count the run was collected with.
    pub threads: usize,
    /// Whether `LDMO_FAST=1` shrank the workload.
    pub fast: bool,
    /// Wall-clock collection time (ms since the Unix epoch).
    pub written_unix_ms: u64,
    /// The measured rows.
    pub results: Vec<BenchResult>,
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

impl BenchReport {
    /// Starts an empty report, stamping git revision, thread count and fast
    /// mode from the environment.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            git_rev: git_rev(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            fast: crate::fast_mode(),
            written_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            results: Vec::new(),
        }
    }

    /// Records a single-sample measurement; returns the row for optional
    /// `meta` additions.
    pub fn push_value(
        &mut self,
        id: impl Into<String>,
        unit: impl Into<String>,
        value: f64,
    ) -> &mut BenchResult {
        self.push_samples(id, unit, &[value])
    }

    /// Records summary statistics over `samples` (must be non-empty; an
    /// empty slice records an all-NaN row rather than panicking).
    pub fn push_samples(
        &mut self,
        id: impl Into<String>,
        unit: impl Into<String>,
        samples: &[f64],
    ) -> &mut BenchResult {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let (min, median, max, mean) = if sorted.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                sorted[0],
                sorted[sorted.len() / 2],
                sorted[sorted.len() - 1],
                sorted.iter().sum::<f64>() / sorted.len() as f64,
            )
        };
        self.results.push(BenchResult {
            id: id.into(),
            unit: unit.into(),
            n: samples.len() as u64,
            min,
            median,
            max,
            mean,
            meta: Vec::new(),
        });
        self.results.last_mut().expect("just pushed")
    }

    /// Serializes the report (one line per result row for reviewable
    /// diffs of committed baselines).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"ldmo-bench-report\",\"version\":1,\
             \"name\":\"{}\",\"git_rev\":\"{}\",\"threads\":{},\
             \"fast\":{},\"written_unix_ms\":{},\"results\":[",
            json::escape(&self.name),
            json::escape(&self.git_rev),
            self.threads,
            self.fast,
            self.written_unix_ms
        );
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                " {{\"id\":\"{}\",\"unit\":\"{}\",\"n\":{},\"min\":{},\
                 \"median\":{},\"max\":{},\"mean\":{}",
                json::escape(&r.id),
                json::escape(&r.unit),
                r.n,
                json::number(r.min),
                json::number(r.median),
                json::number(r.max),
                json::number(r.mean)
            ));
            if !r.meta.is_empty() {
                out.push_str(",\"meta\":{");
                for (j, (k, v)) in r.meta.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{}", json::escape(k), json::number(*v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the report to `target`: a directory (existing, or a path
    /// ending in `/`) receives `BENCH_<name>.json` inside it; any other
    /// path is used verbatim. Parent directories are created. Returns the
    /// resolved file path.
    pub fn write(&self, target: &Path) -> io::Result<PathBuf> {
        let path = resolve_out_path(target, &self.name);
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Parses a report previously written by [`BenchReport::write`] (or the
    /// vendored criterion harness, which emits the same schema).
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the report schema from a JSON string.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = json::parse(text)?;
        if !matches!(&value, Value::Obj(_)) {
            return Err("report root is not an object".into());
        }
        let get_str = |key: &str| -> String {
            value
                .get(key)
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned()
        };
        let get_num = |key: &str| -> f64 { value.get(key).and_then(Value::as_f64).unwrap_or(0.0) };
        if get_str("schema") != "ldmo-bench-report" {
            return Err("missing or wrong \"schema\" marker".into());
        }
        let fast = matches!(value.get("fast"), Some(Value::Bool(true)));
        let mut results = Vec::new();
        if let Some(rows) = value.get("results").and_then(Value::as_array) {
            for row in rows {
                let num = |key: &str| row.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
                let mut meta = Vec::new();
                if let Some(Value::Obj(pairs)) = row.get("meta") {
                    for (k, v) in pairs {
                        meta.push((k.clone(), v.as_f64().unwrap_or(f64::NAN)));
                    }
                }
                results.push(BenchResult {
                    id: row
                        .get("id")
                        .and_then(Value::as_str)
                        .ok_or("result row without \"id\"")?
                        .to_owned(),
                    unit: row
                        .get("unit")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_owned(),
                    n: num("n") as u64,
                    min: num("min"),
                    median: num("median"),
                    max: num("max"),
                    mean: num("mean"),
                    meta,
                });
            }
        }
        Ok(BenchReport {
            name: get_str("name"),
            git_rev: get_str("git_rev"),
            threads: get_num("threads") as usize,
            fast,
            written_unix_ms: get_num("written_unix_ms") as u64,
            results,
        })
    }

    /// Loads every `BENCH_*.json` in `dir`, sorted by report name.
    pub fn load_dir(dir: &Path) -> Result<Vec<BenchReport>, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut reports = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                reports.push(BenchReport::load(&path)?);
            }
        }
        reports.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(reports)
    }
}

fn resolve_out_path(target: &Path, name: &str) -> PathBuf {
    let trailing_slash = target
        .as_os_str()
        .to_str()
        .is_some_and(|s| s.ends_with('/'));
    if target.is_dir() || trailing_slash {
        target.join(format!("BENCH_{name}.json"))
    } else {
        target.to_path_buf()
    }
}

/// Walks up from the current directory to the nearest ancestor whose
/// `Cargo.toml` declares a `[workspace]` section.
///
/// Cargo runs bench/test executables with the *package* directory as CWD,
/// so a relative `--json-out bench_out/` passed to a crate's bench would
/// otherwise land in `crates/<pkg>/bench_out/` instead of the repo-level
/// `bench_out/` that the perf gate and committed baselines use.
pub fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|t| t.contains("[workspace]"))
        {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Anchors a relative output path at [`workspace_root`]; absolute paths
/// (and relative ones outside any workspace) pass through untouched.
fn resolve_against_workspace(target: PathBuf) -> PathBuf {
    if target.is_absolute() {
        return target;
    }
    match workspace_root() {
        Some(root) => root.join(target),
        None => target,
    }
}

/// Scans `std::env::args` for `--json-out PATH` (the shared CLI convention
/// of the bench bins and criterion benches). Relative paths resolve against
/// the workspace root, not the executable's CWD.
pub fn json_out_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .rfind(|pair| pair[0] == "--json-out")
        .map(|pair| resolve_against_workspace(PathBuf::from(&pair[1])))
}

/// Writes `report` when `--json-out` was passed, reporting the outcome on
/// stderr. Silent no-op otherwise — the bins call this unconditionally at
/// the end of the run.
pub fn maybe_write(report: &BenchReport) {
    let Some(target) = json_out_arg() else { return };
    match report.write(&target) {
        Ok(path) => eprintln!("[bench] report written to {}", path.display()),
        Err(e) => eprintln!("[bench] could not write {}: {e}", target.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_rows() {
        let mut report = BenchReport::new("unit_test");
        report.push_value("case_a/ours", "s", 1.25);
        let row = report.push_samples("kernel/x", "ns", &[3.0, 1.0, 2.0]);
        row.meta.push(("grid".into(), 448.0));
        let parsed = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.results[1].min, 1.0);
        assert_eq!(parsed.results[1].median, 2.0);
        assert_eq!(parsed.results[1].max, 3.0);
        assert_eq!(parsed.results[1].mean, 2.0);
    }

    #[test]
    fn rejects_foreign_json() {
        assert!(BenchReport::from_json("{\"schema\":\"other\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn relative_json_out_anchors_at_the_workspace_root() {
        // cargo runs this test with crates/bench as CWD; the walk-up must
        // land on the repo root, one level above the package dir
        let root = workspace_root().expect("tests run inside the workspace");
        let cwd = std::env::current_dir().expect("cwd");
        assert_ne!(root, cwd, "package dir must not masquerade as the root");
        assert!(cwd.starts_with(&root));
        assert_eq!(
            resolve_against_workspace(PathBuf::from("bench_out/")),
            root.join("bench_out/")
        );
        let absolute = cwd.join("explicit.json");
        assert_eq!(resolve_against_workspace(absolute.clone()), absolute);
    }

    #[test]
    fn dir_target_appends_file_name() {
        let path = resolve_out_path(Path::new("bench_out/"), "kernels");
        assert_eq!(path, Path::new("bench_out/BENCH_kernels.json"));
        let path = resolve_out_path(Path::new("explicit.json"), "kernels");
        assert_eq!(path, Path::new("explicit.json"));
    }
}
