//! Thread-pool scaling benchmarks: dataset labeling and candidate
//! ranking at explicit pool sizes. Results are bit-identical across the
//! sizes (see `tests/determinism_golden.rs`); these benches measure the
//! wall-clock side of that guarantee.

use criterion::{criterion_group, criterion_main, Criterion};
use ldmo_core::dataset::{build_dataset_pooled, DatasetConfig, SamplerKind};
use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo_core::sampling::SamplingConfig;
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_ilt::{IltConfig, IltContext};
use ldmo_layout::cells;
use ldmo_par::ThreadPool;

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn short_ilt() -> IltConfig {
    IltConfig {
        max_iterations: 6,
        abort_warmup: 3,
        ..IltConfig::default()
    }
}

fn bench_label_scaling(c: &mut Criterion) {
    let layouts: Vec<_> = ["NAND2_X1", "NOR2_X1", "AOI211_X1"]
        .iter()
        .map(|n| cells::cell(n).expect("known cell"))
        .collect();
    let scfg = SamplingConfig {
        clusters: 2,
        per_cluster: 1,
        max_per_layout: 3,
        ..SamplingConfig::default()
    };
    let dcfg = DatasetConfig {
        ilt: short_ilt(),
        ..DatasetConfig::default()
    };
    let mut group = c.benchmark_group("par");
    group.sample_size(10);
    for threads in POOL_SIZES {
        let pool = ThreadPool::new(threads);
        group.bench_function(format!("label_scaling/{threads}"), |b| {
            b.iter(|| build_dataset_pooled(&layouts, &SamplerKind::Engineered, &scfg, &dcfg, &pool))
        });
    }
    group.finish();
}

fn bench_rank_scaling(c: &mut Criterion) {
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let candidates = generate_candidates(&layout, &DecompConfig::default());
    let cfg = FlowConfig {
        ilt: short_ilt(),
        ..FlowConfig::default()
    };
    let ctx = IltContext::new(&cfg.ilt);
    let mut group = c.benchmark_group("par");
    group.sample_size(10);
    for threads in POOL_SIZES {
        let pool = ThreadPool::new(threads);
        group.bench_function(format!("rank_scaling/{threads}"), |b| {
            let mut flow =
                LdmoFlow::new(cfg.clone(), SelectionStrategy::LithoProxy).with_pool(pool.clone());
            b.iter(|| flow.rank_candidates(&layout, &candidates, &ctx))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_label_scaling, bench_rank_scaling);
criterion_main!(benches);
