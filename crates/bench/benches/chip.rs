//! Tiled full-chip pipeline benchmarks (DESIGN.md §15): end-to-end
//! `run_chip` throughput on a multi-block demo chip, plus the stitch step
//! in isolation so the perf gate can bound stitching overhead relative to
//! the whole tiled run. Feeds `BENCH_chip.json` (via `--json-out`), which
//! `scripts/perf_gate.py` diffs against the committed `bench_out/`
//! baseline.
//!
//! `LDMO_FAST=1` shrinks the per-tile ILT budget so the CI smoke run stays
//! cheap; the committed baseline is collected in the same mode.

use criterion::{criterion_group, criterion_main, Criterion};
use ldmo_bench::fast_mode;
use ldmo_chip::{run_chip, stitch_masks, ChipConfig, TileGrid};
use ldmo_geom::{Grid, Rect};
use ldmo_layout::generate::{GeneratorConfig, LayoutGenerator};
use ldmo_layout::Layout;

/// A deterministic 2x1-block demo chip (two 448 nm tiles at the default
/// tile size) — small enough for a bench loop, large enough to exercise
/// tiling, per-tile ranking and stitching.
fn demo_chip() -> Layout {
    LayoutGenerator::new(GeneratorConfig::default(), 11)
        .generate_chip(2, 1)
        .expect("demo chip generates")
}

fn chip_cfg() -> ChipConfig {
    let mut cfg = ChipConfig::default();
    if fast_mode() {
        cfg.ilt.max_iterations = 2;
        cfg.decomp.max_candidates = 4;
    } else {
        cfg.ilt.max_iterations = 6;
        cfg.decomp.max_candidates = 8;
    }
    cfg
}

/// Whole tiled pipeline on the demo chip. The row is named for the
/// quantity it tracks: wall time per run over a fixed tile count, i.e.
/// the inverse of tiles/sec (the runner also exports a live
/// `chip.tiles_per_sec` gauge).
fn bench_chip_run(c: &mut Criterion) {
    let layout = demo_chip();
    let cfg = chip_cfg();
    let mut group = c.benchmark_group("chip");
    group.sample_size(10);
    group.bench_function("tiles_per_sec", |b| b.iter(|| run_chip(&layout, &cfg)));
    group.finish();
}

/// Stitch step alone, on synthetic per-tile masks for a 2x2 grid — the
/// overhead the perf gate bounds against the full run above.
fn bench_stitch(c: &mut Criterion) {
    let nm_per_px = 2.0;
    let grid = TileGrid::new(Rect::new(0, 0, 896, 896), 448, 270);
    let masks: Vec<_> = (0..grid.len())
        .map(|i| {
            let t = grid.tile(i);
            let w = (f64::from(t.window.width()) / nm_per_px).round() as usize;
            let h = (f64::from(t.window.height()) / nm_per_px).round() as usize;
            Some([Grid::filled(w, h, 1.0), Grid::filled(w, h, 0.5)])
        })
        .collect();
    let mut group = c.benchmark_group("chip");
    group.sample_size(20);
    group.bench_function("stitch_2x2", |b| {
        b.iter(|| stitch_masks(&grid, nm_per_px, &masks))
    });
    group.finish();
}

criterion_group!(benches, bench_chip_run, bench_stitch);
criterion_main!(benches);
