//! Per-backend litho benchmarks (DESIGN.md §13): the same forward pass /
//! ILT step / candidate ranking measured under each [`BackendKind`], plus
//! the direct-vs-separable-vs-FFT dense-kernel crossover at ≥224² that
//! pins [`ldmo_litho::backend::FFT_CROSSOVER_PX`]. Feeds
//! `BENCH_backends.json` (via `--json-out`), which `scripts/perf_gate.py`
//! diffs against the committed `bench_out/` baseline.
//!
//! Backend selection is process-global; every section sets it explicitly
//! and the file restores the default at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_geom::{Grid, Rect};
use ldmo_ilt::{IltConfig, IltContext, IltSession};
use ldmo_layout::cells;
use ldmo_litho::backend::{self, BackendKind};
use ldmo_litho::{simulate_print, CoherentKernel, KernelBank, LithoConfig};

fn short_ilt() -> IltConfig {
    IltConfig {
        max_iterations: 6,
        abort_warmup: 3,
        ..IltConfig::default()
    }
}

/// One full print (kernel bank forward + resist) per backend, on the
/// 224² raster of a standard cell.
fn bench_print_backends(c: &mut Criterion) {
    let cfg = LithoConfig::default();
    let bank = KernelBank::paper_bank(&cfg);
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let mask = layout.rasterize_target(cfg.nm_per_px);
    let mut group = c.benchmark_group("backend");
    group.sample_size(20);
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        backend::set_backend(kind);
        group.bench_function(format!("print_224_{kind}"), |b| {
            b.iter(|| simulate_print(&mask, &bank, &cfg))
        });
    }
    backend::set_backend(backend::default_kind());
    group.finish();
}

/// One workspace ILT iteration per backend (the flow's inner hot loop).
fn bench_step_backends(c: &mut Criterion) {
    let layout = cells::cell("BUF_X1").expect("known cell");
    let cfg = IltConfig::default();
    let mut group = c.benchmark_group("backend");
    group.sample_size(20);
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        backend::set_backend(kind);
        let mut session = IltSession::new(&layout, &[0, 1, 1, 0], &cfg);
        group.bench_function(format!("step_{kind}"), |b| b.iter(|| session.step_one()));
    }
    backend::set_backend(backend::default_kind());
    group.finish();
}

/// Candidate ranking per backend: `batched` pushes candidates through the
/// kernel bank in chunks (one kernel-expansion visit per chunk), which is
/// the amortization the flow relies on even single-threaded.
fn bench_rank_backends(c: &mut Criterion) {
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let candidates = generate_candidates(&layout, &DecompConfig::default());
    let cfg = FlowConfig {
        ilt: short_ilt(),
        ..FlowConfig::default()
    };
    let ctx = IltContext::new(&cfg.ilt);
    let mut group = c.benchmark_group("backend");
    group.sample_size(10);
    for kind in [BackendKind::Scalar, BackendKind::Simd, BackendKind::Batched] {
        backend::set_backend(kind);
        let mut flow = LdmoFlow::new(cfg.clone(), SelectionStrategy::LithoProxy);
        group.bench_function(format!("rank_{kind}"), |b| {
            b.iter(|| flow.rank_candidates(&layout, &candidates, &ctx))
        });
    }
    backend::set_backend(backend::default_kind());
    group.finish();
}

/// Dense-kernel convolution crossover at flow-scale grids (≥224²): what
/// `convolve2d_auto` switches on. The bank's own kernels are separable,
/// so `separable` is the bar FFT has to clear.
fn bench_crossover(c: &mut Criterion) {
    use ldmo_litho::{convolve2d_direct, convolve2d_fft};
    let mut group = c.benchmark_group("backend");
    group.sample_size(10);
    let kernel = CoherentKernel::gaussian(6.0, 1.0);
    let (dense, k) = kernel.to_dense();
    for side in [224usize, 256] {
        let mut grid = Grid::zeros(side, side);
        let margin = side as i32 / 4;
        grid.fill_rect(&Rect::new(margin, margin, 3 * margin, 3 * margin), 1.0);
        group.bench_function(format!("xover_separable_{side}"), |b| {
            b.iter(|| kernel.field(&grid))
        });
        group.bench_function(format!("xover_fft_{side}"), |b| {
            b.iter(|| convolve2d_fft(&grid, &dense, k, k))
        });
        group.bench_function(format!("xover_direct_{side}"), |b| {
            b.iter(|| convolve2d_direct(&grid, &dense, k, k))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_print_backends,
    bench_step_backends,
    bench_rank_backends,
    bench_crossover
);
criterion_main!(benches);
