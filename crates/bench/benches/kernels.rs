//! Criterion micro-benchmarks of the atomic operations the paper's runtime
//! argument rests on: one lithography forward pass vs one CNN inference
//! (the reason learned selection beats simulation-based selection), plus
//! the decomposition and vision substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ldmo_core::predictor::PrintabilityPredictor;
use ldmo_decomp::covering::covering_array;
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_geom::{Grid, Rect};
use ldmo_ilt::{IltConfig, IltSession};
use ldmo_layout::cells;
use ldmo_litho::{
    aerial_image, detect_violations, measure_epe, resist_threshold, simulate_print, KernelBank,
    LithoConfig,
};
use ldmo_vision::sift::{extract_features, SiftConfig};

fn cell_mask() -> (Grid, KernelBank, LithoConfig) {
    let cfg = LithoConfig::default();
    let bank = KernelBank::paper_bank(&cfg);
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let mask = layout.rasterize_target(cfg.nm_per_px);
    (mask, bank, cfg)
}

fn bench_litho(c: &mut Criterion) {
    let (mask, bank, cfg) = cell_mask();
    let mut group = c.benchmark_group("litho");
    group.sample_size(20);
    group.bench_function("aerial_image_224", |b| {
        b.iter(|| aerial_image(&mask, &bank))
    });
    let aerial = aerial_image(&mask, &bank);
    group.bench_function("resist_threshold_224", |b| {
        b.iter(|| resist_threshold(&aerial.intensity, &cfg))
    });
    let printed = simulate_print(&mask, &bank, &cfg);
    let layout = cells::cell("AOI211_X1").expect("known cell");
    group.bench_function("measure_epe", |b| {
        b.iter(|| measure_epe(&printed, layout.patterns(), &cfg))
    });
    group.bench_function("detect_violations", |b| {
        b.iter(|| detect_violations(&printed, layout.patterns(), 0.5, cfg.nm_per_px))
    });
    group.finish();
}

fn bench_ilt(c: &mut Criterion) {
    let layout = cells::cell("BUF_X1").expect("known cell");
    let cfg = IltConfig::default();
    let mut group = c.benchmark_group("ilt");
    group.sample_size(10);
    group.bench_function("one_iteration", |b| {
        b.iter_batched(
            || IltSession::new(&layout, &[0, 1, 1, 0], &cfg),
            |mut session| session.step_one(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_cnn(c: &mut Criterion) {
    // the paper's core runtime claim: CNN inference ≪ litho simulation
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let mut predictor = PrintabilityPredictor::lite(1);
    let assignment: Vec<u8> = vec![0, 1, 0, 1, 0, 1, 0, 1];
    let mut group = c.benchmark_group("cnn");
    group.sample_size(20);
    group.bench_function("predict_one_candidate", |b| {
        b.iter(|| predictor.predict(&layout, &assignment))
    });
    group.finish();
}

fn bench_decomp(c: &mut Criterion) {
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let cfg = DecompConfig::default();
    let mut group = c.benchmark_group("decomp");
    group.bench_function("generate_candidates_aoi211", |b| {
        b.iter(|| generate_candidates(&layout, &cfg))
    });
    group.bench_function("covering_array_10_3", |b| {
        b.iter(|| covering_array(10, 3))
    });
    group.finish();
}

fn bench_vision(c: &mut Criterion) {
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let img = layout.rasterize_target(4.0);
    let mut group = c.benchmark_group("vision");
    group.sample_size(20);
    group.bench_function("sift_extract_112", |b| {
        b.iter(|| extract_features(&img, &SiftConfig::default()))
    });
    group.finish();
}

fn bench_conv_ablation(c: &mut Criterion) {
    // DESIGN.md §4: direct vs separable vs FFT convolution crossover
    use ldmo_litho::{convolve2d_direct, convolve2d_fft, CoherentKernel};
    let mut grid = Grid::zeros(128, 128);
    grid.fill_rect(&Rect::new(40, 40, 90, 90), 1.0);
    let mut group = c.benchmark_group("conv_ablation");
    group.sample_size(10);
    for sigma in [2.0f64, 6.0] {
        let kernel = CoherentKernel::gaussian(sigma, 1.0);
        let (dense, k) = kernel.to_dense();
        group.bench_function(format!("direct_sigma{sigma}"), |b| {
            b.iter(|| convolve2d_direct(&grid, &dense, k, k))
        });
        group.bench_function(format!("separable_sigma{sigma}"), |b| {
            b.iter(|| kernel.field(&grid))
        });
        group.bench_function(format!("fft_sigma{sigma}"), |b| {
            b.iter(|| convolve2d_fft(&grid, &dense, k, k))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_litho,
    bench_ilt,
    bench_cnn,
    bench_decomp,
    bench_vision,
    bench_conv_ablation
);
criterion_main!(benches);
