//! Criterion micro-benchmarks of the atomic operations the paper's runtime
//! argument rests on: one lithography forward pass vs one CNN inference
//! (the reason learned selection beats simulation-based selection), plus
//! the decomposition and vision substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ldmo_core::predictor::PrintabilityPredictor;
use ldmo_decomp::covering::covering_array;
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_geom::{Grid, Rect};
use ldmo_ilt::{GuardPolicy, IltConfig, IltSession};
use ldmo_layout::cells;
use ldmo_litho::{
    aerial_image, combine_prints, detect_violations, measure_epe, resist_threshold, sigmoid,
    simulate_print, AerialImage, CoherentKernel, KernelBank, LithoConfig,
};
use ldmo_vision::sift::{extract_features, SiftConfig};

fn cell_mask() -> (Grid, KernelBank, LithoConfig) {
    let cfg = LithoConfig::default();
    let bank = KernelBank::paper_bank(&cfg);
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let mask = layout.rasterize_target(cfg.nm_per_px);
    (mask, bank, cfg)
}

fn bench_litho(c: &mut Criterion) {
    let (mask, bank, cfg) = cell_mask();
    let mut group = c.benchmark_group("litho");
    group.sample_size(20);
    group.bench_function("aerial_image_224", |b| {
        b.iter(|| aerial_image(&mask, &bank))
    });
    let aerial = aerial_image(&mask, &bank);
    group.bench_function("resist_threshold_224", |b| {
        b.iter(|| resist_threshold(&aerial.intensity, &cfg))
    });
    let printed = simulate_print(&mask, &bank, &cfg);
    let layout = cells::cell("AOI211_X1").expect("known cell");
    group.bench_function("measure_epe", |b| {
        b.iter(|| measure_epe(&printed, layout.patterns(), &cfg))
    });
    group.bench_function("detect_violations", |b| {
        b.iter(|| detect_violations(&printed, layout.patterns(), 0.5, cfg.nm_per_px))
    });
    group.finish();
}

// ---------------------------------------------------------------------------
// The pre-workspace hot path, reproduced verbatim as the perf baseline for
// `step_workspace`: per-call-allocating primitives over the original
// tap-outer slice-add separable convolution. Outputs are identical to the
// workspace path up to the sign of zero (the register-blocked passes
// accumulate in the same tap order; zero padding only contributes exact
// `+0.0` terms), which `bench_ilt` asserts once at setup.
// ---------------------------------------------------------------------------

fn seed_convolve_rows(input: &Grid, profile: &[f32]) -> Grid {
    let (w, h) = input.shape();
    let c = (profile.len() / 2) as i64;
    let mut out = Grid::zeros(w, h);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        let row = &src[y * w..(y + 1) * w];
        let out_row = &mut dst[y * w..(y + 1) * w];
        for (k, &p) in profile.iter().enumerate() {
            let off = k as i64 - c;
            let (dst_range, src_range) = if off >= 0 {
                let off = (off as usize).min(w);
                (off..w, 0..w - off)
            } else {
                let off = ((-off) as usize).min(w);
                (0..w - off, off..w)
            };
            for (d, &s) in out_row[dst_range].iter_mut().zip(&row[src_range]) {
                *d += s * p;
            }
        }
    }
    out
}

fn seed_convolve_cols(input: &Grid, profile: &[f32]) -> Grid {
    let (w, h) = input.shape();
    let c = (profile.len() / 2) as i64;
    let mut out = Grid::zeros(w, h);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        for (k, &p) in profile.iter().enumerate() {
            let sy = y as i64 - (k as i64 - c);
            if sy < 0 || sy as usize >= h {
                continue;
            }
            let src_row = &src[sy as usize * w..(sy as usize + 1) * w];
            let dst_row = &mut dst[y * w..(y + 1) * w];
            for (d, &s) in dst_row.iter_mut().zip(src_row) {
                *d += s * p;
            }
        }
    }
    out
}

fn seed_convolve_separable(input: &Grid, profile: &[f32]) -> Grid {
    let tmp = seed_convolve_rows(input, profile);
    seed_convolve_cols(&tmp, profile)
}

/// The seed's `CoherentKernel::field`: fresh accumulator + one allocating
/// separable convolution per component. Symmetric profiles make this also
/// the seed's `backproject`.
fn seed_field(kernel: &CoherentKernel, mask: &Grid) -> Grid {
    let (w, h) = mask.shape();
    let mut acc = Grid::zeros(w, h);
    for (amplitude, profile) in kernel.components() {
        let part = seed_convolve_separable(mask, profile);
        let a = acc.as_mut_slice();
        for (v, &p) in a.iter_mut().zip(part.as_slice()) {
            *v += amplitude * p;
        }
    }
    acc
}

/// One ILT iteration's forward + gradient as composed before the workspace
/// engine: every primitive allocates (and zero-fills) its own buffers per
/// call, exactly the original structure.
fn seed_step(
    p1: &Grid,
    p2: &Grid,
    target: &Grid,
    theta_m: f32,
    bank: &KernelBank,
    litho: &LithoConfig,
) -> (Grid, Grid) {
    let ps = [p1.clone(), p2.clone()];
    let masks: Vec<Grid> = ps.iter().map(|p| p.map(|v| sigmoid(theta_m * v))).collect();
    let aerials: Vec<AerialImage> = masks
        .iter()
        .map(|m| {
            let (w, h) = m.shape();
            let mut intensity = Grid::zeros(w, h);
            let mut fields = Vec::with_capacity(bank.kernels().len());
            for kernel in bank.kernels() {
                let field = seed_field(kernel, m);
                let wk = kernel.weight() as f32;
                for (a, &v) in intensity.as_mut_slice().iter_mut().zip(field.as_slice()) {
                    *a += wk * v * v;
                }
                fields.push(field);
            }
            AerialImage { intensity, fields }
        })
        .collect();
    let resists: Vec<Grid> = aerials
        .iter()
        .map(|a| resist_threshold(&a.intensity, litho))
        .collect();
    let printed = combine_prints(&resists);
    let _l2 = printed.l2_dist_sq(target).expect("shapes match");

    let (w, h) = printed.shape();
    let mut dl_dt = Grid::zeros(w, h);
    {
        let t = printed.as_slice();
        let tp = target.as_slice();
        let out = dl_dt.as_mut_slice();
        for i in 0..out.len() {
            let sum: f32 = resists.iter().map(|r| r.as_slice()[i]).sum();
            let gate = if sum < 1.0 { 1.0 } else { 0.0 };
            out[i] = 2.0 * (t[i] - tp[i]) * gate;
        }
    }
    let mut grads: Vec<Grid> = (0..2)
        .map(|idx| {
            let mut g_int = Grid::zeros(w, h);
            {
                let t = resists[idx].as_slice();
                let d = dl_dt.as_slice();
                let out = g_int.as_mut_slice();
                for i in 0..out.len() {
                    out[i] = d[i] * litho.theta_z * t[i] * (1.0 - t[i]);
                }
            }
            let mut dl_dm = Grid::zeros(w, h);
            for (k, kernel) in bank.kernels().iter().enumerate() {
                let field = &aerials[idx].fields[k];
                let weighted = g_int.zip_map(field, |g, f| g * f).expect("shapes match");
                let back = seed_field(kernel, &weighted);
                let wk = 2.0 * kernel.weight() as f32;
                for (a, &b) in dl_dm.as_mut_slice().iter_mut().zip(back.as_slice()) {
                    *a += wk * b;
                }
            }
            let m = masks[idx].as_slice();
            let s = dl_dm.as_mut_slice();
            for i in 0..s.len() {
                s[i] *= theta_m * m[i] * (1.0 - m[i]);
            }
            dl_dm
        })
        .collect();
    let g2 = grads.pop().expect("two");
    let g1 = grads.pop().expect("two");
    (g1, g2)
}

/// One full pre-workspace iteration: [`seed_step`] plus the max-normalized
/// descent and MRC corridor clamp, mutating `p` exactly like the seed
/// optimizer's `step_one` did. This is what `step_workspace` replaced.
fn seed_iteration(
    p: &mut [Grid],
    corridors: &[Grid],
    target: &Grid,
    cfg: &IltConfig,
    bank: &KernelBank,
) {
    let (g1, g2) = seed_step(&p[0], &p[1], target, cfg.theta_m, bank, &cfg.litho);
    for (pi, g) in p.iter_mut().zip([&g1, &g2]) {
        let max_abs = g.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        if max_abs > f32::EPSILON {
            let s = cfg.step_size / max_abs;
            for (v, &d) in pi.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *v -= s * d;
            }
        }
    }
    for (pi, c) in p.iter_mut().zip(corridors) {
        for (v, &cv) in pi.as_mut_slice().iter_mut().zip(c.as_slice()) {
            if cv < 0.5 {
                *v = -1.0;
            }
        }
    }
}

fn bench_ilt(c: &mut Criterion) {
    let layout = cells::cell("BUF_X1").expect("known cell");
    let cfg = IltConfig::default();
    let assignment: &[u8] = &[0, 1, 1, 0];
    let mut group = c.benchmark_group("ilt");
    group.sample_size(10);
    group.bench_function("one_iteration", |b| {
        b.iter_batched(
            || IltSession::new(&layout, assignment, &cfg),
            |mut session| session.step_one(),
            BatchSize::LargeInput,
        )
    });
    // allocating iteration (the pre-workspace hot path): forward + gradient
    // + descent with every intermediate freshly allocated per primitive call
    let bank = KernelBank::paper_bank(&cfg.litho);
    let scale = cfg.litho.nm_per_px;
    let target = layout.rasterize_target(scale);
    let p0 = 0.25f32;
    let mut ps: Vec<Grid> = (0u8..2)
        .map(|m| {
            layout
                .rasterize_mask(assignment, m, scale)
                .expect("assignment covers the layout")
                .map(|v| if v > 0.5 { p0 } else { -p0 })
        })
        .collect();
    let corridors: Vec<Grid> = (0u8..2)
        .map(|m| {
            layout
                .rasterize_mask_expanded(assignment, m, scale, cfg.mrc_expand_nm)
                .expect("assignment covers the layout")
        })
        .collect();
    // the baseline must compute the same numbers as the workspace path
    // (`-0.0 == 0.0` under `PartialEq`, everything else bit-equal)
    for kernel in bank.kernels() {
        assert_eq!(
            seed_field(kernel, &ps[0]),
            kernel.field(&ps[0]),
            "seed convolution diverged from the workspace passes"
        );
    }
    group.bench_function("step_alloc", |b| {
        b.iter(|| seed_iteration(&mut ps, &corridors, &target, &cfg, &bank))
    });
    // workspace iteration: identical per-iteration work, all buffers owned
    // by the session (zero per-iteration allocations). Guards are on by
    // default; `step_guard_off` isolates their overhead (EXPERIMENTS.md
    // pins it at <=2%).
    let mut session = IltSession::new(&layout, assignment, &cfg);
    group.bench_function("step_workspace", |b| b.iter(|| session.step_one()));
    let unguarded_cfg = IltConfig {
        guard: GuardPolicy::disabled(),
        ..cfg.clone()
    };
    let mut unguarded = IltSession::new(&layout, assignment, &unguarded_cfg);
    group.bench_function("step_guard_off", |b| b.iter(|| unguarded.step_one()));
    // full live-ops iteration: collector on, flight ring recording and the
    // sampling profiler running at 97 Hz — the perf gate holds this within
    // 5% of step_workspace (scrapes and samples must not perturb the hot
    // path)
    ldmo_obs::enable();
    let sampler = ldmo_obs::profiler::start(97.0);
    let mut liveops = IltSession::new(&layout, assignment, &cfg);
    group.bench_function("step_liveops", |b| b.iter(|| liveops.step_one()));
    drop(sampler);
    ldmo_obs::disable();
    group.finish();
}

fn bench_cnn(c: &mut Criterion) {
    // the paper's core runtime claim: CNN inference ≪ litho simulation
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let mut predictor = PrintabilityPredictor::lite(1);
    let assignment: Vec<u8> = vec![0, 1, 0, 1, 0, 1, 0, 1];
    let mut group = c.benchmark_group("cnn");
    group.sample_size(20);
    group.bench_function("predict_one_candidate", |b| {
        b.iter(|| predictor.predict(&layout, &assignment))
    });
    group.finish();
}

fn bench_decomp(c: &mut Criterion) {
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let cfg = DecompConfig::default();
    let mut group = c.benchmark_group("decomp");
    group.bench_function("generate_candidates_aoi211", |b| {
        b.iter(|| generate_candidates(&layout, &cfg))
    });
    group.bench_function("covering_array_10_3", |b| b.iter(|| covering_array(10, 3)));
    group.finish();
}

fn bench_vision(c: &mut Criterion) {
    let layout = cells::cell("AOI211_X1").expect("known cell");
    let img = layout.rasterize_target(4.0);
    let mut group = c.benchmark_group("vision");
    group.sample_size(20);
    group.bench_function("sift_extract_112", |b| {
        b.iter(|| extract_features(&img, &SiftConfig::default()))
    });
    group.finish();
}

fn bench_conv_ablation(c: &mut Criterion) {
    // DESIGN.md §4: direct vs separable vs FFT convolution crossover
    use ldmo_litho::{convolve2d_direct, convolve2d_fft, CoherentKernel};
    let mut grid = Grid::zeros(128, 128);
    grid.fill_rect(&Rect::new(40, 40, 90, 90), 1.0);
    let mut group = c.benchmark_group("conv_ablation");
    group.sample_size(10);
    for sigma in [2.0f64, 6.0] {
        let kernel = CoherentKernel::gaussian(sigma, 1.0);
        let (dense, k) = kernel.to_dense();
        group.bench_function(format!("direct_sigma{sigma}"), |b| {
            b.iter(|| convolve2d_direct(&grid, &dense, k, k))
        });
        group.bench_function(format!("separable_sigma{sigma}"), |b| {
            b.iter(|| kernel.field(&grid))
        });
        group.bench_function(format!("fft_sigma{sigma}"), |b| {
            b.iter(|| convolve2d_fft(&grid, &dense, k, k))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_litho,
    bench_ilt,
    bench_cnn,
    bench_decomp,
    bench_vision,
    bench_conv_ablation
);
criterion_main!(benches);
