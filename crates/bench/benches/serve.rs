//! Serving-daemon benchmarks (DESIGN.md §16): full HTTP round-trips
//! against an in-process `ldmo-serve` — connect, POST a layout, run the
//! batch scheduler, read the typed response. The row tracks wall time per
//! request, i.e. the inverse of requests/sec; a cached row isolates the
//! lookup path from the optimization itself. Feeds `BENCH_serve.json`
//! (via `--json-out`), which `scripts/perf_gate.py` diffs against the
//! committed `bench_out/` baseline.
//!
//! `LDMO_FAST=1` shrinks the per-request ILT budget so the CI smoke run
//! stays cheap; the committed baseline is collected in the same mode.

use criterion::{criterion_group, criterion_main, Criterion};
use ldmo_bench::fast_mode;
use ldmo_layout::generate::{GeneratorConfig, LayoutGenerator};
use ldmo_layout::io as layout_io;
use ldmo_serve::{client, OptimizeRequest, OptimizeResponse, ServeConfig, Server};

fn serve_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    if fast_mode() {
        cfg.pipeline.ilt.max_iterations = 2;
        cfg.pipeline.decomp.max_candidates = 4;
    } else {
        cfg.pipeline.ilt.max_iterations = 6;
        cfg.pipeline.decomp.max_candidates = 8;
    }
    cfg
}

fn request(id: &str, seed: u64) -> OptimizeRequest {
    let layout = LayoutGenerator::new(GeneratorConfig::default(), seed)
        .generate_dataset(1)
        .remove(0);
    OptimizeRequest {
        id: id.into(),
        layout_text: layout_io::to_string(&layout),
        deadline_ms: None,
        max_iterations: None,
        max_candidates: None,
    }
}

fn roundtrip(addr: &str, body: &str) -> OptimizeResponse {
    let payload = client::post(addr, "/optimize", body).expect("post");
    OptimizeResponse::from_json(&payload).expect("typed response")
}

/// Uncached serving rate: every iteration rotates through a small layout
/// set below the cache (identical requests would all hit after the first
/// lap, so the rotation alone would measure the lookup path — instead the
/// cache is disabled and every round-trip pays for ranking + ILT).
fn bench_requests_per_sec(c: &mut Criterion) {
    let server = Server::start(serve_cfg()).expect("server starts");
    let addr = server.addr().to_string();
    let bodies: Vec<String> = (0..4)
        .map(|i| request(&format!("bench-{i}"), 40 + i as u64).to_json())
        .collect();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let mut i = 0usize;
    group.bench_function("requests_per_sec", |b| {
        b.iter(|| {
            let response = roundtrip(&addr, &bodies[i % bodies.len()]);
            i += 1;
            assert_eq!(response.status, 200, "bench requests must serve");
            response
        })
    });
    group.finish();
    server.shutdown();
}

/// Cache-hit serving rate: one warmed key, so the round-trip is HTTP +
/// queue + content-addressed lookup with no optimization work — the
/// ceiling the uncached row is compared against.
fn bench_cached_requests_per_sec(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ldmo_bench_serve_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let cache_path = dir.join("bench.cachelog");
    let _ = std::fs::remove_file(&cache_path);
    let mut cfg = serve_cfg();
    cfg.cache_path = Some(cache_path.clone());
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr().to_string();
    let body = request("bench-cached", 48).to_json();
    let warm = roundtrip(&addr, &body);
    assert_eq!(warm.status, 200);
    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    group.bench_function("cached_requests_per_sec", |b| {
        b.iter(|| {
            let response = roundtrip(&addr, &body);
            assert!(response.cached, "warmed key must hit");
            response
        })
    });
    group.finish();
    server.shutdown();
    let _ = std::fs::remove_file(&cache_path);
}

criterion_group!(
    benches,
    bench_requests_per_sec,
    bench_cached_requests_per_sec
);
criterion_main!(benches);
