#![warn(missing_docs)]
//! # ldmo-guard — the robustness layer
//!
//! The ILT inner loop is a non-convex gradient descent that the paper
//! simply assumes converges within its iteration budget. In a service
//! setting a single NaN gradient, diverging step, or pathological
//! candidate must degrade *one candidate's score* — not poison a whole
//! `LdmoFlow::run` or a parallel `build_dataset` fan-out. This crate is
//! the dependency-free substrate the rest of the workspace builds its
//! recovery paths on (DESIGN.md §11):
//!
//! - **Health taxonomy** — [`OutcomeHealth`] / [`DegradeReason`] classify
//!   every ILT outcome as `Clean`, `RecoveredAfterRollback`, or
//!   `Degraded { reason }`; [`sampled_finite`] is the cheap, stride-
//!   sampled NaN/Inf scan the hot path runs per iteration without
//!   allocating.
//! - **Budgets** — [`Budget`] carries per-candidate iteration and
//!   wall-clock deadlines; a blown budget degrades the candidate to a
//!   deterministic [`penalty_score`] instead of stalling the flow.
//! - **Error taxonomy** — [`LdmoError`] is the workspace-wide typed error
//!   that replaces panics on parse/model/trace I/O paths and maps to
//!   stable nonzero CLI exit codes.
//! - **Fault injection** — [`fault`] hosts a seed-driven [`FaultPlan`]
//!   (from `LDMO_FAULTS=spec` or test construction) that injects NaN
//!   gradients, worker panics, corrupt model bytes, and slow-candidate
//!   stalls. Like `ldmo-obs`, the disabled gate is a single relaxed
//!   atomic load, so production hot paths pay nothing.
//!
//! Determinism contract: with guards enabled and no faults firing, every
//! guarded code path is bit-identical to the unguarded engine (the step
//! scale multiplier starts at exactly `1.0`, rollback never triggers on a
//! healthy trajectory, and penalties are fixed constants) — enforced by
//! `tests/determinism_golden.rs` and `tests/chaos.rs`.

pub mod budget;
pub mod error;
pub mod fault;
pub mod ops;

pub use budget::{Budget, BudgetClock};
pub use error::LdmoError;
pub use fault::{FaultPlan, FaultSpecError, ModelFault};

/// Why a computation was degraded rather than failed outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// A non-finite value (NaN/Inf) survived past the recovery paths.
    NonFinite,
    /// Divergence rollback fired more than the configured maximum.
    DivergenceLimit,
    /// The iteration or wall-clock budget ran out before convergence.
    BudgetExhausted,
    /// A pool worker panicked while computing this slot.
    WorkerPanic,
    /// A performance comparison (`ldmo trace diff`, CI perf gate) found a
    /// regression beyond its threshold: the work completed, but the result
    /// is an unhealthy verdict.
    PerfRegression,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::NonFinite => write!(f, "non-finite value"),
            DegradeReason::DivergenceLimit => write!(f, "divergence rollback limit"),
            DegradeReason::BudgetExhausted => write!(f, "budget exhausted"),
            DegradeReason::WorkerPanic => write!(f, "worker panic"),
            DegradeReason::PerfRegression => write!(f, "performance regression"),
        }
    }
}

/// Health classification of an optimization outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutcomeHealth {
    /// No guard intervened; the result is the plain engine output.
    #[default]
    Clean,
    /// Divergence rollback fired at least once but the run recovered: the
    /// result is the best finite iterate and is safe to use.
    RecoveredAfterRollback,
    /// The run could not be completed healthily; the result is the best
    /// iterate found but its score must be penalized.
    Degraded {
        /// What forced the degradation.
        reason: DegradeReason,
    },
}

impl OutcomeHealth {
    /// Whether the outcome must be penalized rather than scored normally.
    pub fn is_degraded(&self) -> bool {
        matches!(self, OutcomeHealth::Degraded { .. })
    }

    /// Whether the outcome is safe to score normally (`Clean` or
    /// `RecoveredAfterRollback`).
    pub fn is_usable(&self) -> bool {
        !self.is_degraded()
    }
}

impl std::fmt::Display for OutcomeHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutcomeHealth::Clean => write!(f, "clean"),
            OutcomeHealth::RecoveredAfterRollback => write!(f, "recovered-after-rollback"),
            OutcomeHealth::Degraded { reason } => write!(f, "degraded ({reason})"),
        }
    }
}

/// Base of the deterministic penalty scores: far above any real Eq. 9
/// score (which tops out around `1e5` on our rasters), so a degraded
/// candidate always ranks behind every healthy one.
pub const PENALTY_BASE: f64 = 1.0e12;

/// Deterministic penalty score for a degraded candidate. Each reason maps
/// to a distinct fixed value so traces and tests can tell them apart, and
/// rankings stay reproducible no matter *when* a budget fired.
pub fn penalty_score(reason: DegradeReason) -> f64 {
    let offset = match reason {
        DegradeReason::NonFinite => 1.0,
        DegradeReason::DivergenceLimit => 2.0,
        DegradeReason::BudgetExhausted => 3.0,
        DegradeReason::WorkerPanic => 4.0,
        DegradeReason::PerfRegression => 5.0,
    };
    PENALTY_BASE + offset * 1.0e9
}

/// Divergence-guard policy of one ILT session (carried by `IltConfig`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Master switch. Off reproduces the unguarded engine exactly (used by
    /// the guard-overhead bench).
    pub enabled: bool,
    /// Rollback triggers when the pre-update L2 exceeds
    /// `best_l2 * (1 + divergence_tolerance)`. The default is generous:
    /// healthy trajectories wiggle a few percent, a diverging step-size
    /// runaway overshoots by far more.
    pub divergence_tolerance: f64,
    /// Stride of the sampled NaN/Inf scans. `1` scans everything; the
    /// default keeps the scan ~1.5% of a full pass. NaN poisoning spreads
    /// through the separable convolutions, so a sampled scan catches real
    /// corruption within an iteration.
    pub scan_stride: usize,
    /// After this many rollbacks the session is marked
    /// [`DegradeReason::DivergenceLimit`] (it keeps stepping with the
    /// halved step, but the outcome is penalized).
    pub max_rollbacks: u32,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            enabled: true,
            divergence_tolerance: 0.5,
            scan_stride: 64,
            max_rollbacks: 8,
        }
    }
}

impl GuardPolicy {
    /// A policy with every guard disabled (bit-identical to the
    /// pre-guard engine; used for overhead benchmarking).
    pub fn disabled() -> Self {
        GuardPolicy {
            enabled: false,
            ..GuardPolicy::default()
        }
    }
}

/// Sampled finiteness scan: checks every `stride`-th element starting at
/// index 0 and returns `false` as soon as a NaN/Inf is sampled.
/// Allocation-free; `stride` is clamped to at least 1.
pub fn sampled_finite(values: &[f32], stride: usize) -> bool {
    values.iter().step_by(stride.max(1)).all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_classification() {
        assert!(OutcomeHealth::Clean.is_usable());
        assert!(OutcomeHealth::RecoveredAfterRollback.is_usable());
        let degraded = OutcomeHealth::Degraded {
            reason: DegradeReason::NonFinite,
        };
        assert!(degraded.is_degraded());
        assert!(!degraded.is_usable());
        assert_eq!(OutcomeHealth::default(), OutcomeHealth::Clean);
    }

    #[test]
    fn penalties_are_deterministic_and_distinct() {
        let reasons = [
            DegradeReason::NonFinite,
            DegradeReason::DivergenceLimit,
            DegradeReason::BudgetExhausted,
            DegradeReason::WorkerPanic,
            DegradeReason::PerfRegression,
        ];
        for r in reasons {
            assert_eq!(
                penalty_score(r).to_bits(),
                penalty_score(r).to_bits(),
                "penalty must be bit-stable"
            );
            assert!(penalty_score(r) > PENALTY_BASE);
        }
        let mut values: Vec<u64> = reasons
            .iter()
            .map(|&r| penalty_score(r).to_bits())
            .collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), reasons.len(), "penalties must be distinct");
    }

    #[test]
    fn sampled_scan_finds_aligned_nan() {
        let mut v = vec![0.0f32; 1000];
        assert!(sampled_finite(&v, 64));
        v[128] = f32::NAN; // stride-aligned
        assert!(!sampled_finite(&v, 64));
        // full scan always finds it
        v[128] = 0.0;
        v[129] = f32::INFINITY;
        assert!(!sampled_finite(&v, 1));
        // stride larger than the slice still checks element 0
        assert!(!sampled_finite(&[f32::NAN], 1024));
        assert!(sampled_finite(&[], 64));
    }

    #[test]
    fn guard_policy_default_is_enabled() {
        let p = GuardPolicy::default();
        assert!(p.enabled);
        assert!(!GuardPolicy::disabled().enabled);
        assert!(p.divergence_tolerance > 0.0);
        assert!(p.max_rollbacks > 0);
    }
}
