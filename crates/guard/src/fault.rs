//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes which faults to inject where; it comes from
//! the `LDMO_FAULTS` environment variable ([`init_from_env`]), a spec
//! string ([`FaultPlan::from_spec`]), a seed ([`FaultPlan::seeded`]), or
//! plain struct construction in tests. Installation is process-global and
//! gated behind a relaxed atomic ([`active`]) exactly like the `ldmo-obs`
//! collector: with no plan installed, every injection-point query is one
//! relaxed load plus a branch, so production hot paths pay nothing.
//!
//! ## Spec grammar (DESIGN.md §11)
//!
//! `LDMO_FAULTS` is a `;`-separated list of entries:
//!
//! | entry                | injection                                             |
//! |----------------------|-------------------------------------------------------|
//! | `nan-grad@K`         | poison the ILT gradients with NaN at iteration `K`    |
//! | `panic@J`            | panic inside parallel task `J` of catching fan-outs   |
//! | `truncate-model@N`   | truncate model bytes to `N` bytes on load             |
//! | `flip-model@N`       | XOR-flip model byte `N` on load                       |
//! | `nan-weight@I`       | overwrite checkpoint weight `I` with NaN on load      |
//! | `stall@J:MS`         | sleep `MS` ms inside candidate task `J`               |
//! | `drop-conn@K`        | close accepted connection `K` without a response      |
//! | `slow-io@K:MS`       | delay connection `K`'s I/O by `MS` ms                 |
//! | `seed@S`             | derive a deterministic plan from seed `S`             |
//!
//! Every injection is a pure function of the plan and the (iteration,
//! task, byte) coordinates — no randomness at fire time — so chaos tests
//! replay bit-identically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// How to corrupt model bytes on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFault {
    /// Truncate the byte stream to this length.
    Truncate {
        /// Length to truncate to.
        at: usize,
    },
    /// XOR-flip the byte at this offset (wrapped into the payload).
    FlipByte {
        /// Byte offset to flip.
        at: usize,
    },
    /// Overwrite the `index`-th stored `f32` with NaN.
    NanWeight {
        /// Weight index to poison.
        index: usize,
    },
}

/// A deterministic fault-injection plan. `Default` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Poison the ILT gradients with NaN at this iteration index.
    pub nan_grad_at: Option<usize>,
    /// Panic inside this task index of panic-catching parallel fans.
    pub panic_at_task: Option<usize>,
    /// Corrupt model bytes on the next load.
    pub corrupt_model: Option<ModelFault>,
    /// Sleep `(task, duration)` inside candidate evaluations.
    pub stall: Option<(usize, Duration)>,
    /// Close this accepted connection index without a response (network
    /// fault: the peer sees EOF/reset and must retry).
    pub drop_conn_at: Option<usize>,
    /// Delay `(connection, duration)` before serving this accepted
    /// connection's I/O (network fault: a slow link, not a slow worker).
    pub slow_io: Option<(usize, Duration)>,
}

/// Error from parsing an `LDMO_FAULTS` spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending entry.
    pub entry: String,
    /// Why it did not parse.
    pub reason: String,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault entry '{}': {}", self.entry, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

impl From<FaultSpecError> for crate::LdmoError {
    fn from(e: FaultSpecError) -> Self {
        crate::LdmoError::Fault {
            detail: e.to_string(),
        }
    }
}

fn parse_index(entry: &str, value: &str) -> Result<usize, FaultSpecError> {
    value.parse::<usize>().map_err(|_| FaultSpecError {
        entry: entry.to_owned(),
        reason: format!("'{value}' is not a non-negative integer"),
    })
}

impl FaultPlan {
    /// Parses a plan from the spec grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] naming the first malformed entry.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, value) = entry.split_once('@').ok_or_else(|| FaultSpecError {
                entry: entry.to_owned(),
                reason: "expected 'kind@value'".to_owned(),
            })?;
            match kind {
                "nan-grad" => plan.nan_grad_at = Some(parse_index(entry, value)?),
                "panic" => plan.panic_at_task = Some(parse_index(entry, value)?),
                "truncate-model" => {
                    plan.corrupt_model = Some(ModelFault::Truncate {
                        at: parse_index(entry, value)?,
                    });
                }
                "flip-model" => {
                    plan.corrupt_model = Some(ModelFault::FlipByte {
                        at: parse_index(entry, value)?,
                    });
                }
                "nan-weight" => {
                    plan.corrupt_model = Some(ModelFault::NanWeight {
                        index: parse_index(entry, value)?,
                    });
                }
                "stall" => {
                    let (task, ms) = value.split_once(':').ok_or_else(|| FaultSpecError {
                        entry: entry.to_owned(),
                        reason: "expected 'stall@TASK:MS'".to_owned(),
                    })?;
                    plan.stall = Some((
                        parse_index(entry, task)?,
                        Duration::from_millis(parse_index(entry, ms)? as u64),
                    ));
                }
                "drop-conn" => plan.drop_conn_at = Some(parse_index(entry, value)?),
                "slow-io" => {
                    let (conn, ms) = value.split_once(':').ok_or_else(|| FaultSpecError {
                        entry: entry.to_owned(),
                        reason: "expected 'slow-io@CONN:MS'".to_owned(),
                    })?;
                    plan.slow_io = Some((
                        parse_index(entry, conn)?,
                        Duration::from_millis(parse_index(entry, ms)? as u64),
                    ));
                }
                "seed" => {
                    let seeded = FaultPlan::seeded(parse_index(entry, value)? as u64);
                    plan = plan.merge(seeded);
                }
                other => {
                    return Err(FaultSpecError {
                        entry: entry.to_owned(),
                        reason: format!("unknown fault kind '{other}'"),
                    });
                }
            }
        }
        Ok(plan)
    }

    /// Derives a deterministic plan from a seed (splitmix64 over the seed
    /// picks small iteration/task/byte coordinates). The same seed always
    /// yields the same plan, so seeded chaos runs are replayable.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        FaultPlan {
            nan_grad_at: Some((next() % 8) as usize),
            panic_at_task: Some((next() % 4) as usize),
            corrupt_model: Some(ModelFault::FlipByte {
                at: (next() % 256) as usize,
            }),
            stall: Some(((next() % 4) as usize, Duration::from_millis(next() % 50))),
            // network faults are opt-in per spec: a seeded compute-chaos
            // plan must not silently start killing connections
            ..FaultPlan::default()
        }
    }

    /// Merges `other` into `self` (fields set in `other` win).
    pub fn merge(self, other: FaultPlan) -> FaultPlan {
        FaultPlan {
            nan_grad_at: other.nan_grad_at.or(self.nan_grad_at),
            panic_at_task: other.panic_at_task.or(self.panic_at_task),
            corrupt_model: other.corrupt_model.or(self.corrupt_model),
            stall: other.stall.or(self.stall),
            drop_conn_at: other.drop_conn_at.or(self.drop_conn_at),
            slow_io: other.slow_io.or(self.slow_io),
        }
    }

    /// Renders the plan back into the spec grammar (seeded plans render
    /// their expanded coordinates).
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        if let Some(k) = self.nan_grad_at {
            parts.push(format!("nan-grad@{k}"));
        }
        if let Some(j) = self.panic_at_task {
            parts.push(format!("panic@{j}"));
        }
        match self.corrupt_model {
            Some(ModelFault::Truncate { at }) => parts.push(format!("truncate-model@{at}")),
            Some(ModelFault::FlipByte { at }) => parts.push(format!("flip-model@{at}")),
            Some(ModelFault::NanWeight { index }) => parts.push(format!("nan-weight@{index}")),
            None => {}
        }
        if let Some((task, d)) = self.stall {
            parts.push(format!("stall@{task}:{}", d.as_millis()));
        }
        if let Some(k) = self.drop_conn_at {
            parts.push(format!("drop-conn@{k}"));
        }
        if let Some((conn, d)) = self.slow_io {
            parts.push(format!("slow-io@{conn}:{}", d.as_millis()));
        }
        parts.join(";")
    }
}

// ---------------------------------------------------------------------------
// The process-global installation
// ---------------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_cell() -> &'static Mutex<FaultPlan> {
    static PLAN: OnceLock<Mutex<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(FaultPlan::default()))
}

/// Whether a fault plan is installed. One relaxed atomic load — the
/// zero-cost gate every injection point checks first.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs `plan` process-globally (replacing any previous plan).
pub fn install(plan: FaultPlan) {
    *plan_cell().lock().unwrap_or_else(PoisonError::into_inner) = plan;
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the installed plan; [`active`] returns `false` afterwards.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *plan_cell().lock().unwrap_or_else(PoisonError::into_inner) = FaultPlan::default();
}

/// A copy of the installed plan (`None` when inactive).
pub fn plan() -> Option<FaultPlan> {
    if !active() {
        return None;
    }
    Some(*plan_cell().lock().unwrap_or_else(PoisonError::into_inner))
}

/// Installs a plan from `LDMO_FAULTS` when the variable is set.
///
/// # Errors
///
/// Returns [`FaultSpecError`] when the spec is malformed (nothing is
/// installed in that case).
pub fn init_from_env() -> Result<bool, FaultSpecError> {
    match std::env::var("LDMO_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(FaultPlan::from_spec(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

// ---------------------------------------------------------------------------
// Injection-point queries (each: one relaxed load when inactive)
// ---------------------------------------------------------------------------

/// Whether the NaN-gradient fault fires at `iteration`.
#[inline]
pub fn nan_grad_at(iteration: usize) -> bool {
    active() && plan().and_then(|p| p.nan_grad_at) == Some(iteration)
}

/// Panics with a recognizable payload when the worker-panic fault targets
/// `task`. Call from inside panic-catching fan-outs only.
#[inline]
pub fn maybe_panic(task: usize) {
    if active() && plan().and_then(|p| p.panic_at_task) == Some(task) {
        panic!("ldmo-guard injected worker panic at task {task}");
    }
}

/// The installed model-corruption fault, if any.
#[inline]
pub fn corrupt_model() -> Option<ModelFault> {
    if !active() {
        return None;
    }
    plan().and_then(|p| p.corrupt_model)
}

/// Sleeps the planned stall when it targets `task`.
#[inline]
pub fn apply_stall(task: usize) {
    if !active() {
        return;
    }
    if let Some((t, d)) = plan().and_then(|p| p.stall) {
        if t == task && !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Whether the connection-drop fault targets accepted connection `conn`.
/// The serving layer closes that connection without a response; the peer
/// observes EOF/reset exactly as it would for a real network drop.
#[inline]
pub fn drop_conn_at(conn: usize) -> bool {
    active() && plan().and_then(|p| p.drop_conn_at) == Some(conn)
}

/// Sleeps the planned slow-I/O delay when it targets connection `conn`.
#[inline]
pub fn apply_slow_io(conn: usize) {
    if !active() {
        return;
    }
    if let Some((c, d)) = plan().and_then(|p| p.slow_io) {
        if c == conn && !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Applies `fault` to a model byte stream in place (helper shared by the
/// load paths and the chaos tests).
pub fn corrupt_bytes(bytes: &mut Vec<u8>, fault: ModelFault) {
    match fault {
        ModelFault::Truncate { at } => bytes.truncate(at.min(bytes.len())),
        ModelFault::FlipByte { at } => {
            if !bytes.is_empty() {
                let i = at % bytes.len();
                bytes[i] ^= 0xFF;
            }
        }
        ModelFault::NanWeight { index } => {
            // layout: 8-byte magic, u32 array count, then [u32 len, f32...]
            // frames; poke the index-th f32 slot after the 12-byte header
            // (skipping each frame's length word is not required for an
            // injection — any payload float will do).
            let offset = 12 + 4 + index * 4;
            if offset + 4 <= bytes.len() {
                bytes[offset..offset + 4].copy_from_slice(&f32::NAN.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global gate is process-wide; tests that install plans
    /// serialize on this.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn spec_roundtrip() {
        let spec = "nan-grad@3;panic@1;truncate-model@16;stall@0:100;drop-conn@4;slow-io@2:25";
        let plan = FaultPlan::from_spec(spec).expect("parses");
        assert_eq!(plan.nan_grad_at, Some(3));
        assert_eq!(plan.panic_at_task, Some(1));
        assert_eq!(plan.corrupt_model, Some(ModelFault::Truncate { at: 16 }));
        assert_eq!(plan.stall, Some((0, Duration::from_millis(100))));
        assert_eq!(plan.drop_conn_at, Some(4));
        assert_eq!(plan.slow_io, Some((2, Duration::from_millis(25))));
        assert_eq!(FaultPlan::from_spec(&plan.to_spec()), Ok(plan));
    }

    #[test]
    fn network_fault_queries() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        // inactive: one relaxed load, nothing fires
        assert!(!drop_conn_at(0));
        apply_slow_io(0); // no sleep
        install(FaultPlan {
            drop_conn_at: Some(3),
            slow_io: Some((1, Duration::from_millis(1))),
            ..FaultPlan::default()
        });
        assert!(drop_conn_at(3));
        assert!(!drop_conn_at(2));
        let t = std::time::Instant::now();
        apply_slow_io(1);
        assert!(t.elapsed() >= Duration::from_millis(1));
        apply_slow_io(0); // untargeted connection: no delay injected
        clear();
    }

    #[test]
    fn seeded_plans_leave_network_faults_unset() {
        let plan = FaultPlan::seeded(42);
        assert_eq!(plan.drop_conn_at, None);
        assert_eq!(plan.slow_io, None);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "nan-grad",
            "nan-grad@x",
            "warp@3",
            "stall@5",
            "stall@a:b",
            "drop-conn@x",
            "slow-io@5",
            "slow-io@a:b",
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "accepted '{bad}'");
        }
        // empty entries are harmless
        assert_eq!(
            FaultPlan::from_spec(";;").expect("empty ok"),
            FaultPlan::default()
        );
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(FaultPlan::seeded(42), FaultPlan::seeded(42));
        assert_ne!(FaultPlan::seeded(1), FaultPlan::seeded(2));
        let via_spec = FaultPlan::from_spec("seed@42").expect("parses");
        assert_eq!(via_spec, FaultPlan::seeded(42));
    }

    #[test]
    fn gate_and_queries() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(!active());
        assert!(!nan_grad_at(0));
        assert_eq!(corrupt_model(), None);
        install(FaultPlan {
            nan_grad_at: Some(2),
            ..FaultPlan::default()
        });
        assert!(active());
        assert!(nan_grad_at(2));
        assert!(!nan_grad_at(3));
        clear();
        assert!(!active());
    }

    #[test]
    fn corrupt_bytes_variants() {
        let mut b = vec![0u8; 64];
        corrupt_bytes(&mut b, ModelFault::Truncate { at: 10 });
        assert_eq!(b.len(), 10);
        corrupt_bytes(&mut b, ModelFault::FlipByte { at: 13 });
        assert_eq!(b[3], 0xFF); // 13 % 10
        let mut c = vec![0u8; 64];
        corrupt_bytes(&mut c, ModelFault::NanWeight { index: 0 });
        let v = f32::from_le_bytes([c[16], c[17], c[18], c[19]]);
        assert!(v.is_nan());
        // out-of-range injections are no-ops, never panics
        let mut tiny = vec![0u8; 4];
        corrupt_bytes(&mut tiny, ModelFault::NanWeight { index: 100 });
        assert_eq!(tiny, vec![0u8; 4]);
        let mut empty: Vec<u8> = Vec::new();
        corrupt_bytes(&mut empty, ModelFault::FlipByte { at: 5 });
        assert!(empty.is_empty());
    }

    #[test]
    fn maybe_panic_fires_only_on_target_task() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan {
            panic_at_task: Some(7),
            ..FaultPlan::default()
        });
        maybe_panic(6); // no panic
        let caught = std::panic::catch_unwind(|| maybe_panic(7));
        clear();
        assert!(caught.is_err(), "task 7 must panic");
    }
}
