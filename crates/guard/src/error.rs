//! The workspace-wide typed error taxonomy.
//!
//! [`LdmoError`] replaces stringly-typed `Result<_, String>` plumbing and
//! `unwrap()`s on parse/model/trace I/O paths. Every variant maps to a
//! stable nonzero process exit code ([`LdmoError::exit_code`]) so shell
//! pipelines and CI can distinguish "bad input file" from "corrupt model"
//! without scraping stderr. The `From` impls that bridge the per-crate
//! error types (`ParseLayoutError`, `NnError`) live next to those types,
//! in `ldmo-layout` and `ldmo-nn`, to satisfy the orphan rule.

use crate::DegradeReason;

/// Typed top-level error of the `ldmo` workspace and CLI.
#[derive(Debug)]
pub enum LdmoError {
    /// Bad command-line usage (missing argument, unknown flag value).
    /// Exit code 2.
    Usage {
        /// What was wrong with the invocation.
        detail: String,
    },
    /// Input parsing failed (layout files, assignments). Exit code 3.
    Parse {
        /// Which input failed.
        context: String,
        /// What went wrong.
        detail: String,
    },
    /// Model (de)serialization failed: bad magic, shape mismatch, corrupt
    /// or non-finite weights. Exit code 4.
    Model {
        /// Which model artifact failed.
        context: String,
        /// What went wrong.
        detail: String,
    },
    /// Underlying file-system I/O failed. Exit code 5.
    Io {
        /// Which path or operation failed.
        context: String,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// Trace/telemetry I/O failed. Exit code 6.
    Trace {
        /// Which trace artifact failed.
        context: String,
        /// What went wrong.
        detail: String,
    },
    /// An `LDMO_FAULTS` fault spec was malformed. Exit code 7.
    Fault {
        /// What was wrong with the spec.
        detail: String,
    },
    /// A computation finished but only in degraded form, and the caller
    /// demanded a healthy result. Exit code 8.
    Degraded {
        /// What the computation was.
        context: String,
        /// Why it degraded.
        reason: DegradeReason,
    },
}

impl LdmoError {
    /// Convenience constructor for usage errors.
    pub fn usage(detail: impl Into<String>) -> Self {
        LdmoError::Usage {
            detail: detail.into(),
        }
    }

    /// The stable process exit code of this error class.
    pub fn exit_code(&self) -> u8 {
        match self {
            LdmoError::Usage { .. } => 2,
            LdmoError::Parse { .. } => 3,
            LdmoError::Model { .. } => 4,
            LdmoError::Io { .. } => 5,
            LdmoError::Trace { .. } => 6,
            LdmoError::Fault { .. } => 7,
            LdmoError::Degraded { .. } => 8,
        }
    }

    /// Replaces the error's context (the "which file/model" string) —
    /// used by the CLI to attach the user-supplied path.
    pub fn with_context(mut self, ctx: impl Into<String>) -> Self {
        let ctx = ctx.into();
        match &mut self {
            LdmoError::Parse { context, .. }
            | LdmoError::Model { context, .. }
            | LdmoError::Io { context, .. }
            | LdmoError::Trace { context, .. }
            | LdmoError::Degraded { context, .. } => *context = ctx,
            LdmoError::Usage { .. } | LdmoError::Fault { .. } => {}
        }
        self
    }
}

impl std::fmt::Display for LdmoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LdmoError::Usage { detail } => write!(f, "{detail}"),
            LdmoError::Parse { context, detail } => {
                write!(f, "cannot parse {context}: {detail}")
            }
            LdmoError::Model { context, detail } => {
                write!(f, "model error in {context}: {detail}")
            }
            LdmoError::Io { context, source } => write!(f, "I/O error on {context}: {source}"),
            LdmoError::Trace { context, detail } => {
                write!(f, "trace error on {context}: {detail}")
            }
            LdmoError::Fault { detail } => write!(f, "bad fault spec: {detail}"),
            LdmoError::Degraded { context, reason } => {
                write!(f, "{context} degraded: {reason}")
            }
        }
    }
}

impl std::error::Error for LdmoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LdmoError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LdmoError {
    fn from(source: std::io::Error) -> Self {
        LdmoError::Io {
            context: "<unknown path>".to_owned(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_nonzero() {
        let errors = [
            LdmoError::usage("x"),
            LdmoError::Parse {
                context: "a".into(),
                detail: "b".into(),
            },
            LdmoError::Model {
                context: "a".into(),
                detail: "b".into(),
            },
            LdmoError::Io {
                context: "a".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "x"),
            },
            LdmoError::Trace {
                context: "a".into(),
                detail: "b".into(),
            },
            LdmoError::Fault { detail: "b".into() },
            LdmoError::Degraded {
                context: "a".into(),
                reason: DegradeReason::BudgetExhausted,
            },
        ];
        let codes: Vec<u8> = errors.iter().map(LdmoError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8]);
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    fn with_context_replaces_the_path() {
        let e: LdmoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        let e = e.with_context("layout.lay");
        assert!(e.to_string().contains("layout.lay"), "{e}");
        // usage errors have no context slot; with_context is a no-op
        let u = LdmoError::usage("missing FILE").with_context("ignored");
        assert!(!u.to_string().contains("ignored"));
    }

    #[test]
    fn display_mentions_the_reason() {
        let e = LdmoError::Degraded {
            context: "flow".into(),
            reason: DegradeReason::WorkerPanic,
        };
        assert!(e.to_string().contains("worker panic"));
    }
}
