//! Per-candidate budgets with graceful degradation.
//!
//! A [`Budget`] bounds one candidate evaluation by iteration count and/or
//! wall-clock time. The engine checks [`BudgetClock::exhausted`] once per
//! iteration (two loads and a clock read — noise next to a 13 ms ILT
//! step) and, when the budget runs out, stops early and marks the outcome
//! [`crate::DegradeReason::BudgetExhausted`] instead of aborting the
//! process or stalling the fan-out. The scoring layers then substitute the
//! deterministic [`crate::penalty_score`], so rankings do not depend on
//! *when* a wall-clock deadline happened to fire.

use std::time::{Duration, Instant};

/// Iteration/wall-clock bounds for one candidate evaluation. The default
/// is unlimited, which keeps every existing golden bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Hard cap on iterations (on top of the engine's own
    /// `max_iterations`); `None` = no cap.
    pub max_iterations: Option<usize>,
    /// Wall-clock deadline for the whole evaluation; `None` = no deadline.
    pub max_wall: Option<Duration>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        max_iterations: None,
        max_wall: None,
    };

    /// An iteration-only budget: at most `n` iterations, no wall deadline.
    pub fn iterations(n: usize) -> Budget {
        Budget {
            max_iterations: Some(n),
            max_wall: None,
        }
    }

    /// A wall-clock-only budget of `ms` milliseconds, no iteration cap.
    pub fn wall_ms(ms: u64) -> Budget {
        Budget {
            max_iterations: None,
            max_wall: Some(Duration::from_millis(ms)),
        }
    }

    /// Whether this budget can never exhaust.
    pub fn is_unlimited(&self) -> bool {
        self.max_iterations.is_none() && self.max_wall.is_none()
    }

    /// Starts the wall clock for one evaluation.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            budget: *self,
            start: Instant::now(),
        }
    }
}

/// A running budget: the bounds plus the evaluation's start time.
#[derive(Debug, Clone, Copy)]
pub struct BudgetClock {
    budget: Budget,
    start: Instant,
}

impl BudgetClock {
    /// Whether the budget is spent after `iterations_done` iterations.
    pub fn exhausted(&self, iterations_done: usize) -> bool {
        if let Some(max) = self.budget.max_iterations {
            if iterations_done >= max {
                return true;
            }
        }
        if let Some(deadline) = self.budget.max_wall {
            if self.start.elapsed() >= deadline {
                return true;
            }
        }
        false
    }

    /// Wall-clock time since [`Budget::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let clock = Budget::UNLIMITED.start();
        assert!(Budget::UNLIMITED.is_unlimited());
        assert!(!clock.exhausted(0));
        assert!(!clock.exhausted(usize::MAX));
    }

    #[test]
    fn iteration_cap_exhausts_exactly_at_the_cap() {
        let clock = Budget {
            max_iterations: Some(3),
            max_wall: None,
        }
        .start();
        assert!(!clock.exhausted(2));
        assert!(clock.exhausted(3));
        assert!(clock.exhausted(4));
    }

    #[test]
    fn convenience_constructors_match_literals() {
        assert_eq!(
            Budget::iterations(5),
            Budget {
                max_iterations: Some(5),
                max_wall: None,
            }
        );
        assert_eq!(
            Budget::wall_ms(250),
            Budget {
                max_iterations: None,
                max_wall: Some(Duration::from_millis(250)),
            }
        );
        assert!(!Budget::iterations(0).is_unlimited());
    }

    #[test]
    fn zero_wall_deadline_exhausts_immediately() {
        let budget = Budget {
            max_iterations: None,
            max_wall: Some(Duration::ZERO),
        };
        assert!(!budget.is_unlimited());
        assert!(budget.start().exhausted(0));
    }

    #[test]
    fn generous_wall_deadline_does_not_fire() {
        let clock = Budget {
            max_iterations: None,
            max_wall: Some(Duration::from_secs(3600)),
        }
        .start();
        assert!(!clock.exhausted(1_000_000));
        assert!(clock.elapsed() < Duration::from_secs(1));
    }
}
