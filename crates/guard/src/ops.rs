//! Crash-path wiring between the robustness layer and the flight
//! recorder: the panic hook that flushes telemetry, plus dump helpers
//! the CLI and engine call on typed-error exit and on
//! divergence-rollback exhaustion.
//!
//! A crashed run should leave *analyzable* artifacts: a terminated JSONL
//! trace (not a truncated tail) and a flight-recorder dump
//! (`flight_<pid>.jsonl`, loadable by `ldmo trace summarize`). Panic
//! hooks run at panic *initiation*, before any unwind is caught, so
//! worker panics that the thread pool's catching fan-out absorbs still
//! dump — which is what makes `LDMO_FAULTS="panic@J"` chaos runs
//! observable in CI.

use crate::LdmoError;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

static HOOK: Once = Once::new();

/// Installs the telemetry panic hook (idempotent): on panic, the
/// previous hook runs first (keeping the default message and backtrace),
/// then the JSONL trace is flushed to its registered path and the flight
/// ring is dumped. The flush itself is wrapped in `catch_unwind` — a
/// second panic inside a panic hook would abort the process, and
/// telemetry must never turn a recoverable worker panic into an abort.
pub fn install_crash_hooks() {
    HOOK.call_once(|| {
        // stamp the build's git revision into the run info once, so every
        // flight-recorder dump header says what code produced it
        let rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        ldmo_obs::set_run_info("git_rev", rev);
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            prev(info);
            let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                ldmo_obs::emergency_flush("panic");
            }));
        }));
    });
}

/// Dumps the flight ring with `reason`, returning the dump path when a
/// dump was written (ring active and file creatable). Safe to call from
/// degraded-mode paths mid-run — it only reads atomics.
pub fn dump_flight(reason: &str) -> Option<std::path::PathBuf> {
    ldmo_obs::flight::dump(reason)
}

/// Flight-recorder dump for a typed-error exit: dumps the ring with the
/// error's variant name as the reason, so the dump header says *why* the
/// process died. The trace itself is the caller's job (`ldmo` already
/// flushes it on the error path) — only the ring is captured here.
pub fn dump_on_error(e: &LdmoError) -> Option<std::path::PathBuf> {
    let reason = match e {
        LdmoError::Usage { .. } => "error-usage",
        LdmoError::Parse { .. } => "error-parse",
        LdmoError::Model { .. } => "error-model",
        LdmoError::Io { .. } => "error-io",
        LdmoError::Trace { .. } => "error-trace",
        LdmoError::Fault { .. } => "error-fault",
        LdmoError::Degraded { .. } => "error-degraded",
    };
    ldmo_obs::flight::dump(reason)
}
