//! Training-set construction (the paper's Fig. 5 pipeline).
//!
//! Sampled (layout, decomposition) pairs are labeled by running the full
//! ILT optimization and computing the Eq. 9 score of the result; labels
//! are z-score normalized before regression.

use crate::sampling::{
    sample_decompositions, sample_decompositions_random, sample_layouts, sample_layouts_random,
    SamplingConfig,
};
use crate::score::{printability_score, Normalizer, ScoreWeights};
use ldmo_geom::Grid;
use ldmo_guard::{fault, penalty_score, DegradeReason};
use ldmo_ilt::{IltConfig, IltContext, OutcomeHealth};
use ldmo_layout::{Layout, MaskAssignment};
use ldmo_nn::Tensor;
use std::time::{Duration, Instant};

/// Which sampling strategy assembles the training pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerKind {
    /// The paper's engineered strategy: SIFT + k-medoids layouts,
    /// MST + 3-wise decompositions.
    Engineered,
    /// The Fig. 8 baseline: uniform layouts and uniform decompositions of
    /// matched sizes.
    Random,
}

/// Dataset-construction parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatasetConfig {
    /// ILT engine used for labeling (full 29-iteration runs, `Run` policy).
    pub ilt: IltConfig,
    /// Eq. 9 weights.
    pub weights: ScoreWeights,
    /// Wall-clock deadline for labeling one sample. A sample that blows
    /// it keeps its decomposition image but is labeled with the
    /// deterministic [`ldmo_guard::penalty_score`] instead of stalling the
    /// fan-out. `None` (the default) keeps labeling fully deterministic.
    pub candidate_deadline: Option<Duration>,
}

/// A labeled training set of decomposition images.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Decomposition images at the litho raster scale.
    pub images: Vec<Grid>,
    /// Raw Eq. 9 scores.
    pub raw_scores: Vec<f64>,
    /// Z-score-normalized labels.
    pub labels: Vec<f32>,
    /// The fitted normalizer (needed to invert predictions).
    pub normalizer: Normalizer,
    /// The `(layout index, assignment)` provenance of each sample.
    pub provenance: Vec<(usize, MaskAssignment)>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Returns the dataset augmented with the symmetries of the optical
    /// model (horizontal/vertical mirror and 90° rotation): the kernels are
    /// radially symmetric, so a transformed decomposition image has exactly
    /// the same post-ILT printability score as the original — four labeled
    /// samples for the labeling cost of one. The paper's CNN relies on the
    /// analogous invariances ("recognize typical pattern distribution,
    /// ignore slight layout movement and rotation").
    pub fn augmented(&self) -> Dataset {
        let mut images = Vec::with_capacity(self.images.len() * 4);
        let mut raw_scores = Vec::with_capacity(self.raw_scores.len() * 4);
        let mut provenance = Vec::with_capacity(self.provenance.len() * 4);
        for (i, img) in self.images.iter().enumerate() {
            let variants = [
                img.clone(),
                img.flip_horizontal(),
                img.flip_vertical(),
                img.rotate90(),
            ];
            for v in variants {
                images.push(v);
                raw_scores.push(self.raw_scores[i]);
                provenance.push(self.provenance[i].clone());
            }
        }
        let labels = raw_scores
            .iter()
            .map(|&s| self.normalizer.apply(s) as f32)
            .collect();
        Dataset {
            images,
            raw_scores,
            labels,
            normalizer: self.normalizer,
            provenance,
        }
    }

    /// Builds an input/label mini-batch from sample `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of range.
    pub fn batch(&self, indices: &[usize], input_size: usize) -> (Tensor, Tensor) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let grids: Vec<Grid> = indices.iter().map(|&i| self.images[i].clone()).collect();
        let inputs = crate::predictor::grids_to_batch(&grids, input_size);
        let labels = Tensor::from_vec(
            vec![indices.len(), 1],
            indices.iter().map(|&i| self.labels[i]).collect(),
        );
        (inputs, labels)
    }
}

/// Assembles and labels a training set from `layouts` with the chosen
/// sampling strategy, fanning the labeling runs across the global
/// [`ldmo_par`] pool. This is the expensive step: every sample costs one
/// full ILT run.
///
/// # Panics
///
/// Panics if `layouts` is empty or sampling selects no pairs.
pub fn build_dataset(
    layouts: &[Layout],
    kind: &SamplerKind,
    scfg: &SamplingConfig,
    dcfg: &DatasetConfig,
) -> Dataset {
    build_dataset_pooled(layouts, kind, scfg, dcfg, &ldmo_par::global())
}

/// [`build_dataset`] on an explicit pool (bit-identical for any pool size;
/// `threads == 1` is the exact serial labeling loop).
///
/// # Panics
///
/// Panics if `layouts` is empty or sampling selects no pairs.
pub fn build_dataset_pooled(
    layouts: &[Layout],
    kind: &SamplerKind,
    scfg: &SamplingConfig,
    dcfg: &DatasetConfig,
    pool: &ldmo_par::ThreadPool,
) -> Dataset {
    assert!(!layouts.is_empty(), "need layouts to sample from");
    let mut span = ldmo_obs::span("dataset.build");
    let selected = match kind {
        SamplerKind::Engineered => sample_layouts(layouts, scfg),
        SamplerKind::Random => {
            // match the engineered selection size for a fair Fig. 8
            let target = sample_layouts(layouts, scfg).len();
            sample_layouts_random(layouts, target, scfg.seed ^ 0xFACE)
        }
    };
    // flatten the deterministic sampling into one work list so the
    // expensive labeling runs fan out over independent (layout, decomp)
    // pairs; output stays in the serial loop's order
    let mut pairs: Vec<(usize, MaskAssignment)> = Vec::new();
    for &li in &selected {
        let layout = &layouts[li];
        let decomps = match kind {
            SamplerKind::Engineered => sample_decompositions(layout, scfg),
            SamplerKind::Random => {
                let target = sample_decompositions(layout, scfg).len();
                sample_decompositions_random(layout, target, scfg.seed ^ li as u64)
            }
        };
        pairs.extend(decomps.into_iter().map(|d| (li, d)));
    }
    span.set("samples", pairs.len() as f64);
    span.set("pool", pool.threads() as f64);
    // one kernel-bank expansion serves every labeling run; each worker
    // recycles one IltScratch across its chunk of samples
    let ctx = IltContext::new(&dcfg.ilt);
    let indexed: Vec<(usize, &(usize, MaskAssignment))> = pairs.iter().enumerate().collect();
    // the catching fan isolates a panicking sample to its own slot; its
    // image is rebuilt on the calling thread below and its label replaced
    // by the deterministic worker-panic penalty
    let labeled = pool.par_map_init_catching(
        &indexed,
        || None::<ldmo_ilt::IltScratch>,
        |scratch, &(task, (li, d))| {
            // the stall injection simulates a slow sample, so it must
            // land inside the timed window
            let started = Instant::now();
            fault::apply_stall(task);
            fault::maybe_panic(task);
            let layout = &layouts[*li];
            let outcome = ctx.optimize_reusing(layout, d, scratch);
            let score = match outcome.health {
                OutcomeHealth::Degraded { reason } => {
                    ldmo_obs::incr("guard.sample_penalized");
                    penalty_score(reason)
                }
                _ if dcfg
                    .candidate_deadline
                    .is_some_and(|dl| started.elapsed() > dl) =>
                {
                    ldmo_obs::incr("guard.sample_penalized");
                    penalty_score(DegradeReason::BudgetExhausted)
                }
                _ => printability_score(&outcome, &dcfg.weights),
            };
            let img = layout
                .decomposition_image(d, dcfg.ilt.litho.nm_per_px)
                .expect("sampled assignments are valid");
            (img, score)
        },
    );
    let mut images = Vec::with_capacity(labeled.len());
    let mut raw_scores = Vec::with_capacity(labeled.len());
    for (slot, (li, d)) in labeled.into_iter().zip(&pairs) {
        match slot {
            Ok((img, score)) => {
                images.push(img);
                raw_scores.push(score);
            }
            Err(_) => {
                ldmo_obs::incr("guard.sample_penalized");
                let img = layouts[*li]
                    .decomposition_image(d, dcfg.ilt.litho.nm_per_px)
                    .expect("sampled assignments are valid");
                images.push(img);
                raw_scores.push(penalty_score(DegradeReason::WorkerPanic));
            }
        }
    }
    let provenance = pairs;
    assert!(!raw_scores.is_empty(), "sampling produced no pairs");
    let normalizer = Normalizer::fit(&raw_scores);
    let labels = raw_scores
        .iter()
        .map(|&s| normalizer.apply(s) as f32)
        .collect();
    Dataset {
        images,
        raw_scores,
        labels,
        normalizer,
        provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    /// Tiny, fast configuration for unit tests: 4 ILT iterations.
    fn fast_dcfg() -> DatasetConfig {
        let mut cfg = DatasetConfig::default();
        cfg.ilt.max_iterations = 4;
        cfg
    }

    fn fast_scfg() -> SamplingConfig {
        SamplingConfig {
            clusters: 2,
            per_cluster: 1,
            max_per_layout: 3,
            ..SamplingConfig::default()
        }
    }

    fn tiny_layouts() -> Vec<Layout> {
        let win = Rect::new(0, 0, 448, 448);
        vec![
            Layout::new(
                win,
                vec![Rect::square(60, 60, 64), Rect::square(190, 60, 64)],
            ),
            Layout::new(
                win,
                vec![Rect::square(60, 60, 64), Rect::square(60, 200, 64)],
            ),
            Layout::new(
                win,
                vec![
                    Rect::square(60, 60, 64),
                    Rect::square(190, 60, 64),
                    Rect::square(60, 190, 64),
                ],
            ),
        ]
    }

    #[test]
    fn engineered_dataset_builds_and_normalizes() {
        let layouts = tiny_layouts();
        let ds = build_dataset(
            &layouts,
            &SamplerKind::Engineered,
            &fast_scfg(),
            &fast_dcfg(),
        );
        assert!(!ds.is_empty());
        assert_eq!(ds.images.len(), ds.labels.len());
        assert_eq!(ds.images.len(), ds.provenance.len());
        // z-scored labels have ~zero mean
        let mean: f32 = ds.labels.iter().sum::<f32>() / ds.labels.len() as f32;
        assert!(mean.abs() < 1e-3, "label mean {mean}");
    }

    #[test]
    fn random_dataset_differs_from_engineered() {
        let layouts = tiny_layouts();
        let a = build_dataset(
            &layouts,
            &SamplerKind::Engineered,
            &fast_scfg(),
            &fast_dcfg(),
        );
        let b = build_dataset(&layouts, &SamplerKind::Random, &fast_scfg(), &fast_dcfg());
        assert!(!b.is_empty());
        // strategies need not match sample-for-sample
        assert!(a.provenance != b.provenance || a.raw_scores != b.raw_scores);
    }

    #[test]
    fn augmentation_quadruples_and_preserves_labels() {
        let layouts = tiny_layouts();
        let ds = build_dataset(
            &layouts,
            &SamplerKind::Engineered,
            &fast_scfg(),
            &fast_dcfg(),
        );
        let aug = ds.augmented();
        assert_eq!(aug.len(), ds.len() * 4);
        // each group of four shares the original's label
        for i in 0..ds.len() {
            for k in 0..4 {
                assert_eq!(aug.labels[i * 4 + k], ds.labels[i]);
                assert_eq!(aug.provenance[i * 4 + k], ds.provenance[i]);
            }
            // the first variant is the untransformed image
            assert_eq!(aug.images[i * 4], ds.images[i]);
        }
    }

    #[test]
    fn batch_shapes() {
        let layouts = tiny_layouts();
        let ds = build_dataset(
            &layouts,
            &SamplerKind::Engineered,
            &fast_scfg(),
            &fast_dcfg(),
        );
        let idx: Vec<usize> = (0..ds.len().min(2)).collect();
        let (x, y) = ds.batch(&idx, 56);
        assert_eq!(x.shape(), &[idx.len(), 1, 56, 56]);
        assert_eq!(y.shape(), &[idx.len(), 1]);
    }
}
