#![warn(missing_docs)]
//! # ldmo-core — the DAC 2020 LDMO framework
//!
//! The paper's contribution: a deep-learning-driven flow that couples
//! layout decomposition with mask optimization (Fig. 2).
//!
//! ```text
//!  input layout ──► decomposition generation (MST + n-wise)
//!                    │ candidates
//!                    ▼
//!                  printability prediction (CNN) ──► best candidate
//!                    ▲                                │
//!                    │ reselect on print violation    ▼
//!                    └───────────────────── ILT optimization ──► masks
//! ```
//!
//! Modules, mapped to the paper:
//!
//! - [`score`] — Eq. 9 printability score (`α=1, β=3500, γ=8000`) and
//!   z-score label normalization;
//! - [`predictor`] — the CNN printability predictor (Section III-B);
//! - [`sampling`] — layout sampling via SIFT + k-medoids (Section IV-A)
//!   and decomposition sampling via MST + 3-wise arrays (Section IV-B),
//!   plus the random-sampling ablation of Fig. 8;
//! - [`dataset`] — training-set construction with ILT labeling (Fig. 5);
//! - [`trainer`] — Adam + MAE training loop (Section IV-C);
//! - [`flow`] — the end-to-end [`flow::LdmoFlow`] with selection-strategy
//!   ablations and the violation-triggered reselection loop;
//! - [`baselines`] — the comparison flows of Table I: the ICCAD'17 unified
//!   framework with greedy pruning, and two two-stage
//!   decompose-then-optimize flows.
//!
//! ```no_run
//! use ldmo_layout::cells;
//! use ldmo_core::flow::{FlowConfig, LdmoFlow, SelectionStrategy};
//!
//! let layout = cells::cell("BUF_X1").expect("known cell");
//! let mut flow = LdmoFlow::new(FlowConfig::default(), SelectionStrategy::LithoProxy);
//! let result = flow.run(&layout);
//! println!("EPE violations: {}", result.outcome.epe_violations());
//! ```

pub mod baselines;
pub mod dataset;
pub mod flow;
pub mod predictor;
pub mod sampling;
pub mod score;
pub mod trainer;
