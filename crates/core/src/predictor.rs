//! The CNN printability predictor (paper Section III-B).
//!
//! Candidates are rendered as grayscale decomposition images (mask 0 at
//! level 1.0, mask 1 at level 0.5), canonicalized against the dual-mask
//! symmetry, resized to the network input, and scored. The module also
//! implements the paper's rejected-candidate memory: "we mark the previous
//! outputs and when facing the same decomposition, we drop it to avoid
//! giving the same output".

use ldmo_decomp::canonical::canonicalize;
use ldmo_geom::Grid;
use ldmo_layout::Layout;
use ldmo_nn::resnet::{resnet_lite_config, ResNetConfig, ResNetRegressor};
use ldmo_nn::{serialize, NnError, Tensor};
use std::collections::HashSet;
use std::path::Path;

/// The printability predictor: a ResNet regressor plus the image pipeline.
pub struct PrintabilityPredictor {
    net: ResNetRegressor,
    /// Raster scale used when rendering decomposition images (must match
    /// training).
    nm_per_px: f64,
    rejected: HashSet<Vec<u8>>,
}

impl PrintabilityPredictor {
    /// Creates an untrained predictor with the given architecture.
    pub fn new(config: ResNetConfig, nm_per_px: f64) -> Self {
        PrintabilityPredictor {
            net: ResNetRegressor::new(config),
            nm_per_px,
            rejected: HashSet::new(),
        }
    }

    /// The default CPU-scale predictor (ResNet-lite at 56×56).
    pub fn lite(seed: u64) -> Self {
        PrintabilityPredictor::new(resnet_lite_config(seed), 2.0)
    }

    /// The underlying network (for training).
    pub fn network_mut(&mut self) -> &mut ResNetRegressor {
        &mut self.net
    }

    /// Renders a candidate into the network's input tensor: grayscale
    /// decomposition image at `nm_per_px`, average-pooled down to the
    /// network input size.
    ///
    /// # Panics
    ///
    /// Panics if the rasterized image is not an integer multiple of the
    /// network input size (e.g. a non-448 nm window with the lite net).
    pub fn render_input(&self, layout: &Layout, assignment: &[u8]) -> Tensor {
        let mut canonical = assignment.to_vec();
        canonicalize(&mut canonical);
        let img = layout
            .decomposition_image(&canonical, self.nm_per_px)
            .expect("assignment matches layout");
        grid_to_input(&img, self.net.config().input_size)
    }

    /// Predicted (z-score) printability score of one candidate — lower is
    /// better.
    pub fn predict(&mut self, layout: &Layout, assignment: &[u8]) -> f32 {
        let input = self.render_input(layout, assignment);
        self.net.predict(&input)[0]
    }

    /// Scores all candidates and returns indices sorted best-first.
    pub fn rank(&mut self, layout: &Layout, candidates: &[Vec<u8>]) -> Vec<usize> {
        let mut scored: Vec<(usize, f32)> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.predict(layout, c)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Selects the best candidate that has not been rejected before.
    /// Returns `None` when every candidate is rejected.
    pub fn select<'a>(
        &mut self,
        layout: &Layout,
        candidates: &'a [Vec<u8>],
    ) -> Option<&'a Vec<u8>> {
        self.rank(layout, candidates)
            .into_iter()
            .map(|i| &candidates[i])
            .find(|c| !self.is_rejected(c))
    }

    /// Marks a candidate as rejected (it caused print violations).
    pub fn reject(&mut self, assignment: &[u8]) {
        let mut canonical = assignment.to_vec();
        canonicalize(&mut canonical);
        self.rejected.insert(canonical);
    }

    /// Whether a candidate was previously rejected.
    pub fn is_rejected(&self, assignment: &[u8]) -> bool {
        let mut canonical = assignment.to_vec();
        canonicalize(&mut canonical);
        self.rejected.contains(&canonical)
    }

    /// Clears the rejected-candidate memory (between layouts).
    pub fn clear_rejections(&mut self) {
        self.rejected.clear();
    }

    /// Saves network weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on I/O failure.
    pub fn save(&mut self, path: impl AsRef<Path>) -> Result<(), NnError> {
        serialize::save(&mut self.net, path)
    }

    /// Loads network weights saved by [`PrintabilityPredictor::save`] into
    /// this predictor's architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the checkpoint was saved
    /// from a different architecture, or [`NnError::Io`] on I/O failure.
    pub fn load(&mut self, path: impl AsRef<Path>) -> Result<(), NnError> {
        serialize::load(&mut self.net, path)
    }
}

/// Converts a raster grid to a `[1, 1, S, S]` network input, average-pooling
/// by the integral factor between the grid and the network size.
///
/// # Panics
///
/// Panics if the grid is not square or not an integer multiple of `size`.
pub fn grid_to_input(img: &Grid, size: usize) -> Tensor {
    let (w, h) = img.shape();
    assert_eq!(w, h, "decomposition images must be square");
    assert_eq!(w % size, 0, "grid size {w} is not a multiple of {size}");
    let factor = w / size;
    let small = if factor > 1 {
        img.downsample_avg(factor)
    } else {
        img.clone()
    };
    Tensor::from_vec(vec![1, 1, size, size], small.into_vec())
}

/// Stacks multiple grids into one `[N, 1, S, S]` batch.
///
/// # Panics
///
/// Panics if `grids` is empty or any grid mismatches (see
/// [`grid_to_input`]).
pub fn grids_to_batch(grids: &[Grid], size: usize) -> Tensor {
    assert!(!grids.is_empty(), "batch must be non-empty");
    let mut data = Vec::with_capacity(grids.len() * size * size);
    for g in grids {
        data.extend_from_slice(grid_to_input(g, size).as_slice());
    }
    Tensor::from_vec(vec![grids.len(), 1, size, size], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn layout() -> Layout {
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(60, 60, 64), Rect::square(200, 60, 64)],
        )
    }

    #[test]
    fn render_shape_matches_network() {
        let predictor = PrintabilityPredictor::lite(1);
        let input = predictor.render_input(&layout(), &[0, 1]);
        assert_eq!(input.shape(), &[1, 1, 56, 56]);
    }

    #[test]
    fn dual_assignments_render_identically() {
        let predictor = PrintabilityPredictor::lite(1);
        let a = predictor.render_input(&layout(), &[0, 1]);
        let b = predictor.render_input(&layout(), &[1, 0]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn predict_is_deterministic() {
        let mut predictor = PrintabilityPredictor::lite(3);
        let s1 = predictor.predict(&layout(), &[0, 1]);
        let s2 = predictor.predict(&layout(), &[0, 1]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn rejection_memory_respects_duality() {
        let mut predictor = PrintabilityPredictor::lite(1);
        predictor.reject(&[0, 1]);
        assert!(predictor.is_rejected(&[0, 1]));
        assert!(predictor.is_rejected(&[1, 0]), "dual must be rejected too");
        assert!(!predictor.is_rejected(&[0, 0]));
        predictor.clear_rejections();
        assert!(!predictor.is_rejected(&[0, 1]));
    }

    #[test]
    fn select_skips_rejected() {
        let mut predictor = PrintabilityPredictor::lite(5);
        let candidates = vec![vec![0u8, 1], vec![0u8, 0]];
        let first = predictor
            .select(&layout(), &candidates)
            .expect("one available")
            .clone();
        predictor.reject(&first);
        let second = predictor
            .select(&layout(), &candidates)
            .expect("one left")
            .clone();
        assert_ne!(first, second);
        predictor.reject(&second);
        assert!(predictor.select(&layout(), &candidates).is_none());
    }

    #[test]
    fn batch_stacks_inputs() {
        let g1 = Grid::filled(112, 112, 0.0);
        let g2 = Grid::filled(112, 112, 1.0);
        let batch = grids_to_batch(&[g1, g2], 56);
        assert_eq!(batch.shape(), &[2, 1, 56, 56]);
        assert_eq!(batch.as_slice()[0], 0.0);
        assert_eq!(batch.as_slice()[56 * 56], 1.0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_integral_downsample_rejected() {
        let g = Grid::filled(100, 100, 0.0);
        let _ = grid_to_input(&g, 56);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("ldmo_predictor_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("weights.bin");
        let mut a = PrintabilityPredictor::lite(17);
        let before = a.predict(&layout(), &[0, 1]);
        a.save(&path).expect("save");
        let mut b = PrintabilityPredictor::lite(99);
        b.load(&path).expect("load");
        let after = b.predict(&layout(), &[0, 1]);
        assert_eq!(before, after);
        let _ = std::fs::remove_file(&path);
    }
}
