//! Training-set sampling strategies (paper Section IV).
//!
//! - **Layout sampling** (IV-A): SIFT features per layout → Algorithm 2
//!   distance matrix → k-medoids → a few layouts per cluster. This covers
//!   the layout space with far fewer simulations than uniform sampling.
//! - **Decomposition sampling** (IV-B): patterns closer than `nmin` are
//!   `SP` (MST + component flips), everything else is a direct factor, and
//!   one *three-wise* covering array generates the decompositions to label
//!   — "any sub-region with three patterns, the training set contains the
//!   complete combination of them".
//! - **Random sampling**: the Fig. 8 ablation baseline.

use ldmo_decomp::canonical::canonical_dedup;
use ldmo_decomp::covering::covering_array;
use ldmo_decomp::{minimum_spanning_forest, two_color_forest, ConflictGraph};
use ldmo_layout::classify::{pattern_sets, ClassifyConfig};
use ldmo_layout::{Layout, MaskAssignment};
use ldmo_vision::kmedoids::kmedoids;
use ldmo_vision::sift::{extract_features, SiftConfig};
use ldmo_vision::similarity::{distance_matrix, SimilarityConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the sampling pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingConfig {
    /// Number of k-medoids clusters (the paper's `m`; 50 at paper scale).
    pub clusters: usize,
    /// Layouts drawn per cluster (the paper draws 5).
    pub per_cluster: usize,
    /// SIFT extraction parameters.
    pub sift: SiftConfig,
    /// Algorithm 2 parameters (`Dth`, `c`).
    pub similarity: SimilarityConfig,
    /// Raster scale for feature images, nm per pixel. A coarser scale than
    /// the litho raster (4 nm/px) keeps the SIFT pass fast.
    pub feature_nm_per_px: f64,
    /// `nmin` used for the SP/non-SP split of Section IV-B.
    pub nmin: f64,
    /// Covering strength of the decomposition-sampling array (paper: 3).
    pub strength: usize,
    /// Cap on decompositions sampled per layout (0 = unlimited).
    pub max_per_layout: usize,
    /// RNG seed for the per-cluster draws.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            clusters: 8,
            per_cluster: 3,
            sift: SiftConfig::default(),
            similarity: SimilarityConfig::default(),
            feature_nm_per_px: 4.0,
            nmin: ClassifyConfig::default().nmin,
            strength: 3,
            max_per_layout: 16,
            seed: 0,
        }
    }
}

/// Layout sampling (Section IV-A): returns indices of the selected
/// representative layouts.
///
/// # Panics
///
/// Panics if `layouts` is empty.
pub fn sample_layouts(layouts: &[Layout], cfg: &SamplingConfig) -> Vec<usize> {
    assert!(!layouts.is_empty(), "need at least one layout");
    let features: Vec<_> = layouts
        .iter()
        .map(|l| extract_features(&l.rasterize_target(cfg.feature_nm_per_px), &cfg.sift))
        .collect();
    let dist = distance_matrix(&features, &cfg.similarity);
    let clustering = kmedoids(&dist, cfg.clusters.min(layouts.len()), cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A17);
    let mut selected = Vec::new();
    for c in 0..clustering.medoids.len() {
        let mut members = clustering.members(c);
        members.shuffle(&mut rng);
        selected.extend(members.into_iter().take(cfg.per_cluster));
    }
    selected.sort_unstable();
    selected.dedup();
    selected
}

/// Random layout sampling (the Fig. 8 baseline): a uniform draw of the same
/// size the engineered strategy would produce.
pub fn sample_layouts_random(layouts: &[Layout], count: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..layouts.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(count.min(layouts.len()));
    idx.sort_unstable();
    idx
}

/// Decomposition sampling (Section IV-B): MST over sub-`nmin` patterns plus
/// one strength-3 covering array over (component flips ∪ all other
/// patterns).
pub fn sample_decompositions(layout: &Layout, cfg: &SamplingConfig) -> Vec<MaskAssignment> {
    // IV-B classification: d <= nmin -> SP; everything else is one factor
    let classify = ClassifyConfig {
        nmin: cfg.nmin,
        nmax: cfg.nmin, // collapses the VP band: non-SP patterns are "NP"
    };
    let sets = pattern_sets(layout, &classify);
    let graph = ConflictGraph::build(layout, &sets.sp, cfg.nmin);
    let forest = minimum_spanning_forest(&graph);
    let (colors, component) = two_color_forest(&forest);
    let free: Vec<usize> = sets.vp.iter().chain(&sets.np).copied().collect();
    let k = forest.component_count + free.len();
    let arrs = covering_array(k, cfg.strength);
    let n = layout.len();
    let mut rows = Vec::with_capacity(arrs.len());
    for row in &arrs {
        let mut assignment = vec![0u8; n];
        for &p in &sets.sp {
            assignment[p] = colors[&p] ^ row[component[&p]];
        }
        for (i, &p) in free.iter().enumerate() {
            assignment[p] = row[forest.component_count + i];
        }
        rows.push(assignment);
    }
    let mut out = canonical_dedup(rows);
    if cfg.max_per_layout > 0 && out.len() > cfg.max_per_layout {
        out.truncate(cfg.max_per_layout);
    }
    out
}

/// Random decomposition sampling (the Fig. 8 baseline): uniform random
/// assignments, canonicalized and deduplicated.
pub fn sample_decompositions_random(
    layout: &Layout,
    count: usize,
    seed: u64,
) -> Vec<MaskAssignment> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layout.len();
    let mut rows = Vec::with_capacity(count * 2);
    // a handful of retries covers collisions after canonicalization
    for _ in 0..count * 4 {
        let row: MaskAssignment = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        rows.push(row);
    }
    let mut out = canonical_dedup(rows);
    out.truncate(count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;
    use ldmo_layout::generate::{GeneratorConfig, LayoutGenerator};

    fn small_cfg() -> SamplingConfig {
        SamplingConfig {
            clusters: 3,
            per_cluster: 2,
            ..SamplingConfig::default()
        }
    }

    #[test]
    fn layout_sampling_selects_subset_across_clusters() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 21);
        let layouts = gen.generate_dataset(12);
        let picked = sample_layouts(&layouts, &small_cfg());
        assert!(!picked.is_empty());
        assert!(picked.len() <= 6);
        assert!(picked.iter().all(|&i| i < layouts.len()));
        // no duplicates
        let mut sorted = picked.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), picked.len());
    }

    #[test]
    fn layout_sampling_is_deterministic() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 22);
        let layouts = gen.generate_dataset(8);
        assert_eq!(
            sample_layouts(&layouts, &small_cfg()),
            sample_layouts(&layouts, &small_cfg())
        );
    }

    #[test]
    fn random_layout_sampling_sizes() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 23);
        let layouts = gen.generate_dataset(10);
        let picked = sample_layouts_random(&layouts, 4, 9);
        assert_eq!(picked.len(), 4);
        assert_ne!(picked, sample_layouts_random(&layouts, 4, 10));
    }

    #[test]
    fn decomposition_sampling_covers_sp_structure() {
        // three contacts in a chain (gaps 70): the MST forces alternation,
        // so every sampled decomposition separates the chain
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(40, 60, 64),
                Rect::square(174, 60, 64),
                Rect::square(308, 60, 64),
            ],
        );
        let decomps = sample_decompositions(&layout, &small_cfg());
        assert!(!decomps.is_empty());
        for d in &decomps {
            assert_ne!(d[0], d[1]);
            assert_ne!(d[1], d[2]);
            assert_eq!(d[0], 0, "canonical");
        }
    }

    #[test]
    fn decomposition_sampling_explores_free_patterns() {
        // one SP pair plus one distant pattern: the free pattern must
        // appear on both masks across samples
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(40, 60, 64),
                Rect::square(174, 60, 64),
                Rect::square(300, 320, 64),
            ],
        );
        let decomps = sample_decompositions(&layout, &small_cfg());
        let values: std::collections::HashSet<u8> = decomps.iter().map(|d| d[2]).collect();
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn max_per_layout_cap_respected() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 31);
        let layout = gen.generate_dataset(1).remove(0);
        let cfg = SamplingConfig {
            max_per_layout: 3,
            ..small_cfg()
        };
        assert!(sample_decompositions(&layout, &cfg).len() <= 3);
    }

    #[test]
    fn random_decompositions_are_canonical_unique() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 33);
        let layout = gen.generate_with_count(5).expect("fits");
        let decomps = sample_decompositions_random(&layout, 8, 3);
        assert!(!decomps.is_empty() && decomps.len() <= 8);
        let set: std::collections::HashSet<_> = decomps.iter().cloned().collect();
        assert_eq!(set.len(), decomps.len());
        assert!(decomps.iter().all(|d| d[0] == 0));
    }
}
