//! The printability score of Eq. 9 and z-score label normalization.
//!
//! `score = α · L2 + β · #EPE + γ · #Violation` with the paper's weights
//! `α = 1`, `β = 3500`, `γ = 8000`. Lower is better. Z-score
//! regularization makes labels comparable across layouts before the CNN
//! regresses them.

use ldmo_ilt::IltOutcome;

/// Eq. 9 weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// L2-error weight `α` (paper: 1).
    pub alpha: f64,
    /// EPE-violation weight `β` (paper: 3500).
    pub beta: f64,
    /// Print-violation weight `γ` (paper: 8000).
    pub gamma: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        ScoreWeights {
            alpha: 1.0,
            beta: 3500.0,
            gamma: 8000.0,
        }
    }
}

/// Eq. 9: the raw (unnormalized) printability score of an ILT outcome.
pub fn printability_score(outcome: &IltOutcome, w: &ScoreWeights) -> f64 {
    w.alpha * outcome.l2
        + w.beta * outcome.epe_violations() as f64
        + w.gamma * outcome.violations.count() as f64
}

/// Z-score normalizer fitted on a label population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    /// Population mean.
    pub mean: f64,
    /// Population standard deviation (floored at a tiny epsilon).
    pub std: f64,
}

impl Normalizer {
    /// Fits mean/std on `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn fit(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit a normalizer on no data");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Normalizer {
            mean,
            std: var.sqrt().max(1e-9),
        }
    }

    /// Normalizes one value.
    pub fn apply(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Inverts the normalization.
    pub fn invert(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;
    use ldmo_ilt::{evaluate_unoptimized, IltConfig};
    use ldmo_layout::Layout;

    #[test]
    fn weights_follow_the_paper() {
        let w = ScoreWeights::default();
        assert_eq!((w.alpha, w.beta, w.gamma), (1.0, 3500.0, 8000.0));
    }

    #[test]
    fn score_combines_all_three_terms() {
        // an unoptimized empty-ish outcome gives a concrete IltOutcome to
        // score; verify the arithmetic against its own components
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(100, 100, 64), Rect::square(300, 300, 64)],
        );
        let out = evaluate_unoptimized(&layout, &[0, 1], &IltConfig::default());
        let w = ScoreWeights::default();
        let s = printability_score(&out, &w);
        let expected =
            out.l2 + 3500.0 * out.epe_violations() as f64 + 8000.0 * out.violations.count() as f64;
        assert!((s - expected).abs() < 1e-9);
        assert!(s > 0.0);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let vals = [2.0, 4.0, 6.0, 8.0];
        let n = Normalizer::fit(&vals);
        let z: Vec<f64> = vals.iter().map(|&v| n.apply(v)).collect();
        let mean: f64 = z.iter().sum::<f64>() / 4.0;
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalizer_roundtrip() {
        let n = Normalizer::fit(&[1.0, 2.0, 10.0]);
        for v in [0.0, 3.5, -2.0] {
            assert!((n.invert(n.apply(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_labels_do_not_divide_by_zero() {
        let n = Normalizer::fit(&[5.0, 5.0, 5.0]);
        assert!(n.apply(5.0).is_finite());
        assert_eq!(n.apply(5.0), 0.0);
    }
}
