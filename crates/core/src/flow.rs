//! The end-to-end LDMO flow (paper Fig. 2).
//!
//! `input layout → decomposition generation → printability prediction →
//! ILT optimization → optimized masks`, with the feedback edge: when a
//! print violation is detected during ILT, the offending candidate is
//! marked rejected and the next-best candidate is selected.

use crate::predictor::PrintabilityPredictor;
use crate::score::{printability_score, ScoreWeights};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_guard::{fault, penalty_score, DegradeReason};
use ldmo_ilt::{IltConfig, IltContext, IltOutcome, ViolationPolicy};
use ldmo_layout::{Layout, MaskAssignment};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// How the flow selects among decomposition candidates — the paper's CNN
/// plus the ablation strategies of DESIGN.md §4.
pub enum SelectionStrategy {
    /// The paper's method: a trained CNN printability predictor.
    Cnn(Box<PrintabilityPredictor>),
    /// Rank candidates by the Eq. 9 score of their *unoptimized* print —
    /// a cheap lithography proxy (one forward simulation per candidate,
    /// no ILT).
    LithoProxy,
    /// Uniform random selection.
    Random {
        /// Selection seed.
        seed: u64,
    },
    /// Take candidates in generation order.
    First,
}

impl std::fmt::Debug for SelectionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionStrategy::Cnn(_) => write!(f, "Cnn(..)"),
            SelectionStrategy::LithoProxy => write!(f, "LithoProxy"),
            SelectionStrategy::Random { seed } => write!(f, "Random {{ seed: {seed} }}"),
            SelectionStrategy::First => write!(f, "First"),
        }
    }
}

/// Flow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Candidate generation (Algorithm 1).
    pub decomp: DecompConfig,
    /// ILT engine; the flow forces [`ViolationPolicy::AbortOnViolation`]
    /// during candidate attempts.
    pub ilt: IltConfig,
    /// Eq. 9 weights used by the `LithoProxy` strategy.
    pub weights: ScoreWeights,
    /// Maximum candidates attempted before giving up and completing the
    /// best-ranked candidate without the abort policy.
    pub max_attempts: usize,
    /// Wall-clock deadline for ranking one candidate. A candidate that
    /// blows it is not scored — it receives the deterministic
    /// [`ldmo_guard::penalty_score`] for
    /// [`DegradeReason::BudgetExhausted`], so one pathological candidate
    /// cannot stall the whole selection. `None` (the default) keeps
    /// ranking fully deterministic.
    pub candidate_deadline: Option<Duration>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            decomp: DecompConfig::default(),
            ilt: IltConfig::default(),
            weights: ScoreWeights::default(),
            max_attempts: 4,
            candidate_deadline: None,
        }
    }
}

/// Wall-clock breakdown of one flow run — the quantities behind the
/// paper's Fig. 1(c) and the "Time" columns of Table I.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowTiming {
    /// Decomposition-selection time: candidate generation + scoring +
    /// aborted ILT attempts.
    pub decomposition_selection: Duration,
    /// Mask-optimization time: the successful ILT run.
    pub mask_optimization: Duration,
}

impl FlowTiming {
    /// Splits a measured flow total into the two buckets: everything that
    /// is not the successful mask optimization is decomposition selection
    /// (candidate generation, scoring, aborted ILT attempts). Built this
    /// way the buckets sum exactly to the measured total — no stage can
    /// silently fall outside both (see `timing_accounts_for_total_span`).
    pub fn from_total(total: Duration, mask_optimization: Duration) -> Self {
        FlowTiming {
            decomposition_selection: total.saturating_sub(mask_optimization),
            mask_optimization,
        }
    }

    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.decomposition_selection + self.mask_optimization
    }

    /// Fraction of time spent on decomposition selection.
    pub fn ds_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.decomposition_selection.as_secs_f64() / total
        }
    }
}

/// Result of one LDMO flow run.
#[derive(Debug)]
pub struct FlowResult {
    /// The decomposition the final masks came from.
    pub assignment: MaskAssignment,
    /// The final ILT outcome.
    pub outcome: IltOutcome,
    /// Candidates attempted (1 = the first choice succeeded).
    pub attempts: usize,
    /// Number of candidates generated.
    pub candidates: usize,
    /// Wall-clock breakdown.
    pub timing: FlowTiming,
}

/// The deep-learning-driven LDMO flow (Fig. 2).
pub struct LdmoFlow {
    cfg: FlowConfig,
    strategy: SelectionStrategy,
    pool: ldmo_par::ThreadPool,
}

/// Per-stage peak-heap attribution: resets the counting allocator's
/// high-water mark at stage start and stamps the stage's own peak onto its
/// span at the end. Active only when the binary installed
/// `ldmo_obs::alloc::CountingAlloc` *and* the collector is on — otherwise
/// every call is a no-op, keeping unprofiled runs free.
struct StagePeak {
    on: bool,
}

impl StagePeak {
    fn start(on: bool) -> StagePeak {
        if on {
            ldmo_obs::alloc::reset_peak();
        }
        StagePeak { on }
    }

    /// Stamps `peak_kb` on the stage span and folds it into the run-level
    /// maximum.
    fn finish(self, span: &mut ldmo_obs::Span, run_peak_kb: &mut f64) {
        if self.on {
            let kb = ldmo_obs::alloc::peak_bytes() as f64 / 1024.0;
            span.set("peak_kb", kb);
            *run_peak_kb = run_peak_kb.max(kb);
        }
    }
}

impl LdmoFlow {
    /// Creates a flow with the given selection strategy, ranking
    /// candidates on the global [`ldmo_par`] pool.
    pub fn new(cfg: FlowConfig, strategy: SelectionStrategy) -> Self {
        LdmoFlow {
            cfg,
            strategy,
            pool: ldmo_par::global(),
        }
    }

    /// Replaces the pool used for candidate ranking (results are
    /// bit-identical for any pool size).
    pub fn with_pool(mut self, pool: ldmo_par::ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    /// Runs the full flow on one layout.
    ///
    /// Every stage is wrapped in an `ldmo-obs` span (`flow.run` at the
    /// root; see DESIGN.md §8 for the span inventory); the spans also feed
    /// the legacy [`FlowTiming`] breakdown, with
    /// `decomposition_selection = total − mask_optimization` so the two
    /// buckets account for the whole run by construction.
    ///
    /// # Panics
    ///
    /// Panics if candidate generation yields nothing (cannot happen for
    /// non-empty layouts).
    pub fn run(&mut self, layout: &Layout) -> FlowResult {
        let run_start = Instant::now();
        let mem = ldmo_obs::enabled() && ldmo_obs::alloc::installed();
        let mut run_peak_kb = 0f64;
        let mut root = ldmo_obs::span("flow.run");
        root.set("patterns", layout.len() as f64);
        root.set("pool", self.pool.threads() as f64);
        // which litho backend executes this run's convolutions
        // (BackendKind::code: 1 scalar, 2 simd, 3 batched)
        root.set(
            "backend",
            f64::from(ldmo_litho::backend::resolved_kind().code()),
        );
        // one kernel-bank expansion serves the proxy ranking, every abort
        // attempt and the final optimization
        let ctx = {
            let mut s = ldmo_obs::span("flow.kernel_expand");
            let peak = StagePeak::start(mem);
            let ctx = IltContext::new(&self.cfg.ilt);
            peak.finish(&mut s, &mut run_peak_kb);
            ctx
        };
        let candidates = {
            let mut s = ldmo_obs::span("flow.candidate_gen");
            let peak = StagePeak::start(mem);
            let candidates = generate_candidates(layout, &self.cfg.decomp);
            peak.finish(&mut s, &mut run_peak_kb);
            s.set("candidates", candidates.len() as f64);
            candidates
        };
        assert!(!candidates.is_empty(), "no decomposition candidates");
        let order = {
            let mut s = ldmo_obs::span("flow.rank");
            let peak = StagePeak::start(mem);
            let order = self.rank_candidates(layout, &candidates, &ctx);
            peak.finish(&mut s, &mut run_peak_kb);
            order
        };

        if let SelectionStrategy::Cnn(p) = &mut self.strategy {
            p.clear_rejections();
        }

        let abort_ctx = ctx.with_config(&IltConfig {
            policy: ViolationPolicy::AbortOnViolation,
            ..self.cfg.ilt.clone()
        });
        let mut rejected: HashSet<MaskAssignment> = HashSet::new();
        let mut attempts = 0usize;
        for &ci in order.iter().take(self.cfg.max_attempts.max(1)) {
            let cand = &candidates[ci];
            if rejected.contains(cand) {
                continue;
            }
            attempts += 1;
            let mut s = ldmo_obs::span("flow.ilt_attempt");
            s.set("attempt", attempts as f64);
            s.set("candidate", ci as f64);
            let peak = StagePeak::start(mem);
            let outcome = abort_ctx.optimize(layout, cand);
            let aborted = outcome.aborted_at.is_some();
            peak.finish(&mut s, &mut run_peak_kb);
            s.set("aborted", if aborted { 1.0 } else { 0.0 });
            let attempt_time = s.elapsed();
            drop(s);
            if !aborted {
                let timing = FlowTiming::from_total(run_start.elapsed(), attempt_time);
                Self::stamp_root(&mut root, attempts, &timing, mem, run_peak_kb);
                return FlowResult {
                    assignment: cand.clone(),
                    outcome,
                    attempts,
                    candidates: candidates.len(),
                    timing,
                };
            }
            // the aborted attempt is selection overhead, not optimization —
            // it counts into decomposition_selection via the total
            if ldmo_obs::enabled() {
                ldmo_obs::counter("flow.rejections").incr();
            }
            rejected.insert(cand.clone());
            if let SelectionStrategy::Cnn(p) = &mut self.strategy {
                p.reject(cand);
            }
        }
        // every attempt aborted: complete the best-ranked candidate fully
        let fallback = &candidates[order[0]];
        let mut s = ldmo_obs::span("flow.ilt_final");
        let peak = StagePeak::start(mem);
        let outcome = ctx.optimize(layout, fallback);
        peak.finish(&mut s, &mut run_peak_kb);
        let mo_time = s.elapsed();
        drop(s);
        let timing = FlowTiming::from_total(run_start.elapsed(), mo_time);
        Self::stamp_root(&mut root, attempts + 1, &timing, mem, run_peak_kb);
        FlowResult {
            assignment: fallback.clone(),
            outcome,
            attempts: attempts + 1,
            candidates: candidates.len(),
            timing,
        }
    }

    /// Final metadata on the `flow.run` span: attempt count, the
    /// [`FlowTiming`] buckets in microseconds (`sel_us` + `opt_us` must
    /// reconcile with the span's own duration — `ldmo trace summarize
    /// --reconcile` enforces it within 1%), and the run's peak heap when
    /// memory profiling is active. With the backend tag set at run start
    /// this uses 7 of the collector's [`ldmo_obs::MAX_SPAN_META`] slots.
    fn stamp_root(
        root: &mut ldmo_obs::Span,
        attempts: usize,
        timing: &FlowTiming,
        mem: bool,
        run_peak_kb: f64,
    ) {
        root.set("attempts", attempts as f64);
        root.set("sel_us", timing.decomposition_selection.as_micros() as f64);
        root.set("opt_us", timing.mask_optimization.as_micros() as f64);
        if mem {
            root.set("peak_kb", run_peak_kb);
        }
    }

    /// Candidate indices in selection order (best first).
    ///
    /// Exposed for the scaling benches; `ctx` must have been built for
    /// `self.config().ilt` (see [`IltContext::new`]).
    pub fn rank_candidates(
        &mut self,
        layout: &Layout,
        candidates: &[MaskAssignment],
        ctx: &IltContext,
    ) -> Vec<usize> {
        match &mut self.strategy {
            SelectionStrategy::Cnn(p) => p.rank(layout, candidates),
            SelectionStrategy::LithoProxy => {
                // one forward simulation per candidate, fanned over the
                // pool; scores are keyed by candidate index, so the sort
                // below sees exactly the serial ordering. The catching fan
                // converts a panicking candidate into a penalized slot
                // instead of unwinding the whole ranking, and a candidate
                // that blows the per-candidate deadline (or comes back
                // degraded) gets the same deterministic penalty treatment.
                // Under the batched backend the forward simulations run in
                // chunks instead (same scores, amortized kernel loads).
                let batched =
                    ldmo_litho::backend::resolved_kind() == ldmo_litho::BackendKind::Batched;
                let scores = if batched {
                    self.batched_scores(layout, candidates, ctx)
                } else {
                    let weights = self.cfg.weights;
                    let deadline = self.cfg.candidate_deadline;
                    let indexed: Vec<(usize, &MaskAssignment)> =
                        candidates.iter().enumerate().collect();
                    let results = self.pool.par_map_init_catching(
                        &indexed,
                        || None::<ldmo_ilt::IltScratch>,
                        |scratch, &(i, c)| {
                            // the stall injection simulates a slow candidate,
                            // so it must land inside the timed window
                            let started = Instant::now();
                            fault::apply_stall(i);
                            fault::maybe_panic(i);
                            let out = ctx.evaluate_unoptimized_reusing(layout, c, scratch);
                            if let ldmo_ilt::OutcomeHealth::Degraded { reason } = out.health {
                                ldmo_obs::incr("guard.candidate_penalized");
                                return penalty_score(reason);
                            }
                            if deadline.is_some_and(|d| started.elapsed() > d) {
                                ldmo_obs::incr("guard.candidate_penalized");
                                return penalty_score(DegradeReason::BudgetExhausted);
                            }
                            printability_score(&out, &weights)
                        },
                    );
                    results
                        .into_iter()
                        .map(|r| {
                            r.unwrap_or_else(|_| {
                                ldmo_obs::incr("guard.candidate_penalized");
                                penalty_score(DegradeReason::WorkerPanic)
                            })
                        })
                        .collect()
                };
                let mut scored: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
                scored.sort_by(|a, b| a.1.total_cmp(&b.1));
                scored.into_iter().map(|(i, _)| i).collect()
            }
            SelectionStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.shuffle(&mut rng);
                order
            }
            SelectionStrategy::First => (0..candidates.len()).collect(),
        }
    }

    /// `LithoProxy` scores under [`ldmo_litho::BackendKind::Batched`]:
    /// candidates are pushed through the kernel bank in fixed-size chunks
    /// via [`IltContext::evaluate_unoptimized_batch`], so every kernel's
    /// expansion is loaded once per chunk instead of once per candidate.
    ///
    /// Three phases keep the scalar path's fault semantics intact:
    ///
    /// 1. the per-candidate fault window (stall/panic injection) runs under
    ///    per-item panic isolation, so a panic penalizes exactly the
    ///    offending candidate and a stall is charged to its own deadline;
    /// 2. survivors are chunked by candidate index (boundaries independent
    ///    of thread count) and each chunk is evaluated in one batch, its
    ///    wall time divided evenly among its candidates — queue wait for
    ///    *other* chunks is never charged;
    /// 3. scores are assembled in candidate index order, applying the same
    ///    penalty rules as the per-candidate path.
    ///
    /// Scores are bit-identical to the per-candidate path (the batch
    /// evaluator is bit-exact), so the returned ranking only differs where
    /// wall-clock deadlines fire.
    fn batched_scores(
        &self,
        layout: &Layout,
        candidates: &[MaskAssignment],
        ctx: &IltContext,
    ) -> Vec<f64> {
        const RANK_BATCH: usize = 8;
        let weights = self.cfg.weights;
        let deadline = self.cfg.candidate_deadline;
        let indices: Vec<usize> = (0..candidates.len()).collect();
        let prep = self.pool.par_map_catching(&indices, |&i| {
            let started = Instant::now();
            fault::apply_stall(i);
            fault::maybe_panic(i);
            started.elapsed()
        });
        let survivors: Vec<usize> = prep
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_ok().then_some(i))
            .collect();
        let chunks: Vec<&[usize]> = survivors.chunks(RANK_BATCH).collect();
        let evaluated = self.pool.par_map(&chunks, |chunk| {
            let started = Instant::now();
            let assignments: Vec<&[u8]> = chunk.iter().map(|&i| candidates[i].as_slice()).collect();
            let outs = ctx.evaluate_unoptimized_batch(layout, &assignments);
            (outs, started.elapsed() / chunk.len() as u32)
        });
        let mut scores = vec![0.0f64; candidates.len()];
        for (i, r) in prep.iter().enumerate() {
            if r.is_err() {
                ldmo_obs::incr("guard.candidate_penalized");
                scores[i] = penalty_score(DegradeReason::WorkerPanic);
            }
        }
        for (chunk, (outs, share)) in chunks.iter().zip(evaluated) {
            for (&i, out) in chunk.iter().zip(outs) {
                let prep_time = match &prep[i] {
                    Ok(d) => *d,
                    Err(_) => continue,
                };
                scores[i] = if deadline.is_some_and(|d| prep_time + share > d) {
                    ldmo_obs::incr("guard.candidate_penalized");
                    penalty_score(DegradeReason::BudgetExhausted)
                } else {
                    printability_score(&out, &weights)
                };
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn quad_layout(gap: i32) -> Layout {
        let size = 64;
        let pitch = size + gap;
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 120, size),
                Rect::square(120 + pitch, 120, size),
                Rect::square(120, 120 + pitch, size),
                Rect::square(120 + pitch, 120 + pitch, size),
            ],
        )
    }

    fn fast_cfg() -> FlowConfig {
        let mut cfg = FlowConfig::default();
        cfg.ilt.max_iterations = 12;
        cfg.ilt.abort_warmup = 6;
        cfg
    }

    #[test]
    fn litho_proxy_flow_completes() {
        let layout = quad_layout(60);
        let mut flow = LdmoFlow::new(fast_cfg(), SelectionStrategy::LithoProxy);
        let result = flow.run(&layout);
        assert!(result.candidates > 0);
        assert!(result.attempts >= 1);
        assert_eq!(result.assignment.len(), layout.len());
        assert!(result.timing.total() > Duration::ZERO);
    }

    #[test]
    fn proxy_selection_separates_the_quad() {
        // the unoptimized-print proxy must rank a checkerboard-ish
        // decomposition above all-same-mask for a dense quad
        let layout = quad_layout(60);
        let mut flow = LdmoFlow::new(fast_cfg(), SelectionStrategy::LithoProxy);
        let result = flow.run(&layout);
        // at least one close pair must be split in the selected candidate
        let a = &result.assignment;
        assert!(
            a.contains(&0) && a.contains(&1),
            "selected an all-one-mask decomposition: {a:?}"
        );
    }

    #[test]
    fn first_strategy_is_deterministic() {
        let layout = quad_layout(72);
        let r1 = LdmoFlow::new(fast_cfg(), SelectionStrategy::First).run(&layout);
        let r2 = LdmoFlow::new(fast_cfg(), SelectionStrategy::First).run(&layout);
        assert_eq!(r1.assignment, r2.assignment);
    }

    #[test]
    fn random_strategy_depends_on_seed() {
        let layout = quad_layout(72);
        let a = LdmoFlow::new(fast_cfg(), SelectionStrategy::Random { seed: 1 }).run(&layout);
        let b = LdmoFlow::new(fast_cfg(), SelectionStrategy::Random { seed: 2 }).run(&layout);
        // different seeds may pick the same candidate, but the flow must
        // still finish cleanly in both cases
        assert_eq!(a.assignment.len(), b.assignment.len());
    }

    #[test]
    fn untrained_cnn_flow_still_produces_masks() {
        // an untrained CNN gives arbitrary rankings; the violation feedback
        // loop must still deliver a result
        let layout = quad_layout(60);
        let predictor = PrintabilityPredictor::lite(3);
        let mut flow = LdmoFlow::new(fast_cfg(), SelectionStrategy::Cnn(Box::new(predictor)));
        let result = flow.run(&layout);
        assert_eq!(result.assignment.len(), 4);
        assert!(result.attempts <= fast_cfg().max_attempts + 1);
    }

    #[test]
    fn timing_breakdown_is_consistent() {
        let layout = quad_layout(72);
        let result = LdmoFlow::new(fast_cfg(), SelectionStrategy::First).run(&layout);
        let t = result.timing;
        assert!(t.total() >= t.mask_optimization);
        assert!((0.0..=1.0).contains(&t.ds_fraction()));
    }

    #[test]
    fn timing_accounts_for_total_span() {
        // accounting-drift regression: decomposition_selection +
        // mask_optimization must equal the whole flow.run span (± slack),
        // so no stage can silently fall outside both buckets (kernel
        // expansion and abort bookkeeping used to)
        let layout = quad_layout(60);
        let mut flow = LdmoFlow::new(fast_cfg(), SelectionStrategy::LithoProxy);
        let wall = Instant::now();
        let result = flow.run(&layout);
        let measured = wall.elapsed();
        let bucketed = result.timing.total();
        assert!(
            bucketed <= measured,
            "buckets exceed the measured span: {bucketed:?} > {measured:?}"
        );
        assert!(
            measured - bucketed < Duration::from_millis(50),
            "{:?} of the flow span fell outside both timing buckets",
            measured - bucketed
        );
    }
}
