//! Training loop for the printability predictor (paper Section IV-C:
//! Adam + MAE on z-scored Eq. 9 labels).

use crate::dataset::Dataset;
use crate::predictor::PrintabilityPredictor;
use ldmo_nn::layers::Layer;
use ldmo_nn::loss::{mae_loss, mae_loss_grad};
use ldmo_nn::optim::{clip_grad_norm, Adam, LrSchedule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (decayed by `lr_decay` every `lr_step` epochs).
    pub lr: f32,
    /// Epochs between learning-rate decays (`usize::MAX` disables decay).
    pub lr_step: usize,
    /// Learning-rate decay factor.
    pub lr_decay: f32,
    /// Global gradient-norm clip (`f32::INFINITY` disables clipping).
    pub grad_clip: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 8,
            lr: 1e-3,
            lr_step: 15,
            lr_decay: 0.3,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

/// Per-epoch loss history.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainHistory {
    /// Mean training MAE of each epoch.
    pub epoch_mae: Vec<f32>,
    /// Wall-clock time of each epoch (same length as `epoch_mae`).
    pub epoch_wall: Vec<Duration>,
}

impl TrainHistory {
    /// Final epoch's MAE (`None` before training).
    pub fn final_mae(&self) -> Option<f32> {
        self.epoch_mae.last().copied()
    }

    /// Total wall-clock time across all epochs.
    pub fn total_wall(&self) -> Duration {
        self.epoch_wall.iter().sum()
    }

    /// Exports the history as JSONL: one
    /// `{"epoch":N,"mae":M,"wall_us":W}` object per epoch (the vendored
    /// serde is a derive-only stand-in, so the writer is hand-rolled to
    /// the same shape the `ldmo-obs` sinks use).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (epoch, &mae) in self.epoch_mae.iter().enumerate() {
            let wall_us = self
                .epoch_wall
                .get(epoch)
                .map_or(0, |w| w.as_micros() as u64);
            out.push_str(&format!(
                "{{\"epoch\":{epoch},\"mae\":{},\"wall_us\":{wall_us}}}\n",
                ldmo_obs::json::number(f64::from(mae))
            ));
        }
        out
    }

    /// Parses a history back from the [`TrainHistory::to_jsonl`] format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when a line is not a
    /// JSON object or lacks a numeric `mae`/`wall_us`.
    pub fn from_jsonl(text: &str) -> Result<TrainHistory, String> {
        let mut history = TrainHistory::default();
        for value in ldmo_obs::json::parse_jsonl(text)? {
            let mae = value
                .get("mae")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("epoch line without numeric mae: {value:?}"))?;
            let wall_us = value
                .get("wall_us")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("epoch line without numeric wall_us: {value:?}"))?;
            history.epoch_mae.push(mae as f32);
            history
                .epoch_wall
                .push(Duration::from_micros(wall_us as u64));
        }
        Ok(history)
    }
}

/// Trains `predictor` on `dataset`, returning the loss history.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn train(
    predictor: &mut PrintabilityPredictor,
    dataset: &Dataset,
    cfg: &TrainConfig,
) -> TrainHistory {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    let input_size = predictor.network_mut().config().input_size;
    let mut adam = Adam::new(cfg.lr);
    let schedule = LrSchedule {
        base_lr: cfg.lr,
        step_epochs: cfg.lr_step,
        gamma: cfg.lr_decay,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut history = TrainHistory::default();
    let mut run_span = ldmo_obs::span("train.run");
    run_span.set("epochs", cfg.epochs as f64);
    run_span.set("examples", dataset.len() as f64);
    run_span.set("pool", ldmo_par::global_threads() as f64);
    for epoch in 0..cfg.epochs {
        let mut span = ldmo_obs::span("train.epoch");
        let epoch_start = Instant::now();
        adam.lr = schedule.lr_at(epoch);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let (x, y) = dataset.batch(chunk, input_size);
            let net = predictor.network_mut();
            let pred = net.forward(&x, true);
            let loss = mae_loss(&pred, &y);
            let grad = mae_loss_grad(&pred, &y);
            net.zero_grad();
            let _ = net.backward(&grad);
            if cfg.grad_clip.is_finite() {
                let _ = clip_grad_norm(net, cfg.grad_clip);
            }
            adam.step(net);
            epoch_loss += f64::from(loss);
            batches += 1;
        }
        let mae = (epoch_loss / batches as f64) as f32;
        history.epoch_mae.push(mae);
        history.epoch_wall.push(epoch_start.elapsed());
        span.set("epoch", epoch as f64);
        span.set("mae", f64::from(mae));
        span.set("lr", f64::from(adam.lr));
        span.set("batches", batches as f64);
        // numeric-health guard: once the epoch loss goes non-finite the
        // weights are poisoned and further epochs cannot recover — stop
        // here so the caller keeps the history up to the blow-up
        if !mae.is_finite() {
            ldmo_obs::incr("guard.train_nonfinite");
            break;
        }
    }
    if let Some(mae) = history.final_mae() {
        run_span.set("final_mae", f64::from(mae));
    }
    history
}

/// Mean absolute error of the predictor on a dataset (eval mode).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn evaluate_mae(predictor: &mut PrintabilityPredictor, dataset: &Dataset) -> f32 {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let input_size = predictor.network_mut().config().input_size;
    // batch like the training loop: one forward per chunk instead of per
    // sample (eval-mode conv and batch-norm are per-sample independent, so
    // the per-sample errors are unchanged)
    let indices: Vec<usize> = (0..dataset.len()).collect();
    let mut total = 0.0f64;
    for chunk in indices.chunks(EVAL_BATCH) {
        let (x, _) = dataset.batch(chunk, input_size);
        let pred = predictor.network_mut().forward(&x, false);
        for (k, &i) in chunk.iter().enumerate() {
            total += f64::from((pred.as_slice()[k] - dataset.labels[i]).abs());
        }
    }
    (total / dataset.len() as f64) as f32
}

/// Evaluation mini-batch size (amortizes per-forward overhead and lets the
/// conv layers fan samples across the pool).
const EVAL_BATCH: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Normalizer;
    use ldmo_geom::{Grid, Rect};
    use ldmo_layout::MaskAssignment;

    /// A synthetic dataset where the label is a simple function of the
    /// image (bright area fraction), bypassing the expensive ILT labeling.
    fn synthetic_dataset(n: usize) -> Dataset {
        let mut images = Vec::new();
        let mut raw = Vec::new();
        let mut provenance: Vec<(usize, MaskAssignment)> = Vec::new();
        for i in 0..n {
            let mut img = Grid::zeros(224, 224);
            let size = 40 + (i as i32 * 13) % 120;
            img.fill_rect(&Rect::new(20, 20, 20 + size, 20 + size), 1.0);
            raw.push(f64::from(size));
            images.push(img);
            provenance.push((i, vec![0]));
        }
        let normalizer = Normalizer::fit(&raw);
        let labels = raw.iter().map(|&s| normalizer.apply(s) as f32).collect();
        Dataset {
            images,
            raw_scores: raw,
            labels,
            normalizer,
            provenance,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = synthetic_dataset(8);
        let mut predictor = PrintabilityPredictor::lite(5);
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 4,
            lr: 2e-3,
            seed: 1,
            ..TrainConfig::default()
        };
        let history = train(&mut predictor, &ds, &cfg);
        assert_eq!(history.epoch_mae.len(), 12);
        let first = history.epoch_mae[0];
        let last = history.final_mae().expect("trained");
        assert!(last < first * 0.8, "MAE did not improve: {first} -> {last}");
    }

    #[test]
    fn evaluation_improves_after_training() {
        let ds = synthetic_dataset(8);
        let mut predictor = PrintabilityPredictor::lite(7);
        let before = evaluate_mae(&mut predictor, &ds);
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 4,
            lr: 2e-3,
            seed: 2,
            ..TrainConfig::default()
        };
        let _ = train(&mut predictor, &ds, &cfg);
        let after = evaluate_mae(&mut predictor, &ds);
        assert!(after < before, "eval MAE {before} -> {after}");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = synthetic_dataset(6);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut p1 = PrintabilityPredictor::lite(9);
        let mut p2 = PrintabilityPredictor::lite(9);
        let h1 = train(&mut p1, &ds, &cfg);
        let h2 = train(&mut p2, &ds, &cfg);
        // Wall times differ between runs; the losses must not.
        assert_eq!(h1.epoch_mae, h2.epoch_mae);
    }

    #[test]
    fn nonfinite_epoch_loss_stops_training_early() {
        // an infinite learning rate blows the weights up within an epoch;
        // the guard must stop the loop instead of burning the remaining
        // epochs on NaN forward passes
        let ds = synthetic_dataset(6);
        let mut predictor = PrintabilityPredictor::lite(11);
        let cfg = TrainConfig {
            epochs: 8,
            lr: f32::INFINITY,
            grad_clip: f32::INFINITY,
            ..TrainConfig::default()
        };
        let history = train(&mut predictor, &ds, &cfg);
        assert!(history.epoch_mae.len() < 8, "guard did not stop training");
        let last = history.final_mae().expect("at least one epoch ran");
        assert!(!last.is_finite(), "stopped without a non-finite epoch");
    }

    #[test]
    fn history_jsonl_roundtrip() {
        let history = TrainHistory {
            epoch_mae: vec![0.5, 0.25, 0.125],
            epoch_wall: vec![
                Duration::from_micros(1500),
                Duration::from_micros(900),
                Duration::from_micros(850),
            ],
        };
        let text = history.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = TrainHistory::from_jsonl(&text).expect("parse");
        assert_eq!(back, history);
        // An empty history roundtrips to an empty string.
        assert_eq!(
            TrainHistory::from_jsonl("").expect("empty"),
            TrainHistory::default()
        );
        assert!(TrainHistory::from_jsonl("{\"epoch\":0}").is_err());
    }
}
