//! The comparison flows of Table I.
//!
//! - [`unified_flow`] — the ICCAD'17 simultaneous framework [10]: all
//!   candidates are optimized in parallel rounds and greedily pruned by
//!   intermediate printability. Accurate but expensive: most of its time
//!   goes to decomposition selection (Fig. 1(c)), and pruning on
//!   *intermediate* results is exactly the inaccuracy the paper criticises
//!   (Fig. 1(b): trajectories cross).
//! - [`two_stage_suald`] — "[16] + [6]": a spacing-uniformity-aware greedy
//!   decomposition followed by an independent ILT run.
//! - [`two_stage_bfs`] — "[17] + [6]": conflict-graph BFS two-coloring
//!   followed by an independent ILT run.

use crate::score::{printability_score, ScoreWeights};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_ilt::{IltConfig, IltContext, IltOutcome, IltSession};
use ldmo_layout::classify::ClassifyConfig;
use ldmo_layout::{Layout, MaskAssignment};
use std::time::{Duration, Instant};

/// Outcome of a baseline flow, with the same timing split as the main flow.
#[derive(Debug)]
pub struct BaselineResult {
    /// Flow label as used in Table I.
    pub name: &'static str,
    /// Selected decomposition.
    pub assignment: MaskAssignment,
    /// Final ILT outcome.
    pub outcome: IltOutcome,
    /// Time spent selecting/constructing the decomposition.
    pub decomposition_selection: Duration,
    /// Time spent on the final mask optimization.
    pub mask_optimization: Duration,
}

impl BaselineResult {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.decomposition_selection + self.mask_optimization
    }
}

/// Configuration of the unified greedy-pruning baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct UnifiedConfig {
    /// Candidate generation.
    pub decomp: DecompConfig,
    /// ILT engine parameters.
    pub ilt: IltConfig,
    /// Eq. 9 weights used for intermediate printability ranking.
    pub weights: ScoreWeights,
    /// Iterations between pruning rounds (matches the paper's 3-iteration
    /// check cadence).
    pub prune_interval: usize,
    /// Cap on the initial candidate set.
    pub max_initial: usize,
}

impl Default for UnifiedConfig {
    fn default() -> Self {
        UnifiedConfig {
            decomp: DecompConfig::default(),
            ilt: IltConfig::default(),
            weights: ScoreWeights::default(),
            prune_interval: 3,
            max_initial: 8,
        }
    }
}

/// The ICCAD'17 unified framework [10]: greedy pruning on intermediate
/// mask-optimization results.
///
/// All candidates advance `prune_interval` ILT iterations per round; after
/// each round the worse half (by intermediate Eq. 9 score) is discarded.
/// The survivor finishes its full iteration budget. Time spent optimizing
/// candidates that are later pruned — plus the survivor's shared prefix —
/// is decomposition-selection (DS) time; the survivor's remaining
/// iterations are mask-optimization (MO) time. That DS > MO here is the
/// paper's Fig. 1(c).
pub fn unified_flow(layout: &Layout, cfg: &UnifiedConfig) -> BaselineResult {
    let ds_start = Instant::now();
    let mut candidates = generate_candidates(layout, &cfg.decomp);
    candidates.truncate(cfg.max_initial.max(1));
    // one kernel-bank expansion shared by every candidate session
    let ctx = IltContext::new(&cfg.ilt);
    let mut active: Vec<(MaskAssignment, IltSession)> = candidates
        .into_iter()
        .map(|c| {
            let session = ctx.session(layout, &c);
            (c, session)
        })
        .collect();
    let interval = cfg.prune_interval.max(1);
    while active.len() > 1 {
        let budget = active
            .iter()
            .map(|(_, s)| s.iterations())
            .max()
            .unwrap_or(0)
            + interval;
        let budget = budget.min(cfg.ilt.max_iterations);
        for (_, session) in &mut active {
            while session.iterations() < budget {
                let _ = session.step_one();
            }
        }
        // rank by intermediate printability and drop the worse half
        let mut scored: Vec<(usize, f64)> = active
            .iter()
            .enumerate()
            .map(|(i, (_, s))| {
                let snap = s.snapshot(Vec::new(), None);
                (i, printability_score(&snap, &cfg.weights))
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let keep: std::collections::HashSet<usize> = scored
            .iter()
            .take(active.len().div_ceil(2))
            .map(|&(i, _)| i)
            .collect();
        let mut idx = 0;
        active.retain(|_| {
            let k = keep.contains(&idx);
            idx += 1;
            k
        });
        if active
            .iter()
            .all(|(_, s)| s.iterations() >= cfg.ilt.max_iterations)
        {
            // budget exhausted while several remain: keep the best only
            active.truncate(1);
        }
    }
    let ds_time = ds_start.elapsed();
    let (assignment, mut session) = active.pop().expect("at least one candidate");
    let mo_start = Instant::now();
    while session.iterations() < cfg.ilt.max_iterations {
        let _ = session.step_one();
    }
    let outcome = session.into_outcome();
    BaselineResult {
        name: "ICCAD'17 unified [10]",
        assignment,
        outcome,
        decomposition_selection: ds_time,
        mask_optimization: mo_start.elapsed(),
    }
}

/// "[16] + [6]": spacing-uniformity-aware greedy decomposition (SUALD-style)
/// followed by one independent ILT run.
///
/// Patterns are assigned one by one (densest neighbourhood first) to the
/// mask that maximizes the minimum same-mask spacing — the spacing
/// uniformity objective of SUALD reduced to double patterning.
pub fn two_stage_suald(layout: &Layout, ilt_cfg: &IltConfig) -> BaselineResult {
    let ds_start = Instant::now();
    let assignment = suald_decompose(layout);
    let ds_time = ds_start.elapsed();
    let mo_start = Instant::now();
    let outcome = IltContext::new(ilt_cfg).optimize(layout, &assignment);
    BaselineResult {
        name: "SUALD [16] + MOSAIC [6]",
        assignment,
        outcome,
        decomposition_selection: ds_time,
        mask_optimization: mo_start.elapsed(),
    }
}

/// The SUALD-style greedy coloring, exposed for tests and ablations.
pub fn suald_decompose(layout: &Layout) -> MaskAssignment {
    let n = layout.len();
    let gaps = layout.gap_matrix();
    // order: most-constrained first (smallest nearest-neighbour gap)
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ga = gaps[a].iter().copied().fold(f64::INFINITY, f64::min);
        let gb = gaps[b].iter().copied().fold(f64::INFINITY, f64::min);
        ga.total_cmp(&gb)
    });
    let mut assignment = vec![u8::MAX; n];
    for &p in &order {
        // min same-mask gap if p joins mask m
        let min_gap = |m: u8| -> f64 {
            (0..n)
                .filter(|&q| q != p && assignment[q] == m)
                .map(|q| gaps[p][q])
                .fold(f64::INFINITY, f64::min)
        };
        let (g0, g1) = (min_gap(0), min_gap(1));
        assignment[p] = if g0 >= g1 { 0 } else { 1 };
    }
    // canonical orientation
    if assignment.first() == Some(&1) {
        for v in &mut assignment {
            *v = 1 - *v;
        }
    }
    assignment
}

/// "[17] + [6]": BFS two-coloring of the conflict graph (the quadruple-
/// patterning heuristic of [17] restricted to two masks) followed by one
/// independent ILT run.
pub fn two_stage_bfs(layout: &Layout, ilt_cfg: &IltConfig) -> BaselineResult {
    let ds_start = Instant::now();
    let assignment = bfs_decompose(layout, &ClassifyConfig::default());
    let ds_time = ds_start.elapsed();
    let mo_start = Instant::now();
    let outcome = IltContext::new(ilt_cfg).optimize(layout, &assignment);
    BaselineResult {
        name: "LD-QP [17] + MOSAIC [6]",
        assignment,
        outcome,
        decomposition_selection: ds_time,
        mask_optimization: mo_start.elapsed(),
    }
}

/// BFS two-coloring over conflict edges (gap ≤ nmin); patterns untouched by
/// conflicts are balanced between the masks.
pub fn bfs_decompose(layout: &Layout, classify: &ClassifyConfig) -> MaskAssignment {
    let n = layout.len();
    let gaps = layout.gap_matrix();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if gaps[i][j] <= classify.nmin {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut assignment = vec![u8::MAX; n];
    for start in 0..n {
        if assignment[start] != u8::MAX || adj[start].is_empty() {
            continue;
        }
        assignment[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if assignment[v] == u8::MAX {
                    assignment[v] = 1 - assignment[u];
                    queue.push_back(v);
                }
            }
        }
    }
    // isolated patterns: alternate for balance
    let mut next = 0u8;
    for a in &mut assignment {
        if *a == u8::MAX {
            *a = next;
            next = 1 - next;
        }
    }
    if assignment.first() == Some(&1) {
        for v in &mut assignment {
            *v = 1 - *v;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn quad_layout(gap: i32) -> Layout {
        let size = 64;
        let pitch = size + gap;
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(120, 120, size),
                Rect::square(120 + pitch, 120, size),
                Rect::square(120, 120 + pitch, size),
                Rect::square(120 + pitch, 120 + pitch, size),
            ],
        )
    }

    fn fast_ilt() -> IltConfig {
        IltConfig {
            max_iterations: 9,
            ..IltConfig::default()
        }
    }

    #[test]
    fn suald_separates_close_pairs() {
        let layout = quad_layout(60);
        let a = suald_decompose(&layout);
        // the quad's conflict graph is a 4-cycle: a proper 2-coloring is a
        // checkerboard; SUALD must split every edge-adjacent pair
        assert_ne!(a[0], a[1]);
        assert_ne!(a[0], a[2]);
        assert_ne!(a[1], a[3]);
        assert_ne!(a[2], a[3]);
        assert_eq!(a[0], 0, "canonical orientation");
    }

    #[test]
    fn bfs_coloring_is_proper_on_bipartite_graphs() {
        let layout = quad_layout(60);
        let a = bfs_decompose(&layout, &ClassifyConfig::default());
        assert_ne!(a[0], a[1]);
        assert_ne!(a[0], a[2]);
        assert_ne!(a[1], a[3]);
        assert_ne!(a[2], a[3]);
    }

    #[test]
    fn bfs_balances_isolated_patterns() {
        let layout = Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(60, 60, 64),
                Rect::square(60, 300, 64),
                Rect::square(300, 60, 64),
                Rect::square(300, 300, 64),
            ],
        );
        let a = bfs_decompose(&layout, &ClassifyConfig::default());
        let ones = a.iter().filter(|&&m| m == 1).count();
        assert_eq!(ones, 2, "isolated patterns should balance: {a:?}");
    }

    #[test]
    fn two_stage_flows_produce_outcomes() {
        let layout = quad_layout(64);
        for result in [
            two_stage_suald(&layout, &fast_ilt()),
            two_stage_bfs(&layout, &fast_ilt()),
        ] {
            assert_eq!(result.assignment.len(), 4);
            assert!(result.mask_optimization > Duration::ZERO);
            assert!(!result.name.is_empty());
        }
    }

    #[test]
    fn unified_flow_prunes_to_one_candidate() {
        let layout = quad_layout(64);
        let cfg = UnifiedConfig {
            ilt: fast_ilt(),
            max_initial: 4,
            ..UnifiedConfig::default()
        };
        let result = unified_flow(&layout, &cfg);
        assert_eq!(result.assignment.len(), 4);
        assert_eq!(result.outcome.iterations_run, fast_ilt().max_iterations);
    }

    #[test]
    fn unified_ds_dominates_runtime() {
        // the paper's Fig. 1(c): decomposition selection takes the larger
        // share of the unified flow's time. Needs a layout with a real
        // candidate set (NAND3_X2 generates 8 candidates).
        let layout = ldmo_layout::cells::cell("NAND3_X2").expect("known cell");
        let cfg = UnifiedConfig {
            ilt: fast_ilt(),
            max_initial: 8,
            ..UnifiedConfig::default()
        };
        let result = unified_flow(&layout, &cfg);
        assert!(
            result.decomposition_selection > result.mask_optimization,
            "DS {:?} should exceed MO {:?}",
            result.decomposition_selection,
            result.mask_optimization
        );
    }

    #[test]
    fn unified_picks_a_printable_decomposition() {
        let layout = quad_layout(60);
        let cfg = UnifiedConfig {
            ilt: fast_ilt(),
            ..UnifiedConfig::default()
        };
        let result = unified_flow(&layout, &cfg);
        let a = &result.assignment;
        assert!(a.contains(&0) && a.contains(&1));
    }
}
