//! The per-request optimization pipeline: the `ldmo-chip` tile idiom
//! (rank → abort-attempt loop → complete best-ranked) under a per-request
//! deadline, with retry-once-with-halved-budget before degrading to the
//! deterministic unoptimized drawn masks.

use ldmo_core::score::{printability_score, ScoreWeights};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_geom::Grid;
use ldmo_guard::{penalty_score, Budget, DegradeReason, OutcomeHealth};
use ldmo_ilt::{IltConfig, IltContext, IltOutcome, ViolationPolicy};
use ldmo_layout::{Layout, MaskAssignment};
use ldmo_litho::backend::resolved_kind;
use ldmo_litho::BackendKind;
use std::time::{Duration, Instant};

/// Per-request optimization knobs (the serving analogue of `ChipConfig`).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// ILT engine config; its budget composes with the request deadline
    /// (the tighter bound wins on each axis).
    pub ilt: IltConfig,
    /// Candidate generation (its `max_candidates` caps the ranking
    /// fan-out and is part of the cache key).
    pub decomp: DecompConfig,
    /// Eq. 9 weights for the litho-proxy ranking.
    pub weights: ScoreWeights,
    /// Candidates attempted under the abort policy before completing the
    /// best-ranked one without it.
    pub max_attempts: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            ilt: IltConfig::default(),
            decomp: DecompConfig::default(),
            weights: ScoreWeights::default(),
            max_attempts: 4,
        }
    }
}

/// What one request's optimization produced.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The served double-patterning mask pair.
    pub masks: [Grid; 2],
    /// EPE violations of the served masks.
    pub epe_violations: usize,
    /// ILT attempts made (abort-loop + fallback + retry).
    pub attempts: usize,
    /// Decomposition candidates ranked.
    pub candidates: usize,
    /// Iterations of the accepted run.
    pub iterations: usize,
    /// Guard verdict. `Degraded` means the deterministic unoptimized
    /// drawn masks were served.
    pub health: OutcomeHealth,
    /// Whether the halved-budget retry produced the served result. A
    /// retried outcome is never cached — the retry only happens when a
    /// wall-clock budget fired, which is not a function of the input.
    pub retried: bool,
}

/// Composes the configured budget with the request's remaining deadline:
/// the tighter wall bound wins; iteration bounds pass through.
fn merge_budget(base: &Budget, remaining: Option<Duration>) -> Budget {
    let max_wall = match (base.max_wall, remaining) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    Budget {
        max_iterations: base.max_iterations,
        max_wall,
    }
}

/// Litho-proxy candidate ranking (best first) — the batched evaluator
/// under the batched backend (one kernel-bank pass for the whole
/// candidate set), bit-identical to the per-candidate path.
fn rank(
    layout: &Layout,
    candidates: &[MaskAssignment],
    cfg: &PipelineConfig,
    ctx: &IltContext,
) -> Vec<usize> {
    let score = |out: &IltOutcome| -> f64 {
        if let OutcomeHealth::Degraded { reason } = out.health {
            penalty_score(reason)
        } else {
            printability_score(out, &cfg.weights)
        }
    };
    let scores: Vec<f64> = if resolved_kind() == BackendKind::Batched && candidates.len() > 1 {
        let assignments: Vec<&[u8]> = candidates.iter().map(|c| c.as_slice()).collect();
        ctx.evaluate_unoptimized_batch(layout, &assignments)
            .iter()
            .map(score)
            .collect()
    } else {
        candidates
            .iter()
            .map(|c| score(&ctx.evaluate_unoptimized(layout, c.as_slice())))
            .collect()
    };
    let mut scored: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored.into_iter().map(|(i, _)| i).collect()
}

/// Runs one request end to end. `remaining` is the wall-clock budget left
/// of the request's deadline at processing start (queue wait already
/// deducted); `None` means no deadline.
///
/// Failure ladder (DESIGN.md §16): abort-attempt loop → complete the
/// best-ranked candidate → retry once with a halved budget → degrade to
/// the deterministic unoptimized drawn masks. Every rung returns a
/// well-formed outcome; nothing panics or blocks past the deadline by
/// more than one budget check interval.
pub fn optimize_request(
    layout: &Layout,
    cfg: &PipelineConfig,
    ctx: &IltContext,
    remaining: Option<Duration>,
) -> RequestOutcome {
    let started = Instant::now();
    let candidates = generate_candidates(layout, &cfg.decomp);
    let order = rank(layout, &candidates, cfg, ctx);
    let n_candidates = candidates.len();

    // the deadline may already be spent on queue wait + ranking: skip
    // straight to the deterministic fallback rather than starting an ILT
    // run that is guaranteed to blow its budget
    let spent_already = remaining.is_some_and(|d| started.elapsed() >= d);
    if spent_already {
        return degraded_outcome(
            layout,
            &candidates[order[0]],
            ctx,
            n_candidates,
            0,
            DegradeReason::BudgetExhausted,
            false,
        );
    }

    let first_cfg = IltConfig {
        budget: merge_budget(
            &cfg.ilt.budget,
            remaining.map(|d| d.saturating_sub(started.elapsed())),
        ),
        ..cfg.ilt.clone()
    };
    let abort_ctx = ctx.with_config(&IltConfig {
        policy: ViolationPolicy::AbortOnViolation,
        ..first_cfg.clone()
    });
    let mut attempts = 0usize;
    let mut accepted: Option<(usize, IltOutcome)> = None;
    for &ci in order.iter().take(cfg.max_attempts.max(1)) {
        attempts += 1;
        let out = abort_ctx.optimize(layout, candidates[ci].as_slice());
        if out.aborted_at.is_none() {
            accepted = Some((ci, out));
            break;
        }
    }
    let (ci, out) = accepted.unwrap_or_else(|| {
        attempts += 1;
        (
            order[0],
            ctx.with_config(&first_cfg)
                .optimize(layout, candidates[order[0]].as_slice()),
        )
    });
    if out.health.is_usable() {
        return RequestOutcome {
            masks: out.masks.clone(),
            epe_violations: out.epe_violations(),
            attempts,
            candidates: n_candidates,
            iterations: out.iterations_run,
            health: out.health,
            retried: false,
        };
    }
    let reason = match out.health {
        OutcomeHealth::Degraded { reason } => reason,
        _ => unreachable!("non-usable health is Degraded"),
    };

    // retry once with a halved budget: half the iteration cap (so a
    // shortened run can *complete* instead of re-blowing the bound) and
    // whatever wall clock the deadline has left, halved
    ldmo_obs::incr("serve.retries");
    let left = remaining.map(|d| d.saturating_sub(started.elapsed()));
    if left.is_none_or(|d| d > Duration::ZERO) {
        let halved_iters = (cfg.ilt.max_iterations / 2).max(1);
        let retry_cfg = IltConfig {
            max_iterations: halved_iters,
            budget: Budget {
                max_iterations: first_cfg.budget.max_iterations.map(|n| (n / 2).max(1)),
                max_wall: left.map(|d| d / 2),
            },
            ..cfg.ilt.clone()
        };
        attempts += 1;
        let retry = ctx
            .with_config(&retry_cfg)
            .optimize(layout, candidates[ci].as_slice());
        if retry.health.is_usable() {
            return RequestOutcome {
                masks: retry.masks.clone(),
                epe_violations: retry.epe_violations(),
                attempts,
                candidates: n_candidates,
                iterations: retry.iterations_run,
                health: retry.health,
                retried: true,
            };
        }
    }

    degraded_outcome(
        layout,
        &candidates[ci],
        ctx,
        n_candidates,
        attempts,
        reason,
        true,
    )
}

/// The deterministic bottom rung: the candidate's unoptimized drawn
/// masks (always printable-as-drawn, a pure function of the layout).
fn degraded_outcome(
    layout: &Layout,
    candidate: &MaskAssignment,
    ctx: &IltContext,
    candidates: usize,
    attempts: usize,
    reason: DegradeReason,
    retried: bool,
) -> RequestOutcome {
    ldmo_obs::incr("serve.degraded");
    let un = ctx.evaluate_unoptimized(layout, candidate.as_slice());
    RequestOutcome {
        masks: un.masks.clone(),
        epe_violations: un.epe_violations(),
        attempts,
        candidates,
        iterations: 0,
        health: OutcomeHealth::Degraded { reason },
        retried,
    }
}

/// Serial replacement for a request whose pool worker panicked: the
/// first candidate's unoptimized drawn masks, marked degraded — the
/// serving mirror of `ldmo-chip`'s `panicked_tile`.
pub fn panicked_fallback(
    layout: &Layout,
    cfg: &PipelineConfig,
    ctx: &IltContext,
) -> RequestOutcome {
    ldmo_obs::incr("serve.panics");
    let candidates = generate_candidates(layout, &cfg.decomp);
    degraded_outcome(
        layout,
        &candidates[0],
        ctx,
        candidates.len(),
        0,
        DegradeReason::WorkerPanic,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn small_layout() -> Layout {
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(80, 80, 64), Rect::square(240, 240, 64)],
        )
    }

    fn fast_cfg() -> PipelineConfig {
        let mut cfg = PipelineConfig::default();
        cfg.ilt.max_iterations = 4;
        cfg.decomp.max_candidates = 4;
        cfg
    }

    #[test]
    fn healthy_request_is_deterministic() {
        let layout = small_layout();
        let cfg = fast_cfg();
        let ctx = IltContext::new(&cfg.ilt);
        let a = optimize_request(&layout, &cfg, &ctx, None);
        let b = optimize_request(&layout, &cfg, &ctx, None);
        assert!(a.health.is_usable());
        assert!(!a.retried);
        assert_eq!(a.masks, b.masks);
        assert_eq!(a.epe_violations, b.epe_violations);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn exhausted_iteration_budget_retries_then_degrades_or_completes() {
        let layout = small_layout();
        let mut cfg = fast_cfg();
        cfg.ilt.budget = Budget::iterations(0);
        let ctx = IltContext::new(&cfg.ilt);
        let out = optimize_request(&layout, &cfg, &ctx, None);
        // a zero-iteration budget halves to one iteration on retry; either
        // the retry completes cleanly within it or the fallback serves the
        // drawn masks — both are well-formed, neither panics
        assert!(out.retried || out.health.is_degraded());
        assert!(out.masks[0].as_slice().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn expired_deadline_degrades_immediately_and_deterministically() {
        let layout = small_layout();
        let cfg = fast_cfg();
        let ctx = IltContext::new(&cfg.ilt);
        let a = optimize_request(&layout, &cfg, &ctx, Some(Duration::ZERO));
        let b = optimize_request(&layout, &cfg, &ctx, Some(Duration::ZERO));
        assert_eq!(
            a.health,
            OutcomeHealth::Degraded {
                reason: DegradeReason::BudgetExhausted
            }
        );
        assert_eq!(a.iterations, 0);
        assert_eq!(a.masks, b.masks, "fallback masks are deterministic");
    }

    #[test]
    fn panicked_fallback_is_degraded_and_deterministic() {
        let layout = small_layout();
        let cfg = fast_cfg();
        let ctx = IltContext::new(&cfg.ilt);
        let a = panicked_fallback(&layout, &cfg, &ctx);
        let b = panicked_fallback(&layout, &cfg, &ctx);
        assert_eq!(
            a.health,
            OutcomeHealth::Degraded {
                reason: DegradeReason::WorkerPanic
            }
        );
        assert_eq!(a.masks, b.masks);
    }
}
