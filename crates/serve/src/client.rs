//! The soak client: N concurrent request generators that validate every
//! byte the daemon returns. This is the measuring instrument of the
//! chaos soak — its report distinguishes every legitimate response row
//! and counts *poisoned* responses (malformed JSON, unknown code, id
//! mismatch), which must be zero under any fault plan.
//!
//! Connection-level faults are part of the contract: a `drop-conn` fault
//! closes the socket before a response, the client observes EOF/reset
//! and retries the same request. "Zero dropped-without-response" means
//! every request *eventually* receives a typed response through retries,
//! exactly how a production client rides out a flaky network.

use crate::protocol::{OptimizeRequest, OptimizeResponse};
use ldmo_layout::generate::{GeneratorConfig, LayoutGenerator};
use ldmo_layout::io as layout_io;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Soak-driver configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Layout-generation seed (client `i` uses `seed + i`).
    pub seed: u64,
    /// Reconnect attempts per request on connection errors (EOF/reset —
    /// the `drop-conn` fault or a real network drop).
    pub max_retries: usize,
    /// Per-request deadline passed to the server.
    pub deadline_ms: Option<u64>,
    /// Per-request ILT iteration cap override.
    pub max_iterations: Option<usize>,
    /// Per-request candidate cap override.
    pub max_candidates: Option<usize>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:9185".into(),
            clients: 4,
            requests: 8,
            seed: 7,
            max_retries: 8,
            deadline_ms: None,
            max_iterations: None,
            max_candidates: None,
        }
    }
}

/// What the soak observed, summed over all clients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Requests sent (= clients × requests when nothing is poisoned).
    pub sent: u64,
    /// 200 `ok` responses.
    pub ok: u64,
    /// 200 `degraded` responses.
    pub degraded: u64,
    /// Responses served from the cache (`cached: true`).
    pub cached: u64,
    /// Responses produced by the halved-budget retry.
    pub retried: u64,
    /// 429 `shed` rows that persisted through the shed-retry budget.
    pub shed: u64,
    /// 503 `draining` rows.
    pub draining: u64,
    /// 4xx rows (should be zero — the driver only sends valid requests).
    pub rejected: u64,
    /// Reconnects after connection drops (EOF/reset before a response).
    pub conn_retries: u64,
    /// Requests that exhausted their reconnect budget without any
    /// response (counted against the zero-dropped contract).
    pub dropped: u64,
    /// Malformed responses, with reasons — the zero-poisoned contract.
    pub poisoned: Vec<String>,
}

impl ClientReport {
    fn absorb(&mut self, other: ClientReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.cached += other.cached;
        self.retried += other.retried;
        self.shed += other.shed;
        self.draining += other.draining;
        self.rejected += other.rejected;
        self.conn_retries += other.conn_retries;
        self.dropped += other.dropped;
        self.poisoned.extend(other.poisoned);
    }

    /// Whether the soak holds the robustness contract: every request got
    /// a typed response and none of them were poisoned.
    pub fn clean(&self) -> bool {
        self.poisoned.is_empty() && self.dropped == 0
    }
}

/// One raw HTTP exchange: connect, POST `body` to `path`, return the
/// response body (the JSON document).
///
/// # Errors
///
/// Propagates connection and socket errors (including the EOF a
/// `drop-conn` fault produces).
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "POST {path} HTTP/1.0\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, payload)) if !payload.is_empty() => Ok(payload.to_owned()),
        _ => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed without a response body",
        )),
    }
}

/// Asks the daemon to drain (`POST /shutdown`).
///
/// # Errors
///
/// Propagates connection errors.
pub fn shutdown(addr: &str) -> io::Result<String> {
    post(addr, "/shutdown", "")
}

/// Sends one request with connection-retry and shed-retry handling,
/// updating `report`. Returns the final response when one arrived.
fn drive_one(
    addr: &str,
    request: &OptimizeRequest,
    max_retries: usize,
    report: &mut ClientReport,
) -> Option<OptimizeResponse> {
    let body = request.to_json();
    let mut conn_budget = max_retries;
    let mut shed_budget = 100usize;
    loop {
        let payload = match post(addr, "/optimize", &body) {
            Ok(payload) => payload,
            Err(_) if conn_budget > 0 => {
                conn_budget -= 1;
                report.conn_retries += 1;
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                report.dropped += 1;
                return None;
            }
        };
        let response = match OptimizeResponse::from_json(&payload) {
            Ok(response) => response,
            Err(reason) => {
                report
                    .poisoned
                    .push(format!("{}: {reason} in {payload:?}", request.id));
                return None;
            }
        };
        if response.id != request.id {
            report.poisoned.push(format!(
                "{}: response echoes id '{}'",
                request.id, response.id
            ));
            return None;
        }
        if response.code == "shed" && shed_budget > 0 {
            // a shed is a valid deterministic response; back off and
            // resubmit so the soak eventually serves everything
            shed_budget -= 1;
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        match response.code.as_str() {
            "ok" => report.ok += 1,
            "degraded" => report.degraded += 1,
            "shed" => report.shed += 1,
            "draining" => report.draining += 1,
            _ => report.rejected += 1,
        }
        if response.cached {
            report.cached += 1;
        }
        if response.retried {
            report.retried += 1;
        }
        return Some(response);
    }
}

/// Runs the full soak: `clients` threads, each sending `requests`
/// deterministic generated layouts, validating every response.
pub fn run_soak(cfg: &ClientConfig) -> ClientReport {
    let handles: Vec<_> = (0..cfg.clients)
        .map(|ci| {
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut report = ClientReport::default();
                let mut generator =
                    LayoutGenerator::new(GeneratorConfig::default(), cfg.seed + ci as u64);
                for (ri, layout) in generator
                    .generate_dataset(cfg.requests)
                    .into_iter()
                    .enumerate()
                {
                    let request = OptimizeRequest {
                        id: format!("c{ci}-r{ri}"),
                        layout_text: layout_io::to_string(&layout),
                        deadline_ms: cfg.deadline_ms,
                        max_iterations: cfg.max_iterations,
                        max_candidates: cfg.max_candidates,
                    };
                    report.sent += 1;
                    drive_one(&cfg.addr, &request, cfg.max_retries, &mut report);
                }
                report
            })
        })
        .collect();
    let mut total = ClientReport::default();
    for handle in handles {
        match handle.join() {
            Ok(report) => total.absorb(report),
            Err(_) => total.poisoned.push("client thread panicked".into()),
        }
    }
    total
}
