//! The serving wire protocol: one JSON request / one JSON response per
//! HTTP POST, plus the stable response-code table (DESIGN.md §16).
//!
//! A request is `POST /optimize` with a JSON body:
//!
//! ```json
//! {"id": "r1", "layout": "ldmo-layout v1\n...", "deadline_ms": 2000,
//!  "max_iterations": 6, "max_candidates": 8}
//! ```
//!
//! Only `id` and `layout` are required; `layout` embeds the standard
//! layout text format as a JSON string. Every admitted request receives
//! exactly one JSON response — the contract the chaos soak test enforces
//! is *zero* poisoned or dropped-without-response requests:
//!
//! | condition                        | status | code          |
//! |----------------------------------|--------|---------------|
//! | `OutcomeHealth::Clean`           | 200    | `ok`          |
//! | `RecoveredAfterRollback`         | 200    | `ok`          |
//! | `Degraded { .. }`                | 200    | `degraded`    |
//! | queue full (load shed)           | 429    | `shed`        |
//! | draining (shutdown in progress)  | 503    | `draining`    |
//! | `LdmoError::Usage`               | 400    | `bad-request` |
//! | `LdmoError::Parse`               | 422    | `bad-layout`  |
//! | `LdmoError::Model/Io/Trace/Fault`| 500    | `internal`    |
//!
//! Responses return masks by content hash (`mask_hash`), not by value —
//! the cache holds the pixels; the hash is what the determinism contract
//! ("bit-identical cached vs recomputed") is asserted on.

use ldmo_guard::{LdmoError, OutcomeHealth};
use ldmo_obs::json::{self, Value};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// One layout-optimization request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeRequest {
    /// Caller-chosen request id, echoed verbatim in the response.
    pub id: String,
    /// The layout in the standard text format (DESIGN.md §4).
    pub layout_text: String,
    /// Wall-clock deadline for this request, measured from admission
    /// (queue wait counts against it). `None` uses the server default.
    pub deadline_ms: Option<u64>,
    /// Override of the per-request ILT iteration cap.
    pub max_iterations: Option<usize>,
    /// Override of the decomposition candidate cap.
    pub max_candidates: Option<usize>,
}

impl OptimizeRequest {
    /// Parses the JSON request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the body is not valid JSON or
    /// is missing a required field (maps to 400 `bad-request`).
    pub fn from_json(body: &str) -> Result<OptimizeRequest, String> {
        let value = json::parse(body)?;
        let id = value
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field 'id'")?
            .to_owned();
        let layout_text = value
            .get("layout")
            .and_then(Value::as_str)
            .ok_or("missing string field 'layout'")?
            .to_owned();
        let uint = |key: &str| -> Result<Option<u64>, String> {
            match value.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| format!("field '{key}' is not a number"))?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(format!("field '{key}' is not a non-negative integer"));
                    }
                    Ok(Some(n as u64))
                }
            }
        };
        Ok(OptimizeRequest {
            id,
            layout_text,
            deadline_ms: uint("deadline_ms")?,
            max_iterations: uint("max_iterations")?.map(|n| n as usize),
            max_candidates: uint("max_candidates")?.map(|n| n as usize),
        })
    }

    /// Renders the request as its JSON body.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"layout\":\"{}\"",
            json::escape(&self.id),
            json::escape(&self.layout_text)
        );
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(n) = self.max_iterations {
            out.push_str(&format!(",\"max_iterations\":{n}"));
        }
        if let Some(n) = self.max_candidates {
            out.push_str(&format!(",\"max_candidates\":{n}"));
        }
        out.push('}');
        out
    }
}

/// One response, covering every row of the response-code table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeResponse {
    /// The request id, echoed.
    pub id: String,
    /// HTTP-style status (also the actual HTTP status of the response).
    pub status: u16,
    /// Stable machine-readable code (see the module table).
    pub code: String,
    /// Guard health verdict of the served result, when one exists.
    pub health: Option<String>,
    /// Whether the result degraded to the deterministic fallback masks.
    pub degraded: bool,
    /// Whether the result came from the content-addressed cache.
    pub cached: bool,
    /// Whether the retry-with-halved-budget path produced the result.
    pub retried: bool,
    /// EPE violations of the served masks.
    pub epe_violations: Option<u64>,
    /// ILT attempts made.
    pub attempts: Option<u64>,
    /// Decomposition candidates ranked.
    pub candidates: Option<u64>,
    /// Iterations of the accepted ILT run.
    pub iterations: Option<u64>,
    /// FNV-1a 64 content hash (hex) of the served mask pair.
    pub mask_hash: Option<String>,
    /// Human-readable detail for non-2xx responses.
    pub detail: Option<String>,
}

impl OptimizeResponse {
    /// A bare response carrying only id/status/code (+ optional detail).
    pub fn bare(id: &str, status: u16, code: &str, detail: Option<String>) -> OptimizeResponse {
        OptimizeResponse {
            id: id.to_owned(),
            status,
            code: code.to_owned(),
            health: None,
            degraded: false,
            cached: false,
            retried: false,
            epe_violations: None,
            attempts: None,
            candidates: None,
            iterations: None,
            mask_hash: None,
            detail,
        }
    }

    /// The 429-class load-shed response: deterministic, never an abort.
    pub fn shed(id: &str) -> OptimizeResponse {
        OptimizeResponse::bare(id, 429, "shed", Some("queue full, retry later".into()))
    }

    /// The 503 response for requests arriving during graceful drain.
    pub fn draining(id: &str) -> OptimizeResponse {
        OptimizeResponse::bare(id, 503, "draining", Some("server is draining".into()))
    }

    /// Maps an [`LdmoError`] to its stable response row.
    pub fn from_error(id: &str, error: &LdmoError) -> OptimizeResponse {
        let (status, code) = error_status(error);
        OptimizeResponse::bare(id, status, code, Some(error.to_string()))
    }

    /// Fills the result fields from a served outcome.
    #[allow(clippy::too_many_arguments)]
    pub fn result(
        id: &str,
        health: OutcomeHealth,
        epe_violations: usize,
        attempts: usize,
        candidates: usize,
        iterations: usize,
        mask_hash: String,
        cached: bool,
        retried: bool,
    ) -> OptimizeResponse {
        let degraded = health.is_degraded();
        OptimizeResponse {
            id: id.to_owned(),
            status: 200,
            code: if degraded { "degraded" } else { "ok" }.to_owned(),
            health: Some(health.to_string()),
            degraded,
            cached,
            retried,
            epe_violations: Some(epe_violations as u64),
            attempts: Some(attempts as u64),
            candidates: Some(candidates as u64),
            iterations: Some(iterations as u64),
            mask_hash: Some(mask_hash),
            detail: None,
        }
    }

    /// Renders the response JSON body.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"status\":{},\"code\":\"{}\",\"degraded\":{},\"cached\":{},\"retried\":{}",
            json::escape(&self.id),
            self.status,
            json::escape(&self.code),
            self.degraded,
            self.cached,
            self.retried,
        );
        if let Some(h) = &self.health {
            out.push_str(&format!(",\"health\":\"{}\"", json::escape(h)));
        }
        for (key, v) in [
            ("epe_violations", self.epe_violations),
            ("attempts", self.attempts),
            ("candidates", self.candidates),
            ("iterations", self.iterations),
        ] {
            if let Some(n) = v {
                out.push_str(&format!(",\"{key}\":{n}"));
            }
        }
        if let Some(h) = &self.mask_hash {
            out.push_str(&format!(",\"mask_hash\":\"{}\"", json::escape(h)));
        }
        if let Some(d) = &self.detail {
            out.push_str(&format!(",\"detail\":\"{}\"", json::escape(d)));
        }
        out.push('}');
        out
    }

    /// Parses and validates a response body — the client side of the
    /// "zero poisoned responses" contract. Any missing or mistyped
    /// required field is an error.
    ///
    /// # Errors
    ///
    /// Returns a reason string naming the first malformed field.
    pub fn from_json(body: &str) -> Result<OptimizeResponse, String> {
        let value = json::parse(body)?;
        let id = value
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field 'id'")?
            .to_owned();
        let status = value
            .get("status")
            .and_then(Value::as_f64)
            .ok_or("missing numeric field 'status'")? as u16;
        let code = value
            .get("code")
            .and_then(Value::as_str)
            .ok_or("missing string field 'code'")?
            .to_owned();
        const KNOWN: [&str; 7] = [
            "ok",
            "degraded",
            "shed",
            "draining",
            "bad-request",
            "bad-layout",
            "internal",
        ];
        if !KNOWN.contains(&code.as_str()) {
            return Err(format!("unknown response code '{code}'"));
        }
        let flag = |key: &str| -> Result<bool, String> {
            match value.get(key) {
                Some(Value::Bool(b)) => Ok(*b),
                _ => Err(format!("missing boolean field '{key}'")),
            }
        };
        let uint = |key: &str| value.get(key).and_then(Value::as_f64).map(|n| n as u64);
        let response = OptimizeResponse {
            id,
            status,
            code,
            health: value
                .get("health")
                .and_then(Value::as_str)
                .map(str::to_owned),
            degraded: flag("degraded")?,
            cached: flag("cached")?,
            retried: flag("retried")?,
            epe_violations: uint("epe_violations"),
            attempts: uint("attempts"),
            candidates: uint("candidates"),
            iterations: uint("iterations"),
            mask_hash: value
                .get("mask_hash")
                .and_then(Value::as_str)
                .map(str::to_owned),
            detail: value
                .get("detail")
                .and_then(Value::as_str)
                .map(str::to_owned),
        };
        // a served result (`ok` / `degraded`) must carry its result
        // fields; control rows (shed, draining, errors) legitimately
        // have none
        if matches!(response.code.as_str(), "ok" | "degraded")
            && (response.mask_hash.is_none() || response.health.is_none())
        {
            return Err(format!(
                "'{}' response missing result fields",
                response.code
            ));
        }
        Ok(response)
    }
}

/// The stable `(status, code)` row for an error (see the module table).
pub fn error_status(error: &LdmoError) -> (u16, &'static str) {
    match error {
        LdmoError::Usage { .. } => (400, "bad-request"),
        LdmoError::Parse { .. } => (422, "bad-layout"),
        LdmoError::Model { .. }
        | LdmoError::Io { .. }
        | LdmoError::Trace { .. }
        | LdmoError::Fault { .. } => (500, "internal"),
        // a degraded outcome is still a served result, not an error row —
        // callers that get here were refused a healthy-result demand
        LdmoError::Degraded { .. } => (200, "degraded"),
    }
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.0 framing (the `ldmo_obs::serve` idiom, plus bodies)
// ---------------------------------------------------------------------------

/// Requests larger than this are rejected before buffering (64 MiB would
/// let one bad client exhaust the daemon).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed inbound HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`).
    pub method: String,
    /// Request path (`/optimize`, `/shutdown`, `/healthz`).
    pub path: String,
    /// The request body (empty for GET).
    pub body: String,
}

/// Reads one HTTP request, honoring `Content-Length` (unlike the metrics
/// endpoint's single fixed read, request bodies here carry whole layouts).
///
/// # Errors
///
/// Propagates socket errors; malformed framing and oversized bodies
/// surface as [`io::ErrorKind::InvalidData`].
pub fn read_http(stream: &mut TcpStream) -> io::Result<HttpRequest> {
    let mut buf = Vec::with_capacity(2048);
    let mut chunk = [0u8; 2048];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, v)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one HTTP/1.0 response with the body and closes semantics of
/// the metrics endpoint (`Connection: close`, exact `Content-Length`).
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_http(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {len}\r\nConnection: close\r\n\r\n{body}",
        reason = reason_phrase(status),
        len = body.len(),
    )?;
    stream.flush()
}

/// Canonical reason phrase for the status codes the protocol uses.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_guard::DegradeReason;

    #[test]
    fn request_roundtrip() {
        let req = OptimizeRequest {
            id: "r-1".into(),
            layout_text: "ldmo-layout v1\nwindow 0 0 448 448\n".into(),
            deadline_ms: Some(500),
            max_iterations: Some(6),
            max_candidates: None,
        };
        let parsed = OptimizeRequest::from_json(&req.to_json()).expect("parses");
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_requires_id_and_layout() {
        assert!(OptimizeRequest::from_json("{}").is_err());
        assert!(OptimizeRequest::from_json("{\"id\":\"x\"}").is_err());
        assert!(OptimizeRequest::from_json("not json").is_err());
        assert!(
            OptimizeRequest::from_json("{\"id\":\"x\",\"layout\":\"l\",\"deadline_ms\":-1}")
                .is_err()
        );
    }

    #[test]
    fn response_roundtrip_result_row() {
        let resp = OptimizeResponse::result(
            "r-2",
            OutcomeHealth::Clean,
            3,
            1,
            8,
            6,
            "00ff00ff00ff00ff".into(),
            true,
            false,
        );
        let parsed = OptimizeResponse::from_json(&resp.to_json()).expect("parses");
        assert_eq!(parsed, resp);
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.code, "ok");
        assert!(parsed.cached);
    }

    #[test]
    fn response_code_table() {
        let degraded = OptimizeResponse::result(
            "d",
            OutcomeHealth::Degraded {
                reason: DegradeReason::BudgetExhausted,
            },
            0,
            1,
            4,
            0,
            "0".into(),
            false,
            true,
        );
        assert_eq!((degraded.status, degraded.code.as_str()), (200, "degraded"));
        assert!(degraded.degraded && degraded.retried);

        assert_eq!(
            (
                OptimizeResponse::shed("s").status,
                OptimizeResponse::shed("s").code.as_str()
            ),
            (429, "shed")
        );
        assert_eq!(OptimizeResponse::draining("d").status, 503);

        assert_eq!(error_status(&LdmoError::usage("x")), (400, "bad-request"));
        assert_eq!(
            error_status(&LdmoError::Parse {
                context: "layout".into(),
                detail: "bad".into()
            }),
            (422, "bad-layout")
        );
        assert_eq!(
            error_status(&LdmoError::Io {
                context: "disk".into(),
                source: std::io::Error::other("boom"),
            }),
            (500, "internal")
        );
        assert_eq!(
            error_status(&LdmoError::Fault {
                detail: "spec".into()
            }),
            (500, "internal")
        );
    }

    #[test]
    fn poisoned_responses_are_rejected() {
        // missing result fields on a 200
        assert!(OptimizeResponse::from_json(
            "{\"id\":\"x\",\"status\":200,\"code\":\"ok\",\"degraded\":false,\
             \"cached\":false,\"retried\":false}"
        )
        .is_err());
        // unknown code
        assert!(OptimizeResponse::from_json(
            "{\"id\":\"x\",\"status\":200,\"code\":\"weird\",\"degraded\":false,\
             \"cached\":false,\"retried\":false}"
        )
        .is_err());
        // truncated body
        assert!(OptimizeResponse::from_json("{\"id\":\"x\",\"status\":2").is_err());
    }
}
