//! The content-addressed result cache: a crash-safe single-file append
//! log (DESIGN.md §16).
//!
//! Every record is written as one contiguous frame —
//!
//! ```text
//! magic  u32  "RMDL" (LE of 0x4C444D52)
//! key    u64  canonical request key (layout + knobs, FNV-1a 64)
//! len    u32  payload length in bytes
//! sum    u64  FNV-1a 64 checksum of the payload
//! payload     dims, counters, health flag, both masks' f32 bits (LE)
//! ```
//!
//! — appended and fsync'd before the response that references it leaves
//! the server. On open the file is scanned front to back; the first
//! torn or corrupt frame (short header, short payload, bad magic, bad
//! checksum) ends the scan and the file is truncated to the last good
//! frame, so a `kill -9` mid-append costs at most the record being
//! written, never the store.
//!
//! Cache policy (the bit-identity invariant): only *usable*
//! (`Clean`/`RecoveredAfterRollback`), *non-retried* outcomes are
//! inserted. A usable first-pass outcome means no wall-clock budget
//! intervened, so the stored masks are a pure function of the canonical
//! key — recomputing the same key on any thread count or backend yields
//! bit-identical pixels. Degraded and retried outcomes are served but
//! never cached.

use ldmo_geom::Grid;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame magic ("LDMR" little-endian).
pub const CACHE_MAGIC: u32 = 0x4C44_4D52;

const HEADER_BYTES: usize = 4 + 8 + 4 + 8;

/// FNV-1a 64 over a byte stream — the workspace's canonical content hash
/// (dependency-free, stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a 64 hash over more bytes.
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The canonical request key: FNV-1a over the *canonical* layout text
/// (re-rendered, so formatting variants of the same layout collide) plus
/// the optimization knobs that change the result.
pub fn request_key(canonical_layout: &str, max_iterations: usize, max_candidates: usize) -> u64 {
    let mut h = fnv1a(canonical_layout.as_bytes());
    h = fnv1a_extend(h, &(max_iterations as u64).to_le_bytes());
    fnv1a_extend(h, &(max_candidates as u64).to_le_bytes())
}

/// Content hash of a mask pair (dims + f32 bit patterns, LE), rendered as
/// 16 hex digits. This is the value the protocol's `mask_hash` field
/// carries and the cached-vs-recomputed bit-identity is asserted on.
pub fn mask_hash(masks: &[Grid; 2]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for m in masks {
        let (w, hgt) = m.shape();
        h = fnv1a_extend(h, &(w as u64).to_le_bytes());
        h = fnv1a_extend(h, &(hgt as u64).to_le_bytes());
        for v in m.as_slice() {
            h = fnv1a_extend(h, &v.to_le_bytes());
        }
    }
    format!("{h:016x}")
}

/// One cached optimization result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// The optimized double-patterning mask pair.
    pub masks: [Grid; 2],
    /// EPE violations of the served masks.
    pub epe_violations: u32,
    /// ILT attempts the original computation made.
    pub attempts: u32,
    /// Decomposition candidates ranked.
    pub candidates: u32,
    /// Iterations of the accepted run.
    pub iterations: u32,
    /// Whether the original health was `RecoveredAfterRollback` (the only
    /// non-`Clean` health the cache admits).
    pub recovered: bool,
}

impl CachedResult {
    /// The content hash of the stored mask pair.
    pub fn mask_hash(&self) -> String {
        mask_hash(&self.masks)
    }

    fn encode(&self) -> Vec<u8> {
        let (w0, h0) = self.masks[0].shape();
        let (w1, h1) = self.masks[1].shape();
        let mut out = Vec::with_capacity(29 + 4 * (w0 * h0 + w1 * h1));
        for d in [w0, h0, w1, h1] {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for n in [
            self.epe_violations,
            self.attempts,
            self.candidates,
            self.iterations,
        ] {
            out.extend_from_slice(&n.to_le_bytes());
        }
        out.push(u8::from(self.recovered));
        for m in &self.masks {
            for v in m.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<CachedResult> {
        if payload.len() < 33 {
            return None;
        }
        let u32_at = |i: usize| u32::from_le_bytes(payload[i..i + 4].try_into().expect("4 bytes"));
        let (w0, h0) = (u32_at(0) as usize, u32_at(4) as usize);
        let (w1, h1) = (u32_at(8) as usize, u32_at(12) as usize);
        let recovered = payload[32] != 0;
        let expected = 33 + 4 * (w0 * h0 + w1 * h1);
        if payload.len() != expected {
            return None;
        }
        let mut off = 33;
        let mut read_grid = |w: usize, h: usize| -> Grid {
            let data: Vec<f32> = (0..w * h)
                .map(|i| {
                    let p = off + i * 4;
                    f32::from_le_bytes(payload[p..p + 4].try_into().expect("4 bytes"))
                })
                .collect();
            off += w * h * 4;
            Grid::from_vec(w, h, data)
        };
        let mask0 = read_grid(w0, h0);
        let mask1 = read_grid(w1, h1);
        Some(CachedResult {
            masks: [mask0, mask1],
            epe_violations: u32_at(16),
            attempts: u32_at(20),
            candidates: u32_at(24),
            iterations: u32_at(28),
            recovered,
        })
    }
}

/// What the startup scan found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid records recovered into the in-memory index.
    pub records: usize,
    /// Torn-tail bytes truncated away (0 on a clean file).
    pub truncated_bytes: u64,
}

/// The open cache: an in-memory index over the append log.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    file: File,
    index: HashMap<u64, CachedResult>,
}

impl ResultCache {
    /// Opens (or creates) the store at `path`, replaying the log and
    /// truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; corrupt *content* is repaired, not
    /// reported as an error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(ResultCache, RecoveryStats)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut index = HashMap::new();
        let mut good = 0usize;
        let mut records = 0usize;
        while bytes.len() - good >= HEADER_BYTES {
            let magic = u32::from_le_bytes(bytes[good..good + 4].try_into().expect("4 bytes"));
            let key = u64::from_le_bytes(bytes[good + 4..good + 12].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(bytes[good + 12..good + 16].try_into().expect("4 bytes"))
                as usize;
            let sum = u64::from_le_bytes(bytes[good + 16..good + 24].try_into().expect("8 bytes"));
            if magic != CACHE_MAGIC || bytes.len() - good - HEADER_BYTES < len {
                break;
            }
            let payload = &bytes[good + HEADER_BYTES..good + HEADER_BYTES + len];
            if fnv1a(payload) != sum {
                break;
            }
            let Some(result) = CachedResult::decode(payload) else {
                break;
            };
            index.insert(key, result);
            records += 1;
            good += HEADER_BYTES + len;
        }
        let truncated = (bytes.len() - good) as u64;
        if truncated > 0 {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            ResultCache { path, file, index },
            RecoveryStats {
                records,
                truncated_bytes: truncated,
            },
        ))
    }

    /// The path the store lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a result by its canonical key.
    pub fn get(&self, key: u64) -> Option<&CachedResult> {
        self.index.get(&key)
    }

    /// Appends a result (no-op if the key is already present — content
    /// addressing makes duplicates identical by construction). The frame
    /// is fsync'd before this returns: a response never references a
    /// record that a crash could lose.
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; the in-memory index is only updated
    /// after the frame is durable.
    pub fn insert(&mut self, key: u64, result: CachedResult) -> io::Result<bool> {
        if self.index.contains_key(&key) {
            return Ok(false);
        }
        let payload = result.encode();
        let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
        frame.extend_from_slice(&CACHE_MAGIC.to_le_bytes());
        frame.extend_from_slice(&key.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.index.insert(key, result);
        Ok(true)
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: f32) -> CachedResult {
        let data: Vec<f32> = (0..16).map(|i| seed + i as f32 * 0.25).collect();
        CachedResult {
            masks: [
                Grid::from_vec(4, 4, data.clone()),
                Grid::from_vec(4, 4, data),
            ],
            epe_violations: 3,
            attempts: 2,
            candidates: 8,
            iterations: 6,
            recovered: false,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ldmo-serve-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    #[test]
    fn fnv_is_stable() {
        // pinned vectors: the on-disk format must not drift silently
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"ldmo"), fnv1a(b"ldmo"));
        assert_ne!(fnv1a(b"ldmo"), fnv1a(b"ldmp"));
    }

    #[test]
    fn request_key_separates_knobs() {
        let k = request_key("layout", 6, 8);
        assert_eq!(k, request_key("layout", 6, 8));
        assert_ne!(k, request_key("layout", 7, 8));
        assert_ne!(k, request_key("layout", 6, 9));
        assert_ne!(k, request_key("tayout", 6, 8));
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = tmp("roundtrip");
        let (mut cache, stats) = ResultCache::open(&path).expect("open");
        assert_eq!(stats, RecoveryStats::default());
        assert!(cache.insert(1, sample(0.0)).expect("insert"));
        assert!(cache.insert(2, sample(1.0)).expect("insert"));
        // duplicate keys are no-ops
        assert!(!cache.insert(1, sample(9.0)).expect("insert"));
        assert_eq!(cache.len(), 2);
        drop(cache);

        let (cache, stats) = ResultCache::open(&path).expect("reopen");
        assert_eq!(stats.records, 2);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(cache.get(1), Some(&sample(0.0)));
        assert_eq!(cache.get(2), Some(&sample(1.0)));
        assert_eq!(
            cache.get(1).expect("hit").mask_hash(),
            sample(0.0).mask_hash()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let (mut cache, _) = ResultCache::open(&path).expect("open");
        cache.insert(7, sample(2.0)).expect("insert");
        drop(cache);
        let clean_len = std::fs::metadata(&path).expect("meta").len();

        // simulate a crash mid-append: a half-written second frame
        let mut f = OpenOptions::new().append(true).open(&path).expect("append");
        f.write_all(&CACHE_MAGIC.to_le_bytes()).expect("write");
        f.write_all(&[0xAB; 13]).expect("write");
        drop(f);

        let (cache, stats) = ResultCache::open(&path).expect("recover");
        assert_eq!(stats.records, 1);
        assert_eq!(stats.truncated_bytes, 17);
        assert_eq!(cache.get(7), Some(&sample(2.0)));
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), clean_len);

        // recovery is idempotent — the repaired file reopens clean
        drop(cache);
        let (_, stats) = ResultCache::open(&path).expect("reopen");
        assert_eq!(
            stats,
            RecoveryStats {
                records: 1,
                truncated_bytes: 0
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_ends_the_scan() {
        let path = tmp("checksum");
        let (mut cache, _) = ResultCache::open(&path).expect("open");
        cache.insert(1, sample(0.0)).expect("insert");
        cache.insert(2, sample(1.0)).expect("insert");
        drop(cache);

        // flip one payload byte of the *second* frame
        let mut bytes = std::fs::read(&path).expect("read");
        let frame = HEADER_BYTES + sample(0.0).encode().len();
        bytes[frame + HEADER_BYTES + 5] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");

        let (cache, stats) = ResultCache::open(&path).expect("recover");
        assert_eq!(stats.records, 1);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(cache.get(1), Some(&sample(0.0)));
        assert_eq!(cache.get(2), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mask_hash_distinguishes_shape_and_content() {
        let a = [
            Grid::from_vec(2, 2, vec![0.0; 4]),
            Grid::from_vec(2, 2, vec![0.0; 4]),
        ];
        let b = [
            Grid::from_vec(4, 1, vec![0.0; 4]),
            Grid::from_vec(2, 2, vec![0.0; 4]),
        ];
        let mut c = a.clone();
        c[1] = Grid::from_vec(2, 2, vec![0.0, 0.0, 0.0, 1.0e-7]);
        assert_eq!(mask_hash(&a), mask_hash(&a));
        assert_ne!(mask_hash(&a), mask_hash(&b), "shape must be hashed");
        assert_ne!(mask_hash(&a), mask_hash(&c), "every f32 bit counts");
    }
}
