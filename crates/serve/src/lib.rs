#![warn(missing_docs)]
//! # ldmo-serve — the fault-tolerant batch-serving daemon
//!
//! The paper's economics (a ~1 ms CNN ranking replacing ~1 s ILT probes)
//! only pay off when optimization runs as a *service*: long-lived,
//! continuously fed, batched across concurrent requests. This crate is
//! that daemon (DESIGN.md §16), built on the `ldmo_obs::serve` mini-HTTP
//! idiom and the workspace's existing robustness substrate:
//!
//! - **[`protocol`]** — one JSON request / one JSON response per POST,
//!   with the stable response-code table mapping [`ldmo_guard`]'s error
//!   taxonomy and `OutcomeHealth` onto HTTP-class codes;
//! - **[`cache`]** — a content-addressed result cache over a crash-safe
//!   single-file append log (checksummed frames, torn-tail recovery, a
//!   warm start survives `kill -9`);
//! - **[`pipeline`]** — the per-request optimize path: litho-proxy
//!   ranking (batched under the batched backend), the abort-attempt
//!   loop, per-request deadlines, retry-once-with-halved-budget, and the
//!   deterministic unoptimized-mask fallback;
//! - **[`server`]** — bounded admission with explicit load shedding,
//!   batch scheduling on the [`ldmo_par`] pool with per-request panic
//!   containment, graceful drain;
//! - **[`client`]** — the soak driver that proves the contract: N
//!   concurrent clients through any `LDMO_FAULTS` plan, zero poisoned
//!   and zero dropped-without-response requests.
//!
//! Determinism contract: a served result is a pure function of the
//! canonical layout and the optimization knobs whenever no wall-clock
//! budget intervened; only such results enter the cache, which is what
//! makes cached-vs-recomputed masks bit-identical.

pub mod cache;
pub mod client;
pub mod pipeline;
pub mod protocol;
pub mod server;

pub use cache::{mask_hash, request_key, CachedResult, RecoveryStats, ResultCache};
pub use client::{run_soak, ClientConfig, ClientReport};
pub use pipeline::{optimize_request, PipelineConfig, RequestOutcome};
pub use protocol::{OptimizeRequest, OptimizeResponse};
pub use server::{ServeConfig, Server, StatsSnapshot};
