//! The daemon: bounded admission, batched scheduling on the `ldmo-par`
//! pool, graceful drain (DESIGN.md §16).
//!
//! Two threads own everything:
//!
//! - the **accept** thread reads and parses each connection (applying the
//!   `drop-conn`/`slow-io` network faults), answers control routes
//!   inline, and admits optimization jobs into a bounded queue — a full
//!   queue is answered with the deterministic 429 `shed` row *before*
//!   admission, so overload never aborts or starves an admitted request;
//! - the **scheduler** thread pops up to `batch_max` jobs, serves cache
//!   hits, fans the misses over the global pool (panics contained per
//!   request), writes every response, and appends cacheable results.
//!
//! Graceful drain: `POST /shutdown` (the SIGTERM-equivalent) flips the
//! daemon into draining — new requests get the 503 `draining` row,
//! queued and in-flight requests finish and respond, the cache log is
//! already durable per append, and [`Server::shutdown`] joins both
//! threads. Nothing admitted is ever dropped without a response.

use crate::cache::{self, CachedResult, ResultCache};
use crate::pipeline::{self, PipelineConfig, RequestOutcome};
use crate::protocol::{self, HttpRequest, OptimizeRequest, OptimizeResponse};
use ldmo_guard::fault;
use ldmo_guard::OutcomeHealth;
use ldmo_ilt::IltContext;
use ldmo_layout::{io as layout_io, Layout};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an OS-assigned port).
    pub addr: String,
    /// Bounded admission queue capacity; a full queue sheds (429).
    pub queue_capacity: usize,
    /// Jobs the scheduler pops per batch.
    pub batch_max: usize,
    /// Default per-request deadline (measured from admission; a request
    /// may override it with `deadline_ms`). `None` disables deadlines.
    pub default_deadline: Option<Duration>,
    /// Content-addressed result cache log; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Per-request optimization knobs.
    pub pipeline: PipelineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 64,
            batch_max: 8,
            default_deadline: Some(Duration::from_secs(10)),
            cache_path: None,
            pipeline: PipelineConfig::default(),
        }
    }
}

/// Aggregate counters, published both here and as `serve.*` metrics.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Optimization requests admitted and answered.
    pub served: AtomicU64,
    /// Requests shed with 429 at admission.
    pub shed: AtomicU64,
    /// Requests refused with 503 during drain.
    pub drained: AtomicU64,
    /// Served responses flagged degraded.
    pub degraded: AtomicU64,
    /// Cache hits / misses.
    pub cache_hits: AtomicU64,
    /// Cache misses (computed fresh).
    pub cache_misses: AtomicU64,
    /// Malformed requests answered 4xx.
    pub rejected: AtomicU64,
    /// Connections dropped by the `drop-conn` fault.
    pub conn_drops: AtomicU64,
}

/// A snapshot of [`ServeStats`] for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ServeStats::served`].
    pub served: u64,
    /// See [`ServeStats::shed`].
    pub shed: u64,
    /// See [`ServeStats::drained`].
    pub drained: u64,
    /// See [`ServeStats::degraded`].
    pub degraded: u64,
    /// See [`ServeStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`ServeStats::cache_misses`].
    pub cache_misses: u64,
    /// See [`ServeStats::rejected`].
    pub rejected: u64,
    /// See [`ServeStats::conn_drops`].
    pub conn_drops: u64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            conn_drops: self.conn_drops.load(Ordering::Relaxed),
        }
    }
}

/// One admitted job: the parsed request plus the connection awaiting its
/// response and the admission instant its deadline runs from.
struct Job {
    stream: TcpStream,
    request: OptimizeRequest,
    admitted: Instant,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    notify: Condvar,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    stop: AtomicBool,
    stats: ServeStats,
}

/// A running daemon. Stop it with [`Server::shutdown`] (graceful drain);
/// dropping it without shutdown also drains.
#[derive(Debug)]
pub struct Server {
    local: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts the daemon: opens (and crash-recovers) the cache
    /// log, builds the shared `IltContext` once, and spawns the accept
    /// and scheduler threads.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-open failures.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        ldmo_obs::enable();
        let cache = match &cfg.cache_path {
            Some(path) => {
                let (cache, recovery) = ResultCache::open(path)?;
                if recovery.truncated_bytes > 0 {
                    ldmo_obs::counter("serve.cache_truncated_bytes").add(recovery.truncated_bytes);
                    eprintln!(
                        "[serve] cache recovery: {} record(s) kept, {} torn byte(s) truncated",
                        recovery.records, recovery.truncated_bytes
                    );
                }
                ldmo_obs::gauge("serve.cache_entries").set(cache.len() as f64);
                Some(cache)
            }
            None => None,
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            stats: ServeStats::default(),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_cap = cfg.queue_capacity;
        let accept = std::thread::Builder::new()
            .name("ldmo-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared, accept_cap))?;

        let sched_shared = Arc::clone(&shared);
        let sched_cfg = cfg;
        let scheduler = std::thread::Builder::new()
            .name("ldmo-serve-sched".into())
            .spawn(move || scheduler_loop(&sched_shared, &sched_cfg, cache))?;

        Ok(Server {
            local,
            shared,
            accept: Some(accept),
            scheduler: Some(scheduler),
        })
    }

    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Whether a client asked the daemon to shut down (`POST /shutdown`).
    /// The owner should then call [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop admitting (new requests answer 503), wait for
    /// every queued and in-flight request to respond, stop both threads,
    /// and return the final stats. The cache log needs no flush here —
    /// every append was already durable before its response left.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.drain_and_join();
        self.shared.stats.snapshot()
    }

    fn drain_and_join(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // wait until the queue is empty and the scheduler is idle; the
        // scheduler exits its loop when draining && empty
        self.shared.notify.notify_all();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

// ---------------------------------------------------------------------------
// Accept side
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared, capacity: usize) {
    let mut conn_index = 0usize;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let n = conn_index;
                conn_index += 1;
                // network fault injection is first-class here: drop-conn
                // closes without a byte (the peer retries), slow-io delays
                // the whole exchange
                if fault::drop_conn_at(n) {
                    shared.stats.conn_drops.fetch_add(1, Ordering::Relaxed);
                    ldmo_obs::incr("serve.conn_drops");
                    drop(stream);
                    continue;
                }
                fault::apply_slow_io(n);
                if let Err(e) = handle_conn(stream, shared, capacity) {
                    eprintln!("[serve] connection error: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("[serve] accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn respond(stream: &mut TcpStream, response: &OptimizeResponse) -> io::Result<()> {
    protocol::write_http(stream, response.status, &response.to_json())
}

fn handle_conn(mut stream: TcpStream, shared: &Shared, capacity: usize) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let admitted = Instant::now();
    let http = match protocol::read_http(&mut stream) {
        Ok(http) => http,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return respond(
                &mut stream,
                &OptimizeResponse::bare("", 400, "bad-request", Some(e.to_string())),
            );
        }
        Err(e) => return Err(e),
    };
    match (http.method.as_str(), http.path.as_str()) {
        ("POST", "/optimize") => admit(stream, shared, capacity, &http, admitted),
        ("POST", "/shutdown") => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            shared.draining.store(true, Ordering::SeqCst);
            shared.notify.notify_all();
            ldmo_obs::incr("serve.shutdowns");
            respond(
                &mut stream,
                &OptimizeResponse::bare("", 200, "draining", Some("drain started".into())),
            )
        }
        ("GET", "/healthz") => {
            let depth = shared.queue.lock().map(|q| q.len()).unwrap_or(0);
            let draining = shared.draining.load(Ordering::SeqCst);
            let body = format!(
                "{{\"code\":\"{}\",\"queue_depth\":{depth}}}",
                if draining { "draining" } else { "ok" }
            );
            protocol::write_http(&mut stream, 200, &body)
        }
        ("POST", _) | ("GET", _) => respond(
            &mut stream,
            &OptimizeResponse::bare("", 404, "bad-request", Some("unknown route".into())),
        ),
        _ => respond(
            &mut stream,
            &OptimizeResponse::bare("", 405, "bad-request", Some("POST or GET only".into())),
        ),
    }
}

fn admit(
    mut stream: TcpStream,
    shared: &Shared,
    capacity: usize,
    http: &HttpRequest,
    admitted: Instant,
) -> io::Result<()> {
    ldmo_obs::incr("serve.requests");
    let request = match OptimizeRequest::from_json(&http.body) {
        Ok(request) => request,
        Err(reason) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            ldmo_obs::incr("serve.bad_requests");
            return respond(
                &mut stream,
                &OptimizeResponse::bare("", 400, "bad-request", Some(reason)),
            );
        }
    };
    let mut queue = shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // the draining check must happen under the queue lock: the scheduler
    // only exits with the lock held, the queue empty and the flag set, so
    // a job admitted here is guaranteed a scheduler pass
    if shared.draining.load(Ordering::SeqCst) {
        drop(queue);
        shared.stats.drained.fetch_add(1, Ordering::Relaxed);
        ldmo_obs::incr("serve.draining_rejects");
        return respond(&mut stream, &OptimizeResponse::draining(&request.id));
    }
    if queue.len() >= capacity {
        drop(queue);
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        ldmo_obs::incr("serve.shed");
        return respond(&mut stream, &OptimizeResponse::shed(&request.id));
    }
    queue.push_back(Job {
        stream,
        request,
        admitted,
    });
    ldmo_obs::gauge("serve.queue_depth").set(queue.len() as f64);
    drop(queue);
    shared.notify.notify_one();
    Ok(())
}

// ---------------------------------------------------------------------------
// Scheduler side
// ---------------------------------------------------------------------------

fn scheduler_loop(shared: &Shared, cfg: &ServeConfig, mut cache: Option<ResultCache>) {
    let ctx = IltContext::new(&cfg.pipeline.ilt);
    loop {
        let batch = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while queue.is_empty() {
                if shared.draining.load(Ordering::SeqCst) {
                    return; // drained: every admitted job has responded
                }
                let (q, _) = shared
                    .notify
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = q;
            }
            let take = cfg.batch_max.max(1).min(queue.len());
            let batch: Vec<Job> = queue.drain(..take).collect();
            ldmo_obs::gauge("serve.queue_depth").set(queue.len() as f64);
            batch
        };
        process_batch(batch, shared, cfg, &ctx, cache.as_mut());
    }
}

/// What one job needs after envelope validation and cache lookup.
struct Work {
    stream: TcpStream,
    id: String,
    layout: Layout,
    key: u64,
    pcfg: PipelineConfig,
    remaining: Option<Duration>,
    admitted: Instant,
}

fn process_batch(
    batch: Vec<Job>,
    shared: &Shared,
    cfg: &ServeConfig,
    ctx: &IltContext,
    mut cache: Option<&mut ResultCache>,
) {
    let mut span = ldmo_obs::span("serve.batch");
    span.set("jobs", batch.len() as f64);
    let mut work: Vec<Work> = Vec::with_capacity(batch.len());
    for mut job in batch {
        let queue_wait = job.admitted.elapsed();
        ldmo_obs::histogram("serve.queue_wait_us").record_duration(queue_wait);
        // per-request knob overrides (bounded by the server's own config
        // so one request cannot inflate the work unit arbitrarily)
        let iters = job
            .request
            .max_iterations
            .unwrap_or(cfg.pipeline.ilt.max_iterations)
            .min(cfg.pipeline.ilt.max_iterations);
        let cands = job
            .request
            .max_candidates
            .unwrap_or(cfg.pipeline.decomp.max_candidates)
            .min(cfg.pipeline.decomp.max_candidates);
        let layout = match layout_io::from_str(&job.request.layout_text) {
            Ok(layout) => layout,
            Err(e) => {
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                ldmo_obs::incr("serve.bad_requests");
                let error =
                    ldmo_guard::LdmoError::from(e).with_context("request layout".to_owned());
                let _ = respond(
                    &mut job.stream,
                    &OptimizeResponse::from_error(&job.request.id, &error),
                );
                continue;
            }
        };
        let key = cache::request_key(&layout_io::to_string(&layout), iters, cands);
        let deadline = job
            .request
            .deadline_ms
            .map(Duration::from_millis)
            .or(cfg.default_deadline);
        let remaining = deadline.map(|d| d.saturating_sub(queue_wait));
        if let Some(hit) = cache.as_deref().and_then(|c| c.get(key)) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            ldmo_obs::incr("serve.cache_hits");
            let health = if hit.recovered {
                OutcomeHealth::RecoveredAfterRollback
            } else {
                OutcomeHealth::Clean
            };
            let _ = respond(
                &mut job.stream,
                &OptimizeResponse::result(
                    &job.request.id,
                    health,
                    hit.epe_violations as usize,
                    hit.attempts as usize,
                    hit.candidates as usize,
                    hit.iterations as usize,
                    hit.mask_hash(),
                    true,
                    false,
                ),
            );
            continue;
        }
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        ldmo_obs::incr("serve.cache_misses");
        // per-request knob overrides become a per-request config (the
        // same values the cache key hashed)
        let mut pcfg = cfg.pipeline.clone();
        pcfg.ilt.max_iterations = iters;
        pcfg.decomp.max_candidates = cands;
        work.push(Work {
            stream: job.stream,
            id: job.request.id,
            layout,
            key,
            pcfg,
            remaining,
            admitted: job.admitted,
        });
    }
    if work.is_empty() {
        return;
    }
    span.set("misses", work.len() as f64);

    let tasks: Vec<usize> = (0..work.len()).collect();
    let pool = ldmo_par::global();
    let results = pool.par_map_catching(&tasks, |&i| {
        // the serving layer's injection point for the worker-panic and
        // stall faults, keyed by batch slot like the flow's candidates
        fault::apply_stall(i);
        fault::maybe_panic(i);
        pipeline::optimize_request(&work[i].layout, &work[i].pcfg, ctx, work[i].remaining)
    });
    for (i, result) in results.into_iter().enumerate() {
        let outcome: RequestOutcome = result.unwrap_or_else(|_| {
            // a panicked worker loses one request's optimization, never
            // the daemon: rebuild the slot serially, marked degraded
            pipeline::panicked_fallback(&work[i].layout, &work[i].pcfg, ctx)
        });
        let w = &mut work[i];
        if outcome.health.is_degraded() {
            shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
        }
        // cache policy (bit-identity invariant): usable, non-retried
        // outcomes only — see the cache module docs
        if outcome.health.is_usable() && !outcome.retried {
            if let Some(cache) = cache.as_deref_mut() {
                let inserted = cache.insert(
                    w.key,
                    CachedResult {
                        masks: outcome.masks.clone(),
                        epe_violations: outcome.epe_violations as u32,
                        attempts: outcome.attempts as u32,
                        candidates: outcome.candidates as u32,
                        iterations: outcome.iterations as u32,
                        recovered: outcome.health == OutcomeHealth::RecoveredAfterRollback,
                    },
                );
                match inserted {
                    Ok(_) => ldmo_obs::gauge("serve.cache_entries").set(cache.len() as f64),
                    Err(e) => eprintln!("[serve] cache append failed: {e}"),
                }
            }
        }
        shared.stats.served.fetch_add(1, Ordering::Relaxed);
        ldmo_obs::incr("serve.responses");
        // admission → response, queue wait included: the latency a client
        // actually observes (minus the network)
        ldmo_obs::histogram("serve.request_us").record_duration(w.admitted.elapsed());
        let _ = respond(
            &mut w.stream,
            &OptimizeResponse::result(
                &w.id,
                outcome.health,
                outcome.epe_violations,
                outcome.attempts,
                outcome.candidates,
                outcome.iterations,
                cache::mask_hash(&outcome.masks),
                false,
                outcome.retried,
            ),
        );
    }
}
