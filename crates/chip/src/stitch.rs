//! Deterministic halo stitching: per-tile masks → one chip mask.

use crate::tiles::TileGrid;
use ldmo_geom::Grid;

/// Stitches per-tile double-patterning masks into chip-scale masks.
///
/// `tile_masks[i]` is tile `i`'s mask pair at the litho raster scale of
/// its (origin-translated) window, or `None` for a tile that held no
/// patterns (its owned region stays zero). Each tile writes only the
/// pixels of its own core — the ownership rule of DESIGN.md §15 — so the
/// written regions are disjoint and the result is independent of write
/// order, thread count, and tile completion order. Tiles are visited in
/// index order regardless, keeping the loop itself deterministic.
///
/// Pixel mapping matches [`ldmo_layout::Layout::grid_shape`] /
/// rasterization: `px(v) = round((v − origin) / nm_per_px)`, applied with
/// the window origin on the source side and the chip origin on the
/// destination side. Core and window edges are snapped to pixel-quantum
/// multiples by the runner, so both sides round to ranges of equal length.
///
/// # Panics
///
/// Panics if `tile_masks.len() != grid.len()` or a provided mask does not
/// cover its tile's core region.
pub fn stitch_masks(
    grid: &TileGrid,
    nm_per_px: f64,
    tile_masks: &[Option<[Grid; 2]>],
) -> [Grid; 2] {
    assert_eq!(
        tile_masks.len(),
        grid.len(),
        "one mask slot per tile required"
    );
    let chip = grid.chip();
    let px = |v: i32, origin: i32| -> usize {
        ((f64::from(v - origin) / nm_per_px).round().max(0.0)) as usize
    };
    let w = px(chip.x1, chip.x0).max(1);
    let h = px(chip.y1, chip.y0).max(1);
    let mut out = [Grid::zeros(w, h), Grid::zeros(w, h)];
    for (index, masks) in tile_masks.iter().enumerate() {
        let Some(masks) = masks else { continue };
        let tile = grid.tile(index);
        let (sx0, sx1) = (
            px(tile.core.x0, tile.window.x0),
            px(tile.core.x1, tile.window.x0),
        );
        let (sy0, sy1) = (
            px(tile.core.y0, tile.window.y0),
            px(tile.core.y1, tile.window.y0),
        );
        let (dx0, dx1) = (px(tile.core.x0, chip.x0), px(tile.core.x1, chip.x0));
        let (dy0, dy1) = (px(tile.core.y0, chip.y0), px(tile.core.y1, chip.y0));
        assert_eq!(sx1 - sx0, dx1 - dx0, "tile {index}: column count mismatch");
        assert_eq!(sy1 - sy0, dy1 - dy0, "tile {index}: row count mismatch");
        for (mask, chip_mask) in masks.iter().zip(out.iter_mut()) {
            let (mw, mh) = mask.shape();
            assert!(
                sx1 <= mw && sy1 <= mh,
                "tile {index}: mask {mw}x{mh} does not cover its core"
            );
            let src = mask.as_slice();
            let dst = chip_mask.as_mut_slice();
            for (sy, dy) in (sy0..sy1).zip(dy0..dy1) {
                let src_row = &src[sy * mw + sx0..sy * mw + sx1];
                dst[dy * w + dx0..dy * w + dx1].copy_from_slice(src_row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiles::TileGrid;
    use ldmo_geom::Rect;

    /// A synthetic mask pair for a tile: mask 0 filled with the tile's
    /// index + 1, mask 1 with its negative, sized for the tile window at
    /// `nm_per_px`.
    fn synthetic(grid: &TileGrid, index: usize, nm_per_px: f64) -> [Grid; 2] {
        let t = grid.tile(index);
        let w = (f64::from(t.window.width()) / nm_per_px).round() as usize;
        let h = (f64::from(t.window.height()) / nm_per_px).round() as usize;
        let v = (index + 1) as f32;
        [Grid::filled(w, h, v), Grid::filled(w, h, -v)]
    }

    #[test]
    fn every_chip_pixel_written_by_its_owner() {
        // 2x2 grid with partial edge tiles and a halo: after stitching
        // synthetic per-tile constants, every chip pixel carries exactly
        // its owning tile's value — each pixel written exactly once.
        let nm_per_px = 2.0;
        let grid = TileGrid::new(Rect::new(0, 0, 600, 500), 448, 90);
        let masks: Vec<_> = (0..grid.len())
            .map(|i| Some(synthetic(&grid, i, nm_per_px)))
            .collect();
        let out = stitch_masks(&grid, nm_per_px, &masks);
        assert_eq!(out[0].shape(), (300, 250));
        for y in 0..250 {
            for x in 0..300 {
                // pixel center in nm
                let (xn, yn) = ((x as f64 * 2.0) as i32, (y as f64 * 2.0) as i32);
                let owner = grid.owner_of(xn, yn);
                assert_eq!(
                    out[0].get(x, y),
                    (owner + 1) as f32,
                    "pixel ({x},{y}) not written by its owner {owner}"
                );
                assert_eq!(out[1].get(x, y), -((owner + 1) as f32));
            }
        }
    }

    #[test]
    fn one_by_n_grid_stitches_every_stripe() {
        let nm_per_px = 2.0;
        let grid = TileGrid::new(Rect::new(0, 0, 448, 1344), 448, 90);
        assert_eq!((grid.cols(), grid.rows()), (1, 3));
        let masks: Vec<_> = (0..grid.len())
            .map(|i| Some(synthetic(&grid, i, nm_per_px)))
            .collect();
        let out = stitch_masks(&grid, nm_per_px, &masks);
        for y in 0..672 {
            let owner = grid.owner_of(0, (y * 2) as i32);
            assert_eq!(out[0].get(100, y), (owner + 1) as f32, "row {y}");
        }
    }

    #[test]
    fn empty_tiles_leave_their_region_zero() {
        let nm_per_px = 2.0;
        let grid = TileGrid::new(Rect::new(0, 0, 896, 448), 448, 90);
        let masks = vec![Some(synthetic(&grid, 0, nm_per_px)), None];
        let out = stitch_masks(&grid, nm_per_px, &masks);
        assert_eq!(out[0].get(10, 10), 1.0);
        assert_eq!(out[0].get(300, 10), 0.0, "empty tile's region stays zero");
    }

    #[test]
    fn single_tile_is_an_identity_copy() {
        let nm_per_px = 2.0;
        let grid = TileGrid::new(Rect::new(0, 0, 448, 448), 448, 270);
        let m = synthetic(&grid, 0, nm_per_px);
        let out = stitch_masks(&grid, nm_per_px, &[Some(m.clone())]);
        assert_eq!(out[0], m[0]);
        assert_eq!(out[1], m[1]);
    }

    #[test]
    #[should_panic(expected = "one mask slot per tile")]
    fn wrong_slot_count_panics() {
        let grid = TileGrid::new(Rect::new(0, 0, 896, 448), 448, 90);
        let _ = stitch_masks(&grid, 2.0, &[None]);
    }
}
