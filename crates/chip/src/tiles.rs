//! Tile geometry: the core/halo grid and the pixel-ownership rule.

use ldmo_geom::Rect;
use ldmo_litho::{KernelBank, LithoConfig};

/// One tile of a [`TileGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Row-major tile index (`row * cols + col`).
    pub index: usize,
    /// The owned region (nm, chip coordinates). Cores partition the chip
    /// window exactly: half-open rects, no gaps, no overlap.
    pub core: Rect,
    /// The optimization window: the core grown by the halo on every side,
    /// clipped to the chip window. Patterns intersecting this window take
    /// part in the tile's decomposition + ILT.
    pub window: Rect,
}

/// An overlap-aware tiling of a chip window: `cols × rows` core rects of
/// up to `tile_nm` per side (edge tiles may be smaller), each optimized
/// over a window grown by `halo_nm`.
///
/// Ownership rule: a point belongs to the unique tile whose core contains
/// it ([`TileGrid::owner_of`]). Because cores partition the chip window,
/// the documented lowest-index tiebreak can never actually fire — it
/// exists so the rule stays total if the partition invariant is ever
/// relaxed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    chip: Rect,
    tile_nm: i32,
    halo_nm: i32,
    cols: usize,
    rows: usize,
}

impl TileGrid {
    /// Builds the grid for `chip` with the given tile pitch and halo.
    ///
    /// # Panics
    ///
    /// Panics if `tile_nm <= 0` or `halo_nm < 0`.
    pub fn new(chip: Rect, tile_nm: i32, halo_nm: i32) -> Self {
        assert!(tile_nm > 0, "tile size must be positive");
        assert!(halo_nm >= 0, "halo cannot be negative");
        let cols = div_ceil(chip.width(), tile_nm).max(1);
        let rows = div_ceil(chip.height(), tile_nm).max(1);
        TileGrid {
            chip,
            tile_nm,
            halo_nm,
            cols,
            rows,
        }
    }

    /// The chip window this grid tiles.
    pub fn chip(&self) -> Rect {
        self.chip
    }

    /// Tile pitch in nm (edge tiles may be narrower).
    pub fn tile_nm(&self) -> i32 {
        self.tile_nm
    }

    /// Halo width in nm.
    pub fn halo_nm(&self) -> i32 {
        self.halo_nm
    }

    /// Tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total tile count.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Whether the grid holds no tiles (never true: a non-empty chip
    /// window always yields at least one tile).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tile at row-major `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn tile(&self, index: usize) -> Tile {
        assert!(index < self.len(), "tile index out of range");
        let col = (index % self.cols) as i32;
        let row = (index / self.cols) as i32;
        let x0 = self.chip.x0 + col * self.tile_nm;
        let y0 = self.chip.y0 + row * self.tile_nm;
        let core = Rect::new(
            x0,
            y0,
            (x0 + self.tile_nm).min(self.chip.x1),
            (y0 + self.tile_nm).min(self.chip.y1),
        );
        let window = core
            .expanded(self.halo_nm)
            .intersection(&self.chip)
            .expect("core lies inside the chip window");
        Tile {
            index,
            core,
            window,
        }
    }

    /// All tiles in row-major order.
    pub fn tiles(&self) -> Vec<Tile> {
        (0..self.len()).map(|i| self.tile(i)).collect()
    }

    /// The index of the tile owning point `(x, y)` (nm, chip
    /// coordinates). Points outside the chip window are clamped to the
    /// nearest tile, so the rule is total.
    pub fn owner_of(&self, x: i32, y: i32) -> usize {
        let clamp = |v: i32, pitch: i32, n: usize| -> usize {
            if v < 0 {
                0
            } else {
                ((v / pitch) as usize).min(n - 1)
            }
        };
        let col = clamp(x - self.chip.x0, self.tile_nm, self.cols);
        let row = clamp(y - self.chip.y0, self.tile_nm, self.rows);
        row * self.cols + col
    }
}

/// `ceil(a / b)` for positive `b`.
fn div_ceil(a: i32, b: i32) -> usize {
    ((a + b - 1) / b).max(0) as usize
}

/// Rounds `v` up to the next multiple of `quantum` (≥ 1 quantum).
pub fn snap_up(v: i32, quantum: i32) -> i32 {
    let q = quantum.max(1);
    ((v.max(1) + q - 1) / q) * q
}

/// The halo width in nm for a kernel bank under `litho`: the optical
/// interaction radius (the widest kernel's support radius in pixels,
/// ~3σ of the widest Gaussian profile — [`KernelBank::interaction_radius`])
/// converted to nm and snapped up to the pixel quantum, so tile-window
/// origins stay aligned to the litho raster. Beyond this distance a mask
/// feature contributes exactly zero field, which is what makes per-tile
/// optimization physically equivalent to whole-chip optimization inside
/// each tile's core.
pub fn halo_nm(bank: &KernelBank, litho: &LithoConfig) -> i32 {
    let radius_px = bank.interaction_radius() as f64;
    let raw = (radius_px * litho.nm_per_px).ceil() as i32;
    snap_up(raw, px_quantum(litho.nm_per_px))
}

/// The nm quantum that keeps nm → px rounding exact: `nm_per_px` itself
/// when it is integral, else 1 (sub-nm scales reround per pixel).
pub(crate) fn px_quantum(nm_per_px: f64) -> i32 {
    if nm_per_px.fract() == 0.0 && nm_per_px >= 1.0 {
        nm_per_px as i32
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_partition_the_chip_exactly() {
        // every nm point owned exactly once, on a grid with partial edge
        // tiles (1000 is not a multiple of 448)
        let grid = TileGrid::new(Rect::new(0, 0, 1000, 900), 448, 270);
        let tiles = grid.tiles();
        assert_eq!(grid.cols(), 3);
        assert_eq!(grid.rows(), 3);
        let area: i64 = tiles.iter().map(|t| t.core.area()).sum();
        assert_eq!(area, grid.chip().area());
        for (i, a) in tiles.iter().enumerate() {
            assert_eq!(a.index, i);
            for b in tiles.iter().skip(i + 1) {
                assert!(
                    !a.core.intersects(&b.core),
                    "cores {} and {} overlap",
                    a.index,
                    b.index
                );
            }
        }
        // spot-scan ownership against core containment
        for y in (0..900).step_by(7) {
            for x in (0..1000).step_by(7) {
                let owner = grid.owner_of(x, y);
                assert!(
                    tiles[owner].core.contains(x, y),
                    "({x},{y}) owned by tile {owner} whose core excludes it"
                );
            }
        }
    }

    #[test]
    fn edge_tiles_are_clipped_not_dropped() {
        let grid = TileGrid::new(Rect::new(0, 0, 500, 448), 448, 100);
        assert_eq!(grid.cols(), 2);
        assert_eq!(grid.rows(), 1);
        let t = grid.tile(1);
        assert_eq!(t.core, Rect::new(448, 0, 500, 448));
        // window clipped to the chip
        assert_eq!(t.window, Rect::new(348, 0, 500, 448));
    }

    #[test]
    fn degenerate_1xn_grid_owns_every_point() {
        let grid = TileGrid::new(Rect::new(0, 0, 448, 2000), 448, 90);
        assert_eq!((grid.cols(), grid.rows()), (1, 5));
        let tiles = grid.tiles();
        for y in (0..2000).step_by(13) {
            let owner = grid.owner_of(13, y);
            assert!(tiles[owner].core.contains(13, y));
        }
        // last tile is the short one: 2000 - 4*448 = 208
        assert_eq!(tiles[4].core.height(), 208);
    }

    #[test]
    fn single_tile_grid_covers_small_chips() {
        let grid = TileGrid::new(Rect::new(0, 0, 300, 300), 448, 270);
        assert_eq!(grid.len(), 1);
        let t = grid.tile(0);
        assert_eq!(t.core, grid.chip());
        assert_eq!(t.window, grid.chip());
        assert_eq!(grid.owner_of(299, 0), 0);
    }

    #[test]
    fn owner_clamps_outside_points() {
        let grid = TileGrid::new(Rect::new(0, 0, 896, 896), 448, 90);
        assert_eq!(grid.owner_of(-5, -5), 0);
        assert_eq!(grid.owner_of(10_000, 10_000), grid.len() - 1);
    }

    #[test]
    fn window_respects_nonzero_chip_origin() {
        let grid = TileGrid::new(Rect::new(100, 100, 996, 996), 448, 50);
        let t = grid.tile(0);
        assert_eq!(t.core, Rect::new(100, 100, 548, 548));
        assert_eq!(t.window, Rect::new(100, 100, 598, 598));
        assert_eq!(grid.owner_of(100, 100), 0);
        assert_eq!(grid.owner_of(548, 100), 1);
    }

    #[test]
    fn halo_follows_the_kernel_bank() {
        let litho = LithoConfig::default();
        let bank = KernelBank::paper_bank(&litho);
        let halo = halo_nm(&bank, &litho);
        // default optics: widest kernel σ = 45 px → radius 135 px at
        // 2 nm/px = 270 nm, already a pixel multiple
        assert_eq!(
            halo,
            (bank.interaction_radius() as f64 * litho.nm_per_px).ceil() as i32
        );
        assert_eq!(halo % 2, 0, "halo must be pixel-aligned");
        // a narrower bank shrinks the halo — the rule is derived, not
        // hardcoded
        let narrow = LithoConfig {
            sigma_primary: 16.0,
            sigma_secondary: 24.0,
            ring_sigma: 20.0,
            ..litho
        };
        let narrow_bank = KernelBank::paper_bank(&narrow);
        assert!(halo_nm(&narrow_bank, &narrow) < halo);
    }

    #[test]
    fn snap_up_aligns_to_quantum() {
        assert_eq!(snap_up(270, 2), 270);
        assert_eq!(snap_up(271, 2), 272);
        assert_eq!(snap_up(1, 2), 2);
        assert_eq!(snap_up(448, 1), 448);
        assert_eq!(px_quantum(2.0), 2);
        assert_eq!(px_quantum(1.5), 1);
    }
}
