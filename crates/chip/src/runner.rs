//! The tiled chip scheduler: per-tile decomposition + ILT on the pool,
//! degradation-not-abortion failure semantics, deterministic stitching.

use crate::stitch::stitch_masks;
use crate::tiles::{halo_nm, px_quantum, snap_up, Tile, TileGrid};
use ldmo_core::score::{printability_score, ScoreWeights};
use ldmo_decomp::{generate_candidates, DecompConfig};
use ldmo_geom::Grid;
use ldmo_guard::{penalty_score, DegradeReason, OutcomeHealth};
use ldmo_ilt::{IltConfig, IltContext, IltOutcome, IltScratch, ViolationPolicy};
use ldmo_layout::{Layout, MaskAssignment};
use ldmo_litho::backend::resolved_kind;
use ldmo_litho::BackendKind;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration of a tiled chip run.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// Tile core pitch in nm (default 448, the paper's cell window; edge
    /// tiles may be smaller). Snapped up to the pixel quantum at run time.
    pub tile_nm: i32,
    /// Per-tile ILT engine config. Its [`ldmo_guard::Budget`] bounds each
    /// *tile* — a blown budget degrades that tile to its unoptimized
    /// drawn-decomposition mask instead of aborting the chip.
    pub ilt: IltConfig,
    /// Per-tile candidate generation (its `max_candidates` caps the
    /// ranking fan-out per tile).
    pub decomp: DecompConfig,
    /// Eq. 9 weights for the per-tile litho-proxy ranking.
    pub weights: ScoreWeights,
    /// Candidates attempted per tile before completing the best-ranked
    /// one without the abort policy (mirrors `FlowConfig::max_attempts`).
    pub max_attempts: usize,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            tile_nm: 448,
            ilt: IltConfig::default(),
            decomp: DecompConfig::default(),
            weights: ScoreWeights::default(),
            max_attempts: 4,
        }
    }
}

/// Wall-clock breakdown of one chip run. Mirrors `FlowTiming`: the
/// buckets sum exactly to the measured total by construction (`setup`
/// absorbs everything that is neither tile optimization nor stitching),
/// so no stage can silently fall outside all buckets. `ldmo trace
/// summarize --reconcile` checks the same identity on the `chip.run`
/// span's metadata.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChipTiming {
    /// Kernel expansion, tiling, scheduling overhead.
    pub setup: Duration,
    /// Parallel per-tile optimization (wall clock of the fan-out, not the
    /// sum of per-tile times).
    pub tiles: Duration,
    /// Stitching the per-tile masks into the chip masks.
    pub stitch: Duration,
}

impl ChipTiming {
    /// Splits a measured total into the three buckets.
    pub fn from_total(total: Duration, tiles: Duration, stitch: Duration) -> Self {
        ChipTiming {
            setup: total.saturating_sub(tiles).saturating_sub(stitch),
            tiles,
            stitch,
        }
    }

    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.setup + self.tiles + self.stitch
    }
}

/// Per-tile result summary.
#[derive(Debug, Clone)]
pub struct TileSummary {
    /// Row-major tile index.
    pub index: usize,
    /// Patterns in the tile's haloed window (owned + halo neighbours).
    pub patterns: usize,
    /// Decomposition candidates ranked for this tile.
    pub candidates: usize,
    /// ILT attempts (0 for empty tiles).
    pub attempts: usize,
    /// ILT iterations of the accepted run.
    pub iterations: usize,
    /// EPE violations on checkpoints of patterns this tile *owns* (halo
    /// neighbours are counted by their owning tile, so the chip total
    /// counts every pattern exactly once).
    pub epe_owned: usize,
    /// Guard verdict of the accepted run. `Degraded` means the tile fell
    /// back to its unoptimized drawn-decomposition mask.
    pub health: OutcomeHealth,
}

/// Result of a tiled chip run.
#[derive(Debug)]
pub struct ChipOutcome {
    /// The stitched chip-scale double-patterning masks.
    pub masks: [Grid; 2],
    /// Per-tile summaries, in row-major tile order.
    pub tiles: Vec<TileSummary>,
    /// The tile grid the run used (carries the derived halo).
    pub grid: TileGrid,
    /// Total EPE violations: the sum of [`TileSummary::epe_owned`].
    pub epe_violations: usize,
    /// Tiles that degraded to their unoptimized mask.
    pub degraded_tiles: usize,
    /// Wall-clock breakdown.
    pub timing: ChipTiming,
}

/// What one tile hands back to the stitcher.
struct TileResult {
    masks: Option<[Grid; 2]>,
    summary: TileSummary,
}

/// Runs the full tiled pipeline on `layout`: tile the window with a halo
/// derived from the kernel bank, run decomposition selection + ILT per
/// tile on the global [`ldmo_par`] pool (recycled per-worker scratch),
/// and stitch the owned core regions into one chip mask pair.
///
/// Deterministic for any thread count: tiles are keyed by index, the
/// stitcher writes disjoint owner-only regions in index order, and every
/// per-tile decision (ranking, attempts, fallbacks) is index- and
/// value-keyed, never timing-keyed.
///
/// # Panics
///
/// Panics if the layout window is empty.
pub fn run_chip(layout: &Layout, cfg: &ChipConfig) -> ChipOutcome {
    let run_start = Instant::now();
    let mut root = ldmo_obs::span("chip.run");
    let ctx = IltContext::new(&cfg.ilt);
    let quantum = px_quantum(cfg.ilt.litho.nm_per_px);
    let halo = halo_nm(ctx.bank(), &cfg.ilt.litho);
    let grid = TileGrid::new(layout.window(), snap_up(cfg.tile_nm, quantum), halo);
    let tiles = grid.tiles();
    root.set("tiles", tiles.len() as f64);

    let tiles_start = Instant::now();
    let pool = ldmo_par::global();
    let results = pool.par_map_init_catching(
        &tiles,
        || None::<IltScratch>,
        |scratch, tile| process_tile(layout, tile, &grid, cfg, &ctx, scratch),
    );
    // a panicked worker loses one tile, not the chip: rebuild that tile's
    // slot serially from its unoptimized drawn decomposition, marked
    // degraded (deterministic — keyed only on the tile index)
    let results: Vec<TileResult> = results
        .into_iter()
        .zip(&tiles)
        .map(|(r, tile)| {
            r.unwrap_or_else(|_| {
                ldmo_obs::incr("chip.tile_panics");
                panicked_tile(layout, tile, &grid, cfg, &ctx)
            })
        })
        .collect();
    let tiles_time = tiles_start.elapsed();

    let mut mask_slots: Vec<Option<[Grid; 2]>> = Vec::with_capacity(results.len());
    let mut summaries: Vec<TileSummary> = Vec::with_capacity(results.len());
    for r in results {
        mask_slots.push(r.masks);
        summaries.push(r.summary);
    }
    let stitch_start = Instant::now();
    let masks = stitch_masks(&grid, cfg.ilt.litho.nm_per_px, &mask_slots);
    let stitch_time = stitch_start.elapsed();

    let epe_violations = summaries.iter().map(|s| s.epe_owned).sum();
    let degraded_tiles = summaries.iter().filter(|s| s.health.is_degraded()).count();
    let timing = ChipTiming::from_total(run_start.elapsed(), tiles_time, stitch_time);

    if ldmo_obs::enabled() {
        let secs = tiles_time.as_secs_f64();
        if secs > 0.0 {
            ldmo_obs::gauge("chip.tiles_per_sec").set(tiles.len() as f64 / secs);
        }
    }
    root.set("degraded", degraded_tiles as f64);
    root.set("epe", epe_violations as f64);
    root.set("tiles_us", timing.tiles.as_micros() as f64);
    root.set("stitch_us", timing.stitch.as_micros() as f64);
    root.set("setup_us", timing.setup.as_micros() as f64);

    ChipOutcome {
        masks,
        tiles: summaries,
        grid,
        epe_violations,
        degraded_tiles,
        timing,
    }
}

/// Which sub-layout patterns this tile owns: a pattern belongs to the
/// tile whose core contains its center (in chip coordinates). Patterns in
/// the halo are optimized here for optical context but scored by their
/// owner, so the chip EPE total counts each exactly once.
fn owned_flags(sub: &Layout, tile: &Tile, grid: &TileGrid) -> Vec<bool> {
    sub.patterns()
        .iter()
        .map(|r| {
            let c = r.translated(tile.window.x0, tile.window.y0).center();
            grid.owner_of(c.x, c.y) == tile.index
        })
        .collect()
}

/// EPE violations restricted to owned patterns.
fn owned_epe(out: &IltOutcome, owned: &[bool]) -> usize {
    out.epe
        .sites
        .iter()
        .filter(|s| s.violation && owned.get(s.checkpoint.pattern).copied().unwrap_or(false))
        .count()
}

/// The full per-tile pipeline: extract the haloed window, generate and
/// rank decomposition candidates by the litho proxy, attempt the best
/// ones under the abort policy, fall back to completing the best-ranked
/// one, and degrade to the unoptimized drawn mask when the accepted run
/// is unhealthy (budget exhausted, divergence limit, …).
fn process_tile(
    layout: &Layout,
    tile: &Tile,
    grid: &TileGrid,
    cfg: &ChipConfig,
    ctx: &IltContext,
    scratch: &mut Option<IltScratch>,
) -> TileResult {
    // the chip fan-out's fault-injection point, keyed by tile index like
    // the flow's candidate tasks: a planned panic here is contained by
    // the catching pool map and rebuilt by `panicked_tile`
    ldmo_guard::fault::apply_stall(tile.index);
    ldmo_guard::fault::maybe_panic(tile.index);
    let mut span = ldmo_obs::span("chip.tile");
    span.set("tile", tile.index as f64);
    if ldmo_obs::enabled() {
        ldmo_obs::counter("chip.tiles").incr();
    }
    let sub = layout.extract_window(tile.window);
    span.set("patterns", sub.len() as f64);
    if sub.is_empty() {
        return TileResult {
            masks: None,
            summary: empty_summary(tile.index),
        };
    }
    let owned = owned_flags(&sub, tile, grid);
    let candidates = generate_candidates(&sub, &cfg.decomp);
    span.set("candidates", candidates.len() as f64);
    let order = rank(&sub, &candidates, cfg, ctx, scratch);

    let abort_ctx = ctx.with_config(&IltConfig {
        policy: ViolationPolicy::AbortOnViolation,
        ..cfg.ilt.clone()
    });
    let mut rejected: HashSet<MaskAssignment> = HashSet::new();
    let mut attempts = 0usize;
    let mut accepted: Option<(usize, IltOutcome)> = None;
    for &ci in order.iter().take(cfg.max_attempts.max(1)) {
        let cand = &candidates[ci];
        if rejected.contains(cand) {
            continue;
        }
        attempts += 1;
        let out = abort_ctx.optimize_reusing(&sub, cand, scratch);
        if out.aborted_at.is_none() {
            accepted = Some((ci, out));
            break;
        }
        rejected.insert(cand.clone());
    }
    let (ci, out) = accepted.unwrap_or_else(|| {
        // every attempt aborted: complete the best-ranked candidate fully
        attempts += 1;
        (
            order[0],
            ctx.optimize_reusing(&sub, &candidates[order[0]], scratch),
        )
    });

    // budget-degradation semantics: an unhealthy accepted run falls back
    // to the drawn decomposition's unoptimized mask — a safe, always-
    // printable-as-drawn result — and stays marked degraded
    let (masks, epe_owned) = if out.health.is_degraded() {
        ldmo_obs::incr("chip.tiles_degraded");
        let un = ctx.evaluate_unoptimized_reusing(&sub, &candidates[ci], scratch);
        (un.masks.clone(), owned_epe(&un, &owned))
    } else {
        (out.masks.clone(), owned_epe(&out, &owned))
    };
    span.set("iterations", out.iterations_run as f64);
    span.set("epe", epe_owned as f64);
    span.set("degraded", if out.health.is_degraded() { 1.0 } else { 0.0 });
    TileResult {
        masks: Some(masks),
        summary: TileSummary {
            index: tile.index,
            patterns: sub.len(),
            candidates: candidates.len(),
            attempts,
            iterations: out.iterations_run,
            epe_owned,
            health: out.health,
        },
    }
}

/// Litho-proxy candidate ranking for one tile (best first). Uses the
/// batched evaluator under the batched backend — one kernel-bank pass per
/// tile instead of per candidate — which is bit-identical to the
/// per-candidate path, so the ranking is backend-invariant.
fn rank(
    sub: &Layout,
    candidates: &[MaskAssignment],
    cfg: &ChipConfig,
    ctx: &IltContext,
    scratch: &mut Option<IltScratch>,
) -> Vec<usize> {
    let score = |out: &IltOutcome| -> f64 {
        if let OutcomeHealth::Degraded { reason } = out.health {
            penalty_score(reason)
        } else {
            printability_score(out, &cfg.weights)
        }
    };
    let scores: Vec<f64> = if resolved_kind() == BackendKind::Batched && candidates.len() > 1 {
        let assignments: Vec<&[u8]> = candidates.iter().map(|c| c.as_slice()).collect();
        ctx.evaluate_unoptimized_batch(sub, &assignments)
            .iter()
            .map(score)
            .collect()
    } else {
        candidates
            .iter()
            .map(|c| score(&ctx.evaluate_unoptimized_reusing(sub, c, scratch)))
            .collect()
    };
    let mut scored: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored.into_iter().map(|(i, _)| i).collect()
}

/// Serial replacement for a tile whose pool worker panicked: the first
/// generated candidate's unoptimized drawn mask, marked degraded.
fn panicked_tile(
    layout: &Layout,
    tile: &Tile,
    grid: &TileGrid,
    cfg: &ChipConfig,
    ctx: &IltContext,
) -> TileResult {
    let sub = layout.extract_window(tile.window);
    if sub.is_empty() {
        return TileResult {
            masks: None,
            summary: empty_summary(tile.index),
        };
    }
    let owned = owned_flags(&sub, tile, grid);
    let candidates = generate_candidates(&sub, &cfg.decomp);
    let out = ctx.evaluate_unoptimized(&sub, &candidates[0]);
    let epe_owned = owned_epe(&out, &owned);
    TileResult {
        masks: Some(out.masks.clone()),
        summary: TileSummary {
            index: tile.index,
            patterns: sub.len(),
            candidates: candidates.len(),
            attempts: 0,
            iterations: 0,
            epe_owned,
            health: OutcomeHealth::Degraded {
                reason: DegradeReason::WorkerPanic,
            },
        },
    }
}

fn empty_summary(index: usize) -> TileSummary {
    TileSummary {
        index,
        patterns: 0,
        candidates: 0,
        attempts: 0,
        iterations: 0,
        epe_owned: 0,
        health: OutcomeHealth::Clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    /// Narrow optics keep test tiles small and fast: σ ≤ 30 nm → ~45 px
    /// interaction radius → 90 nm halo at 2 nm/px.
    fn fast_cfg() -> ChipConfig {
        let mut cfg = ChipConfig {
            tile_nm: 224,
            ..ChipConfig::default()
        };
        cfg.ilt.max_iterations = 4;
        cfg.ilt.litho.sigma_primary = 16.0;
        cfg.ilt.litho.ring_sigma = 20.0;
        cfg.ilt.litho.sigma_secondary = 30.0;
        cfg
    }

    fn two_block_layout() -> Layout {
        // two pattern clusters in separate tiles of a 448x224 chip
        Layout::new(
            Rect::new(0, 0, 448, 224),
            vec![
                Rect::square(40, 80, 64),
                Rect::square(160, 80, 64),
                Rect::square(300, 80, 64),
            ],
        )
    }

    #[test]
    fn chip_run_covers_every_tile() {
        let layout = two_block_layout();
        let cfg = fast_cfg();
        let out = run_chip(&layout, &cfg);
        assert_eq!(out.grid.len(), 2);
        assert_eq!(out.tiles.len(), 2);
        assert_eq!(out.masks[0].shape(), (224, 112));
        // every pattern owned exactly once across tiles
        let owned_total: usize = {
            let grid = &out.grid;
            layout
                .patterns()
                .iter()
                .map(|r| {
                    let c = r.center();
                    grid.owner_of(c.x, c.y)
                })
                .count()
        };
        assert_eq!(owned_total, 3);
        assert!(out.timing.total().as_nanos() > 0);
    }

    #[test]
    fn empty_regions_yield_zero_masks() {
        let layout = Layout::new(Rect::new(0, 0, 448, 224), vec![Rect::square(40, 80, 64)]);
        let out = run_chip(&layout, &fast_cfg());
        // tile 1 (x >= 224 + halo has no patterns): its core region must
        // be zero in both masks beyond the halo-shared pattern reach
        assert_eq!(out.tiles[1].patterns, 0);
        assert_eq!(out.tiles[1].attempts, 0);
        // the empty tile's owned region stays zero in both masks
        for m in &out.masks {
            for y in 0..112 {
                for x in 112..224 {
                    assert_eq!(m.get(x, y), 0.0, "mask pixel ({x},{y}) written");
                }
            }
        }
    }

    #[test]
    fn per_tile_budget_degrades_not_aborts() {
        let layout = two_block_layout();
        let mut cfg = fast_cfg();
        cfg.ilt.budget = ldmo_guard::Budget {
            max_iterations: Some(0),
            max_wall: None,
        };
        let out = run_chip(&layout, &cfg);
        // both non-empty tiles degrade; the chip still completes with
        // drawn-decomposition masks
        assert_eq!(out.degraded_tiles, 2);
        assert!(out
            .tiles
            .iter()
            .all(|t| t.patterns == 0 || matches!(t.health, OutcomeHealth::Degraded { .. })));
        assert!(out.masks[0].sum() + out.masks[1].sum() > 0.0);
    }

    #[test]
    fn chip_epe_sums_owned_tiles() {
        let layout = two_block_layout();
        let out = run_chip(&layout, &fast_cfg());
        assert_eq!(
            out.epe_violations,
            out.tiles.iter().map(|t| t.epe_owned).sum::<usize>()
        );
    }

    #[test]
    fn run_is_repeatable_bit_exactly() {
        let layout = two_block_layout();
        let cfg = fast_cfg();
        let a = run_chip(&layout, &cfg);
        let b = run_chip(&layout, &cfg);
        assert_eq!(a.masks[0], b.masks[0]);
        assert_eq!(a.masks[1], b.masks[1]);
        assert_eq!(a.epe_violations, b.epe_violations);
    }
}
