#![warn(missing_docs)]
//! # ldmo-chip — the full-chip tiled optimization pipeline
//!
//! The paper optimizes one contact-cell window at a time; this crate
//! scales that flow to arbitrarily large layouts by tiling (DESIGN.md
//! §15). A chip window is cut into a grid of *core* rectangles that
//! partition it exactly; each core is grown by a *halo* sized from the
//! optical interaction radius of the kernel bank — beyond that radius the
//! kernels are identically zero, so patterns outside a tile's haloed
//! window contribute nothing to the print inside its core. Each tile runs
//! the full decomposition-selection + ILT flow independently on the
//! `ldmo-par` pool (recycled per-worker scratch, batched ranking under the
//! batched backend), and the per-tile masks are stitched back into one
//! chip mask under a deterministic ownership rule: every chip pixel is
//! owned by exactly one tile (the tile whose core contains it — cores
//! partition the chip, so the lowest-index tile tiebreak never actually
//! fires), and only the owner writes it. The result is bit-identical for
//! any thread count and any tile completion order.
//!
//! Per-tile failures degrade, never abort: a tile that blows its
//! [`ldmo_guard::Budget`] (or loses its worker to a panic) falls back to
//! its unoptimized drawn-decomposition mask and is reported as degraded in
//! the [`ChipOutcome`]; the rest of the chip is unaffected.

mod runner;
mod stitch;
mod tiles;

pub use runner::{run_chip, ChipConfig, ChipOutcome, ChipTiming, TileSummary};
pub use stitch::stitch_masks;
pub use tiles::{halo_nm, snap_up, Tile, TileGrid};
