#![warn(missing_docs)]
//! # ldmo-par — deterministic fork-join parallelism
//!
//! A dependency-free scoped thread pool (the build environment has no
//! crates.io access, and the vendor policy forbids rayon) built for one
//! job: fan a slice of independent work items across threads **without
//! changing a single bit of the result**.
//!
//! Determinism comes from two rules (DESIGN.md §10):
//!
//! - **Static chunking.** Items are split into contiguous chunks by index
//!   arithmetic over `(len, threads)` — never work-stealing — so which
//!   worker computes which item is a pure function of the input.
//! - **Index-keyed output, fixed-order reduction.** [`ThreadPool::par_map`]
//!   writes `result[i]` for item `i`; any cross-item reduction happens on
//!   the calling thread in item order, replaying the serial fold exactly.
//!   Together these make results identical for *any* thread count, not
//!   just reproducible at a fixed one.
//!
//! [`ThreadPool::par_map_init`] gives each participating worker an owned
//! scratch state built once per parallel region, so the workspace-reuse
//! discipline of DESIGN.md §6 (e.g. a per-worker `IltScratch`) survives
//! parallelism: workers allocate at region start, not per item.
//!
//! A pool with `threads == 1` (and any nested call from inside a worker)
//! takes the exact serial code path — a plain `iter().map()` fold with one
//! scratch state — so `--threads 1` is byte-for-byte the pre-parallel
//! engine.
//!
//! Telemetry: every top-level region adds its item count to the `par.tasks`
//! counter, and workers adopt the dispatching thread's innermost span as
//! their parent (via `ldmo_obs::adopt_parent_span`), so spans opened inside
//! parallel regions stay attached to the trace tree instead of floating at
//! the root. With the collector enabled the pool also self-profiles
//! (DESIGN.md §12): each working chunk records its busy time into the
//! `par.worker_busy_us` histogram, resident workers record the publish-to-
//! pickup latency into `par.worker_wait_us`, each region records its wall
//! time into `par.region_us`, and the `par.busy_fraction` gauge carries the
//! last region's utilization (summed busy time over `threads × wall`) — the
//! measurement the multi-core scaling analysis reads. All of it is timing
//! only: the computation and its chunking are bit-identical with profiling
//! on or off.

use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::thread;
use std::time::Instant;

/// Locks ignoring poison: the pool's mutexes only guard state that stays
/// valid across a panic (worker panics are caught before any lock is
/// touched; the one unwind-while-held is the dispatcher re-raising a
/// worker panic after the region fully completed).
fn lock_pool<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One parallel region, type-erased for broadcast to the resident workers.
/// `data` points at a stack-allocated region context on the dispatching
/// thread, which blocks until every worker reports done — the pointer never
/// outlives its referent.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    run: unsafe fn(*const (), usize, usize),
}

// The region context behind `data` only holds `Sync` references (items,
// closures) plus a results pointer written at disjoint indices.
unsafe impl Send for Job {}

struct State {
    /// Region generation counter; workers run one job per new epoch.
    epoch: u64,
    job: Option<Job>,
    /// Helpers still running the current epoch's job.
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

struct Inner {
    threads: usize,
    shared: Arc<Shared>,
    /// Serializes regions: one fork-join at a time per pool.
    region: Mutex<()>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut st = lock_pool(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in lock_pool(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

thread_local! {
    /// Set while this thread is executing a chunk of a parallel region —
    /// on resident workers *and* on the dispatching thread (which runs
    /// chunk 0 itself). Nested `par_map` calls check it and degrade to the
    /// serial path instead of deadlocking on the region lock.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

fn in_region() -> bool {
    IN_REGION.with(Cell::get)
}

fn worker_loop(shared: Arc<Shared>, index: usize, total: usize) {
    // visible to the sampling profiler even before the first span opens
    ldmo_obs::register_sampler_thread();
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_pool(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    break st.job.expect("job published with its epoch");
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        IN_REGION.with(|f| f.set(true));
        // Soundness: the dispatcher keeps the region context alive until
        // `remaining` hits 0 below.
        unsafe { (job.run)(job.data, index, total) };
        IN_REGION.with(|f| f.set(false));
        let mut st = lock_pool(&shared.state);
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Contiguous static chunk of `0..n` owned by worker `index` of `total`:
/// the first `n % total` workers get one extra item. A pure function of
/// `(n, index, total)` — the scheduling half of the determinism rule.
fn chunk_bounds(n: usize, index: usize, total: usize) -> (usize, usize) {
    let base = n / total;
    let rem = n % total;
    let start = index * base + index.min(rem);
    (start, start + base + usize::from(index < rem))
}

/// Region context for [`ThreadPool::par_map_init`], shared by reference
/// with every worker for the duration of one region.
struct MapCtx<'a, T, S, R, I, F> {
    items: &'a [T],
    /// Disjoint-index output: worker `w` writes exactly `chunk_bounds(w)`.
    out: *mut MaybeUninit<R>,
    init: &'a I,
    f: &'a F,
    /// Innermost span of the dispatching thread, adopted by workers.
    parent_span: u64,
    /// First panic payload from any worker (the dispatcher re-raises it).
    panic: &'a Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// When the region was published — resident workers measure their
    /// queue wait against it (self-profiling; only read with obs enabled).
    published: Instant,
    /// Summed per-worker busy microseconds, feeding `par.busy_fraction`.
    busy_us: &'a AtomicU64,
    _state: PhantomData<fn() -> S>,
}

unsafe fn run_map_chunk<T, S, R, I, F>(data: *const (), index: usize, total: usize)
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let ctx = unsafe { &*data.cast::<MapCtx<'_, T, S, R, I, F>>() };
    let (start, end) = chunk_bounds(ctx.items.len(), index, total);
    if start >= end {
        return;
    }
    let profiling = ldmo_obs::enabled();
    if profiling && index > 0 {
        // publish-to-pickup latency of a resident worker (the dispatcher
        // is index 0 and starts immediately)
        ldmo_obs::histogram("par.worker_wait_us")
            .record(ctx.published.elapsed().as_micros() as u64);
    }
    let chunk_start = profiling.then(Instant::now);
    let previous = (index > 0).then(|| ldmo_obs::adopt_parent_span(ctx.parent_span));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        // per-worker scratch: one init per region, reused across the chunk
        let mut state = (ctx.init)();
        for i in start..end {
            let value = (ctx.f)(&mut state, &ctx.items[i]);
            // disjoint chunks: no other worker touches slot i
            unsafe { (*ctx.out.add(i)).write(value) };
        }
    }));
    if let Some(parent) = previous {
        ldmo_obs::adopt_parent_span(parent);
    }
    if let Some(t0) = chunk_start {
        let busy = t0.elapsed().as_micros() as u64;
        ldmo_obs::histogram("par.worker_busy_us").record(busy);
        ctx.busy_us.fetch_add(busy, Ordering::Relaxed);
    }
    if let Err(payload) = result {
        let mut slot = lock_pool(ctx.panic);
        slot.get_or_insert(payload);
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A fixed-size fork-join pool. `threads - 1` resident workers are spawned
/// at construction and parked on a condvar between regions; the calling
/// thread participates as worker 0 of every region. Cloning is a cheap
/// handle copy; the workers shut down when the last handle drops.
pub struct ThreadPool {
    inner: Arc<Inner>,
}

impl Clone for ThreadPool {
    fn clone(&self) -> Self {
        ThreadPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Builds a pool of `threads` total workers (clamped to at least 1).
    /// `threads - 1` OS threads are spawned here — this is the only place
    /// the pool allocates.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ldmo-par-{index}"))
                    .spawn(move || worker_loop(shared, index, threads))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            inner: Arc::new(Inner {
                threads,
                shared,
                region: Mutex::new(()),
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Total workers, including the calling thread.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Maps `f` over `items`, preserving order: `result[i] == f(&items[i])`
    /// bit-for-bit, for any thread count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_init(items, || (), move |(), item| f(item))
    }

    /// [`ThreadPool::par_map`] with per-worker scratch: `init` runs once
    /// per participating worker at region start, and `f` receives that
    /// worker's state for every item of its chunk. `f` must use the state
    /// as *scratch only* — results must not depend on which items the
    /// state saw before (the chunking, and therefore the state history,
    /// changes with the thread count; fully-overwritten workspaces in the
    /// sense of DESIGN.md §6 satisfy this by construction).
    pub fn par_map_init<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let nested = in_region();
        if !nested && ldmo_obs::enabled() {
            ldmo_obs::counter("par.tasks").add(n as u64);
        }
        if self.inner.threads == 1 || n == 1 || nested {
            // the exact serial code path: one scratch state, a plain fold
            // in item order
            let mut state = init();
            return items.iter().map(|item| f(&mut state, item)).collect();
        }

        let mut out: Vec<MaybeUninit<R>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let panic_slot = Mutex::new(None);
        let busy_us = AtomicU64::new(0);
        let region_start = Instant::now();
        let ctx = MapCtx::<'_, T, S, R, I, F> {
            items,
            out: out.as_mut_ptr(),
            init: &init,
            f: &f,
            parent_span: ldmo_obs::current_span_id(),
            panic: &panic_slot,
            published: region_start,
            busy_us: &busy_us,
            _state: PhantomData,
        };
        let data = (&ctx as *const MapCtx<'_, T, S, R, I, F>).cast::<()>();
        let run = run_map_chunk::<T, S, R, I, F>;

        let _region = lock_pool(&self.inner.region);
        {
            let mut st = lock_pool(&self.inner.shared.state);
            st.epoch += 1;
            st.job = Some(Job { data, run });
            st.remaining = self.inner.threads - 1;
            self.inner.shared.work_cv.notify_all();
        }
        // the dispatcher works chunk 0 itself (panics are caught inside)
        IN_REGION.with(|flag| flag.set(true));
        unsafe { run(data, 0, self.inner.threads) };
        IN_REGION.with(|flag| flag.set(false));
        {
            let mut st = lock_pool(&self.inner.shared.state);
            while st.remaining > 0 {
                st = self
                    .inner
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
        }
        if ldmo_obs::enabled() {
            // region-level self-profiling: wall time plus the fraction of
            // the pool's capacity that was actually busy (1.0 = perfectly
            // utilized, low values = imbalance or item scarcity)
            let wall_us = region_start.elapsed().as_micros() as u64;
            ldmo_obs::histogram("par.region_us").record(wall_us);
            let busy = busy_us.load(Ordering::Relaxed) as f64;
            ldmo_obs::gauge("par.busy_fraction")
                .set(busy / (wall_us.max(1) as f64 * self.inner.threads as f64));
        }

        if let Some(payload) = panic_slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            // `out` drops as MaybeUninit (no R destructors run), so results
            // written before the panic leak instead of double-dropping
            panic::resume_unwind(payload);
        }
        // every slot 0..n was written by exactly one disjoint chunk
        let mut out = ManuallyDrop::new(out);
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), n, out.capacity()) }
    }
}

// ---------------------------------------------------------------------------
// Panic-catching variants
// ---------------------------------------------------------------------------

/// A worker panic caught by [`ThreadPool::par_map_catching`] /
/// [`ThreadPool::par_map_init_catching`]: the item's slot carries this
/// instead of unwinding the whole fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// Rendered panic message (best-effort downcast of the payload).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

impl ThreadPool {
    /// [`ThreadPool::par_map`], but a panicking item yields
    /// `Err(TaskPanic)` in its slot instead of unwinding the region.
    /// All other items still complete, in order, bit-identically.
    pub fn par_map_catching<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_init_catching(items, || (), move |(), item| f(item))
    }

    /// [`ThreadPool::par_map_init`] with per-item panic isolation, for
    /// fan-outs that must degrade one slot instead of aborting the run
    /// (candidate ranking, dataset labeling). After a caught panic the
    /// worker's scratch state is rebuilt with `init` — a panic can leave
    /// it half-written, and reusing it would let one bad item corrupt its
    /// chunk's remaining results.
    pub fn par_map_init_catching<T, S, R, I, F>(
        &self,
        items: &[T],
        init: I,
        f: F,
    ) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let base = items.as_ptr() as usize;
        let init = &init;
        let f = &f;
        self.par_map_init(
            items,
            || Some(init()),
            move |state, item| {
                // recover the item index from its address (static chunking
                // hands `f` items of the original slice by reference)
                let index = if size_of::<T>() == 0 {
                    0
                } else {
                    (std::ptr::from_ref(item) as usize - base) / size_of::<T>()
                };
                if state.is_none() {
                    *state = Some(init());
                }
                let scratch = state.as_mut().expect("replenished above");
                match panic::catch_unwind(AssertUnwindSafe(|| f(scratch, item))) {
                    Ok(value) => Ok(value),
                    Err(payload) => {
                        *state = None;
                        ldmo_obs::incr("par.task_panics");
                        Err(TaskPanic {
                            index,
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            },
        )
    }
}

// ---------------------------------------------------------------------------
// The process-global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<RwLock<ThreadPool>> = OnceLock::new();

fn global_cell() -> &'static RwLock<ThreadPool> {
    GLOBAL.get_or_init(|| RwLock::new(ThreadPool::new(default_threads())))
}

/// The thread count the global pool starts with: `LDMO_THREADS` when set
/// to a positive integer, otherwise `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    match std::env::var("LDMO_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// A handle to the process-global pool (created on first use).
pub fn global() -> ThreadPool {
    global_cell().read().expect("global pool lock").clone()
}

/// Thread count of the global pool.
pub fn global_threads() -> usize {
    global_cell().read().expect("global pool lock").threads()
}

/// Replaces the global pool with one of `threads` workers (clamped to at
/// least 1). Existing [`global`] handles keep their old pool; its workers
/// shut down when the last handle drops. Regions in flight on the old pool
/// finish undisturbed — swapping is safe at any time, which is what lets
/// one test process compare `--threads 1` against `--threads 4` runs.
pub fn set_global_threads(threads: usize) {
    *global_cell().write().expect("global pool lock") = ThreadPool::new(threads);
    ldmo_obs::set_run_info("threads", global_threads().to_string());
}

/// One-call CLI setup shared by the `ldmo` binary and the bench bins:
/// scans `std::env::args` for `--threads N` (last occurrence wins) and
/// resizes the global pool accordingly; without the flag the pool keeps
/// its default (`LDMO_THREADS` or `available_parallelism`). Returns the
/// resulting global thread count.
pub fn cli_setup() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut requested = None;
    for pair in args.windows(2) {
        if pair[0] == "--threads" {
            match pair[1].parse::<usize>() {
                Ok(n) if n >= 1 => requested = Some(n),
                _ => eprintln!("ignoring invalid --threads value '{}'", pair[1]),
            }
        }
    }
    if let Some(n) = requested {
        set_global_threads(n);
    }
    let threads = global_threads();
    ldmo_obs::set_run_info("threads", threads.to_string());
    threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = ThreadPool::new(4);
        let out: Vec<u64> = pool.par_map(&[], |x: &u64| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_uses_serial_path() {
        let pool = ThreadPool::new(4);
        let out = pool.par_map(&[41u64], |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.par_map(&items, |&i| i * i);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn chunking_is_invariant_across_thread_counts() {
        // a floating-point computation whose bits would drift if the
        // reduction order changed; per-item outputs must be identical
        // regardless of pool size
        let items: Vec<f32> = (0..257).map(|i| (i as f32).sin()).collect();
        let reference: Vec<f32> = items.iter().map(|&v| (v * 1.7 + 0.1).exp()).collect();
        for threads in [1, 2, 3, 4, 5, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.par_map(&items, |&v| (v * 1.7 + 0.1).exp());
            let same = out
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "bit drift at {threads} threads");
        }
    }

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for total in 1..=9 {
                let mut covered = vec![0u32; n];
                let mut last_end = 0;
                for w in 0..total {
                    let (start, end) = chunk_bounds(n, w, total);
                    assert_eq!(start, last_end, "chunks must be contiguous");
                    last_end = end;
                    for slot in &mut covered[start..end] {
                        *slot += 1;
                    }
                }
                assert_eq!(last_end, n);
                assert!(covered.iter().all(|&c| c == 1));
            }
        }
    }

    #[test]
    fn init_runs_once_per_participating_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let out = pool.par_map_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, &i| {
                scratch.clear();
                scratch.push(i);
                scratch[0] * 2
            },
        );
        assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::SeqCst), 4, "one init per worker");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&i| {
                assert!(i != 40, "injected failure");
                i
            })
        }));
        let payload = result.expect_err("panic must propagate to the dispatcher");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("injected failure"), "payload: {message}");
        // the pool must stay usable after a panicked region
        let out = pool.par_map(&items, |&i| i + 1);
        assert_eq!(out[63], 64);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let pool = ThreadPool::new(4);
        let outer: Vec<usize> = (0..8).collect();
        let out = pool.par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            // uses the same (global-style) pool from inside a region
            pool.par_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
        });
        assert_eq!(out[2], 20 + 21 + 22 + 23);
    }

    #[test]
    fn catching_map_isolates_the_panicking_slot() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let out = pool.par_map_catching(&items, |&i| {
                assert!(i != 40, "injected failure");
                i * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, slot) in out.iter().enumerate() {
                if i == 40 {
                    let err = slot.as_ref().expect_err("slot 40 must carry the panic");
                    assert_eq!(err.index, 40);
                    assert!(err.message.contains("injected failure"), "{err}");
                } else {
                    assert_eq!(*slot, Ok(i * 2), "slot {i} at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn catching_map_rebuilds_scratch_after_a_panic() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..16).collect();
        let pool = ThreadPool::new(1); // serial path: one chunk, one state
        let out = pool.par_map_init_catching(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |seen, &i| {
                *seen += 1;
                assert!(i != 5, "injected failure");
                (i, *seen)
            },
        );
        assert!(out[5].is_err());
        // item 6 must see a fresh state (count restarts at 1), proving the
        // possibly-corrupt scratch was thrown away
        assert_eq!(out[6], Ok((6, 1)));
        assert_eq!(inits.load(Ordering::SeqCst), 2, "initial + one rebuild");
    }

    #[test]
    fn global_pool_resizes() {
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        let pool = global();
        assert_eq!(pool.threads(), 3);
        set_global_threads(1);
        assert_eq!(global_threads(), 1);
        // the old handle keeps its pool
        assert_eq!(pool.threads(), 3);
        let out = pool.par_map(&[1, 2, 3], |&x: &i32| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
