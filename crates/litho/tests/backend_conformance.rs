//! Differential conformance suite for [`ldmo_litho::backend::registry`]
//! (DESIGN.md §13): every registered backend is run against the scalar
//! reference on structured fixtures (impulse, straight edge, dense
//! contacts) and proptest-random grids, and must agree within its declared
//! [`LithoBackend::max_ulps`] — 0 for every in-tree backend, so the
//! assertions below are bit-for-bit. Property tests (linearity,
//! translation equivariance, kernel symmetry) then pin the *analytic*
//! contract of the separable pass itself, on every backend.

use ldmo_geom::{Grid, Rect};
use ldmo_litho::backend::{registry, LithoBackend};
use ldmo_litho::{simulate_print, simulate_print_batch, KernelBank, LithoConfig};
use proptest::prelude::*;

/// Small odd profiles exercising symmetric, asymmetric, negative-lobe and
/// single-tap cases (the bank's own profiles are all odd-length).
fn test_profiles() -> Vec<Vec<f32>> {
    let mut profiles = vec![
        vec![1.0],
        vec![0.25, 0.5, 0.25],
        vec![0.1, 0.2, 0.4, 0.2, 0.1],
        vec![0.05, -0.15, 0.3, 0.55, 0.2, -0.1, 0.05],
    ];
    // a real optical profile from the paper bank's kernels
    let bank = KernelBank::paper_bank(&LithoConfig::default());
    let kernel = &bank.kernels()[0];
    let (_, profile) = kernel
        .components()
        .next()
        .expect("bank kernels have components");
    profiles.push(profile.to_vec());
    profiles
}

fn impulse(w: usize, h: usize) -> Grid {
    let mut g = Grid::zeros(w, h);
    g.set(w / 2, h / 2, 1.0);
    g
}

fn straight_edge(w: usize, h: usize) -> Grid {
    let mut g = Grid::zeros(w, h);
    let half = w.div_ceil(2);
    let s = g.as_mut_slice();
    for y in 0..h {
        for x in 0..half {
            s[y * w + x] = 1.0;
        }
    }
    g
}

fn dense_contacts(w: usize, h: usize) -> Grid {
    let mut g = Grid::zeros(w, h);
    let mut y = 1i32;
    while (y as usize) + 2 < h {
        let mut x = 1i32;
        while (x as usize) + 2 < w {
            g.fill_rect(&Rect::new(x, y, x + 2, y + 2), 1.0);
            x += 5;
        }
        y += 5;
    }
    g
}

fn run_backend(b: &dyn LithoBackend, input: &Grid, profile: &[f32]) -> Grid {
    let (w, h) = input.shape();
    let mut tmp = Grid::zeros(w, h);
    let mut out = Grid::zeros(w, h);
    b.convolve_separable_into(input, profile, &mut tmp, &mut out);
    out
}

/// Monotonic integer key: adjacent representable floats differ by 1.
/// `-0.0` and `+0.0` share key 0.
fn ulp_key(x: f32) -> i64 {
    let b = i64::from(x.to_bits() as i32);
    if b < 0 {
        i64::from(i32::MIN) - b
    } else {
        b
    }
}

fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    (ulp_key(a) - ulp_key(b)).unsigned_abs()
}

/// Runs `input ⊗ profile` on every registered backend and asserts each
/// agrees with the scalar reference within its declared ULP budget.
fn assert_conforms(input: &Grid, profile: &[f32], ctx: &str) {
    let all = registry();
    let reference = run_backend(all[0], input, profile);
    assert_eq!(all[0].name(), "scalar", "registry must lead with scalar");
    for backend in &all[1..] {
        let got = run_backend(*backend, input, profile);
        for (i, (g, r)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
            let ulps = ulp_distance(*g, *r);
            assert!(
                ulps <= u64::from(backend.max_ulps()),
                "{ctx}: backend '{}' diverges from scalar at index {i}: \
                 {g:e} vs {r:e} ({ulps} ulps, budget {})",
                backend.name(),
                backend.max_ulps(),
            );
        }
    }
}

/// Grid shapes covering even, odd, mixed-parity, non-square, tile-remainder
/// (not multiples of the 32-wide register block) and degenerate 1×N / N×1.
const SHAPES: [(usize, usize); 8] = [
    (64, 64),
    (33, 47),
    (31, 31),
    (40, 9),
    (1, 64),
    (64, 1),
    (1, 1),
    (3, 3),
];

#[test]
fn impulse_conforms_on_all_backends() {
    for &(w, h) in &SHAPES {
        for profile in test_profiles() {
            assert_conforms(&impulse(w, h), &profile, &format!("impulse {w}x{h}"));
        }
    }
}

#[test]
fn straight_edge_conforms_on_all_backends() {
    for &(w, h) in &SHAPES {
        for profile in test_profiles() {
            assert_conforms(
                &straight_edge(w, h),
                &profile,
                &format!("straight edge {w}x{h}"),
            );
        }
    }
}

#[test]
fn dense_contacts_conform_on_all_backends() {
    for &(w, h) in &[(64usize, 64usize), (33, 47), (96, 40)] {
        for profile in test_profiles() {
            assert_conforms(
                &dense_contacts(w, h),
                &profile,
                &format!("dense contacts {w}x{h}"),
            );
        }
    }
}

#[test]
fn full_print_is_bit_identical_across_backends() {
    // end-to-end: the entire forward model (kernel bank + resist), not
    // just one pass, agrees bitwise whichever backend runs it
    let cfg = LithoConfig::default();
    let bank = KernelBank::paper_bank(&cfg);
    let mask = dense_contacts(96, 96);
    let all = registry();
    let mut tmp = Grid::zeros(96, 96);
    let mut out = Grid::zeros(96, 96);
    // reference print under the scalar backend, via the public trait
    let reference = {
        // simulate_print routes through the process-global backend; the
        // per-pass trait calls below are backend-explicit instead
        let (_, profile) = bank.kernels()[0].components().next().expect("components");
        all[0].convolve_separable_into(&mask, profile, &mut tmp, &mut out);
        simulate_print(&mask, &bank, &cfg)
    };
    // batch path: three masks in one pass, bit-identical per mask
    let masks = vec![mask.clone(), impulse(96, 96), straight_edge(96, 96)];
    let batch = simulate_print_batch(&masks, &bank, &cfg);
    assert_eq!(batch.len(), 3);
    assert_eq!(
        batch[0].as_slice(),
        reference.as_slice(),
        "batched print diverged from sequential print"
    );
    for (mask, print) in masks.iter().zip(&batch) {
        let sequential = simulate_print(mask, &bank, &cfg);
        assert_eq!(
            print.as_slice(),
            sequential.as_slice(),
            "batched print diverged from sequential print"
        );
    }
}

// ---------------------------------------------------------------------------
// Analytic properties, asserted per backend.
// ---------------------------------------------------------------------------

#[test]
fn linearity_holds_on_all_backends() {
    // conv(a·x + b·y) == a·conv(x) + b·conv(y), up to f32 rounding
    let (w, h) = (48usize, 37usize);
    let x = dense_contacts(w, h);
    let y = straight_edge(w, h);
    let (a, b) = (0.75f32, -0.5f32);
    let combined = x
        .zip_map(&y, |xv, yv| a * xv + b * yv)
        .expect("shapes match");
    for profile in test_profiles() {
        for backend in registry() {
            let conv_combined = run_backend(*backend, &combined, &profile);
            let conv_x = run_backend(*backend, &x, &profile);
            let conv_y = run_backend(*backend, &y, &profile);
            for i in 0..w * h {
                let want = a * conv_x.as_slice()[i] + b * conv_y.as_slice()[i];
                let got = conv_combined.as_slice()[i];
                assert!(
                    (got - want).abs() < 1e-4,
                    "backend '{}' not linear at {i}: {got} vs {want}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn translation_equivariance_holds_on_all_backends() {
    // shifting an interior impulse shifts the response bit-exactly, as
    // long as neither support touches a boundary
    let (w, h) = (64usize, 64usize);
    let (dx, dy) = (3usize, 2usize);
    let mut base = Grid::zeros(w, h);
    base.set(30, 30, 1.0);
    let mut shifted = Grid::zeros(w, h);
    shifted.set(30 + dx, 30 + dy, 1.0);
    for profile in test_profiles() {
        let r = profile.len() / 2;
        let margin = r + 1;
        // the bank's widest profile exceeds the grid: nothing to check
        // there (the small profiles cover the property)
        let y_end = (h - dy).saturating_sub(margin);
        let x_end = (w - dx).saturating_sub(margin);
        for backend in registry() {
            let out_base = run_backend(*backend, &base, &profile);
            let out_shifted = run_backend(*backend, &shifted, &profile);
            for y in margin..y_end {
                for x in margin..x_end {
                    assert_eq!(
                        out_shifted.get(x + dx, y + dy).to_bits(),
                        out_base.get(x, y).to_bits(),
                        "backend '{}' not translation-equivariant at ({x},{y})",
                        backend.name()
                    );
                }
            }
        }
    }
}

#[test]
fn symmetric_kernel_preserves_symmetry_on_all_backends() {
    // a symmetric profile applied to a centered impulse yields a response
    // symmetric about the center, bit-exactly, on every backend
    let side = 33usize; // odd: exact center pixel
    let c = side / 2;
    let input = impulse(side, side);
    let profile = [0.05f32, 0.2, 0.5, 0.2, 0.05];
    let r = profile.len() / 2;
    for backend in registry() {
        let out = run_backend(*backend, &input, &profile);
        for dy in 0..=r {
            for dx in 0..=r {
                let a = out.get(c + dx, c + dy);
                for (x, y) in [(c - dx, c + dy), (c + dx, c - dy), (c - dx, c - dy)] {
                    assert_eq!(
                        a.to_bits(),
                        out.get(x, y).to_bits(),
                        "backend '{}' broke symmetry at offset ({dx},{dy})",
                        backend.name()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_grids_conform_on_all_backends(
        w in 1usize..40,
        h in 1usize..40,
        vals in proptest::collection::vec(-1.0f32..1.0, 1600),
        taps in proptest::collection::vec(-0.5f32..0.5, 13),
        half_width in 0usize..6,
    ) {
        let grid = Grid::from_vec(w, h, vals[..w * h].to_vec());
        let profile = &taps[..2 * half_width + 1];
        assert_conforms(&grid, profile, &format!("proptest {w}x{h}"));
    }
}
