//! Scalar printability metrics: L2 error (paper Definition 2) and a process
//! variation band helper used by the extension benches.

use ldmo_geom::Grid;

/// L2 error `‖T − T′‖²` between the printed image `t` and target `t_target`
/// (paper Definition 2). This is the quantity ILT minimizes each iteration.
///
/// # Panics
///
/// Panics if the grids have different shapes.
pub fn l2_error(t: &Grid, t_target: &Grid) -> f64 {
    t.l2_dist_sq(t_target)
        .expect("printed and target images must share a shape")
}

/// Area (in px = nm²) of the process-variation band: pixels whose printed
/// state differs between an outer (high-dose) and inner (low-dose) print.
/// Both grids are binarized at `level` first.
///
/// # Panics
///
/// Panics if the grids have different shapes.
pub fn pvband_area(outer: &Grid, inner: &Grid, level: f32) -> usize {
    let bo = outer.binarize(level);
    let bi = inner.binarize(level);
    bo.as_slice()
        .iter()
        .zip(bi.as_slice())
        .filter(|(a, b)| a != b)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    #[test]
    fn l2_error_zero_on_identical() {
        let g = Grid::filled(8, 8, 0.7);
        assert_eq!(l2_error(&g, &g), 0.0);
    }

    #[test]
    fn l2_error_counts_differences() {
        let a = Grid::zeros(4, 4);
        let mut b = Grid::zeros(4, 4);
        b.set(0, 0, 1.0);
        b.set(1, 1, 1.0);
        assert!((l2_error(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pvband_is_symmetric_difference() {
        let mut outer = Grid::zeros(16, 16);
        outer.fill_rect(&Rect::new(2, 2, 10, 10), 1.0); // 64 px
        let mut inner = Grid::zeros(16, 16);
        inner.fill_rect(&Rect::new(4, 4, 8, 8), 1.0); // 16 px inside outer
        assert_eq!(pvband_area(&outer, &inner, 0.5), 64 - 16);
        assert_eq!(pvband_area(&outer, &outer, 0.5), 0);
    }
}
