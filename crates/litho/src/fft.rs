//! Radix-2 FFT and FFT-based convolution.
//!
//! The separable path in [`crate::convolve_separable`] is the production
//! fast path for Gaussian kernels; the FFT path exists for large or
//! non-separable kernels and as an independent oracle in tests/benches
//! (`ablation: direct vs FFT crossover` in DESIGN.md §4).

use ldmo_geom::Grid;

/// A complex number over `f64`, minimal API for FFT work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Complex addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse = true` computes the unscaled inverse transform; the caller is
/// responsible for dividing by `n` (done by [`ifft2d`]).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward 2-D FFT of a real grid, zero-padded up to `(nw, nh)` (both must be
/// powers of two and at least the grid size). Returns row-major complex data.
///
/// # Panics
///
/// Panics if `nw`/`nh` are not powers of two or smaller than the grid.
pub fn fft2d(grid: &Grid, nw: usize, nh: usize) -> Vec<Complex> {
    let (w, h) = grid.shape();
    assert!(nw.is_power_of_two() && nh.is_power_of_two());
    assert!(nw >= w && nh >= h, "padded size must cover the grid");
    let mut data = vec![Complex::default(); nw * nh];
    for y in 0..h {
        for x in 0..w {
            data[y * nw + x] = Complex::new(f64::from(grid.get(x, y)), 0.0);
        }
    }
    fft2d_complex(&mut data, nw, nh, false);
    data
}

/// Inverse 2-D FFT; returns the real part cropped to `(w, h)` and scaled by
/// `1 / (nw · nh)`.
pub fn ifft2d(data: &mut [Complex], nw: usize, nh: usize, w: usize, h: usize) -> Grid {
    fft2d_complex(data, nw, nh, true);
    let scale = 1.0 / (nw * nh) as f64;
    let mut out = Grid::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, (data[y * nw + x].re * scale) as f32);
        }
    }
    out
}

fn fft2d_complex(data: &mut [Complex], nw: usize, nh: usize, inverse: bool) {
    // rows
    for y in 0..nh {
        fft_inplace(&mut data[y * nw..(y + 1) * nw], inverse);
    }
    // columns, via a scratch buffer
    let mut col = vec![Complex::default(); nh];
    for x in 0..nw {
        for y in 0..nh {
            col[y] = data[y * nw + x];
        }
        fft_inplace(&mut col, inverse);
        for y in 0..nh {
            data[y * nw + x] = col[y];
        }
    }
}

/// FFT-based "same" convolution with zero padding, matching the semantics of
/// [`crate::convolve2d_direct`] (centered, odd-sized kernel).
///
/// # Panics
///
/// Panics if the kernel is even-sized or the buffer length mismatches.
pub fn convolve2d_fft(input: &Grid, kernel: &[f32], kw: usize, kh: usize) -> Grid {
    assert_eq!(kernel.len(), kw * kh, "kernel buffer length mismatch");
    assert!(kw % 2 == 1 && kh % 2 == 1, "kernel must be odd-sized");
    let (w, h) = input.shape();
    let nw = (w + kw).next_power_of_two();
    let nh = (h + kh).next_power_of_two();
    let mut fa = fft2d(input, nw, nh);
    // embed kernel centered at origin with wrap-around so "same" output
    // lands at the input coordinates directly.
    let mut kdata = vec![Complex::default(); nw * nh];
    let (cx, cy) = (kw / 2, kh / 2);
    for ky in 0..kh {
        for kx in 0..kw {
            let dx = kx as i64 - cx as i64;
            let dy = ky as i64 - cy as i64;
            let px = dx.rem_euclid(nw as i64) as usize;
            let py = dy.rem_euclid(nh as i64) as usize;
            kdata[py * nw + px] = Complex::new(f64::from(kernel[ky * kw + kx]), 0.0);
        }
    }
    fft2d_complex(&mut kdata, nw, nh, false);
    for (a, b) in fa.iter_mut().zip(&kdata) {
        *a = a.mul(*b);
    }
    ifft2d(&mut fa, nw, nh, w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolve2d_direct;
    use proptest::prelude::*;

    #[test]
    fn fft_roundtrip_1d() {
        let src = [1.0, 2.0, -0.5, 0.25, 0.0, 3.0, -1.0, 0.5];
        let mut data: Vec<Complex> = src.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (d, &s) in data.iter().zip(&src) {
            assert!((d.re / 8.0 - s).abs() < 1e-12);
            assert!((d.im / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut data, false);
        for d in &data {
            assert!((d.re - 1.0).abs() < 1e-12 && d.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 6];
        fft_inplace(&mut data, false);
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let mut g = Grid::zeros(10, 6);
        g.set(3, 2, 1.0);
        g.set(9, 5, 2.0);
        g.set(0, 0, -1.5);
        let kernel = [0.05f32, 0.1, 0.05, 0.1, 0.4, 0.1, 0.05, 0.1, 0.05];
        let a = convolve2d_direct(&g, &kernel, 3, 3);
        let b = convolve2d_fft(&g, &kernel, 3, 3);
        for y in 0..6 {
            for x in 0..10 {
                assert!(
                    (a.get(x, y) - b.get(x, y)).abs() < 1e-5,
                    "mismatch at ({x},{y}): {} vs {}",
                    a.get(x, y),
                    b.get(x, y)
                );
            }
        }
    }

    proptest! {
        #[test]
        fn fft_conv_equals_direct_random(
            vals in proptest::collection::vec(-1.0f32..1.0, 48),
            kvals in proptest::collection::vec(-0.5f32..0.5, 9),
        ) {
            let g = Grid::from_vec(8, 6, vals);
            let a = convolve2d_direct(&g, &kvals, 3, 3);
            let b = convolve2d_fft(&g, &kvals, 3, 3);
            for i in 0..48 {
                prop_assert!((a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-4);
            }
        }

        #[test]
        fn parseval_energy_preserved(vals in proptest::collection::vec(-1.0f64..1.0, 16)) {
            let mut data: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let time_energy: f64 = vals.iter().map(|v| v * v).sum();
            fft_inplace(&mut data, false);
            let freq_energy: f64 = data.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / 16.0;
            prop_assert!((time_energy - freq_energy).abs() < 1e-9);
        }
    }
}
