//! Reusable scratch buffers for the litho/ILT hot path.
//!
//! The forward model and the ILT gradient are evaluated hundreds of times
//! per testcase on grids of a fixed shape. The `*_into` function variants
//! across this crate (and `ldmo-ilt`) write into caller-owned buffers
//! instead of allocating, and the scratch grids they need between stages
//! live here, so a whole ILT session can run allocation-free after its
//! buffers are built once.
//!
//! Ownership convention (DESIGN.md §6): the *caller at the top of the hot
//! loop* owns one [`LithoWorkspace`] (plus its output buffers) and threads
//! `&mut` borrows down; `*_into` functions never allocate and never resize.
//! The pre-existing allocating functions remain as thin wrappers that build
//! a transient workspace, so every caller outside the hot loop keeps its
//! one-line API.
//!
//! Scratch contents are unspecified between calls: every `*_into` function
//! fully overwrites what it reads from its scratch before using it, which
//! is also what makes the buffer-reuse path bit-for-bit identical to the
//! allocating path (a freshly zeroed buffer and a `fill(0.0)`-ed one are
//! indistinguishable).

use ldmo_geom::Grid;

/// Scratch grids for separable convolution ([`crate::convolve_separable_into`])
/// and kernel evaluation ([`crate::CoherentKernel::field_into`]).
#[derive(Debug, Clone)]
pub struct ConvScratch {
    /// Row-pass intermediate of a separable convolution.
    pub tmp: Grid,
    /// Per-component separable result, accumulated into a kernel's field.
    pub part: Grid,
}

impl ConvScratch {
    /// Allocates scratch for `width × height` grids.
    pub fn new(width: usize, height: usize) -> Self {
        ConvScratch {
            tmp: Grid::zeros(width, height),
            part: Grid::zeros(width, height),
        }
    }

    /// `(width, height)` the scratch was allocated for.
    pub fn shape(&self) -> (usize, usize) {
        self.tmp.shape()
    }
}

/// Scratch grids for the ILT L2 gradient (`ldmo-ilt::l2_gradient_multi_into`).
///
/// Separate from [`ConvScratch`] so a gradient routine can hold `&mut`
/// borrows of both halves of a [`LithoWorkspace`] at once (the
/// back-projection reads `weighted` while writing `back` through the
/// convolution scratch).
#[derive(Debug, Clone)]
pub struct GradScratch {
    /// `∂L/∂T`, gated by the min branch — shared across masks.
    pub dl_dt: Grid,
    /// `∂L/∂I_i` for the mask currently being differentiated.
    pub g_int: Grid,
    /// `g_int ⊙ field_k`, the back-projection input.
    pub weighted: Grid,
    /// Back-projection output before weight accumulation.
    pub back: Grid,
}

impl GradScratch {
    /// Allocates scratch for `width × height` grids.
    pub fn new(width: usize, height: usize) -> Self {
        GradScratch {
            dl_dt: Grid::zeros(width, height),
            g_int: Grid::zeros(width, height),
            weighted: Grid::zeros(width, height),
            back: Grid::zeros(width, height),
        }
    }
}

/// All intermediate grids one litho/ILT evaluation needs, allocated once.
#[derive(Debug, Clone)]
pub struct LithoWorkspace {
    /// Convolution/kernel scratch.
    pub conv: ConvScratch,
    /// Gradient scratch.
    pub grad: GradScratch,
}

impl LithoWorkspace {
    /// Allocates a workspace for `width × height` grids.
    pub fn new(width: usize, height: usize) -> Self {
        LithoWorkspace {
            conv: ConvScratch::new(width, height),
            grad: GradScratch::new(width, height),
        }
    }

    /// `(width, height)` the workspace was allocated for.
    pub fn shape(&self) -> (usize, usize) {
        self.conv.shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_allocates_requested_shape() {
        let ws = LithoWorkspace::new(7, 3);
        assert_eq!(ws.shape(), (7, 3));
        assert_eq!(ws.conv.tmp.shape(), (7, 3));
        assert_eq!(ws.grad.back.shape(), (7, 3));
    }
}
