//! Connected-component labeling of binarized printed images, used by the
//! print-violation detector (bridging / missing patterns).

use ldmo_geom::Grid;

/// Result of 4-connected component labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    width: usize,
    height: usize,
    /// Per-pixel label; `0` means background, components are `1..=count`.
    labels: Vec<u32>,
    /// Number of foreground components.
    count: u32,
}

impl ComponentLabels {
    /// Number of foreground components.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Label at `(x, y)` (`0` = background).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn label(&self, x: usize, y: usize) -> u32 {
        assert!(x < self.width && y < self.height, "index out of bounds");
        self.labels[y * self.width + x]
    }

    /// Pixel area of component `id` (1-based).
    pub fn area(&self, id: u32) -> usize {
        self.labels.iter().filter(|&&l| l == id).count()
    }

    /// Raw label buffer (row-major).
    pub fn as_slice(&self) -> &[u32] {
        &self.labels
    }
}

/// Labels 4-connected components of pixels where `grid >= level`.
///
/// ```
/// use ldmo_geom::{Grid, Rect};
/// use ldmo_litho::label_components;
///
/// let mut g = Grid::zeros(16, 16);
/// g.fill_rect(&Rect::new(1, 1, 4, 4), 1.0);
/// g.fill_rect(&Rect::new(8, 8, 12, 12), 1.0);
/// assert_eq!(label_components(&g, 0.5).count(), 2);
/// ```
pub fn label_components(grid: &Grid, level: f32) -> ComponentLabels {
    let (w, h) = grid.shape();
    let mut labels = vec![0u32; w * h];
    let mut count = 0u32;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for sy in 0..h {
        for sx in 0..w {
            let idx = sy * w + sx;
            if labels[idx] != 0 || grid.as_slice()[idx] < level {
                continue;
            }
            count += 1;
            labels[idx] = count;
            stack.push((sx, sy));
            while let Some((x, y)) = stack.pop() {
                let mut visit = |nx: usize, ny: usize| {
                    let nidx = ny * w + nx;
                    if labels[nidx] == 0 && grid.as_slice()[nidx] >= level {
                        labels[nidx] = count;
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    visit(x - 1, y);
                }
                if x + 1 < w {
                    visit(x + 1, y);
                }
                if y > 0 {
                    visit(x, y - 1);
                }
                if y + 1 < h {
                    visit(x, y + 1);
                }
            }
        }
    }
    ComponentLabels {
        width: w,
        height: h,
        labels,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    #[test]
    fn empty_grid_has_no_components() {
        let g = Grid::zeros(8, 8);
        assert_eq!(label_components(&g, 0.5).count(), 0);
    }

    #[test]
    fn single_blob() {
        let mut g = Grid::zeros(8, 8);
        g.fill_rect(&Rect::new(2, 2, 6, 6), 1.0);
        let c = label_components(&g, 0.5);
        assert_eq!(c.count(), 1);
        assert_eq!(c.area(1), 16);
        assert_eq!(c.label(3, 3), 1);
        assert_eq!(c.label(0, 0), 0);
    }

    #[test]
    fn diagonal_blobs_are_separate() {
        // 4-connectivity: diagonal adjacency does not merge
        let mut g = Grid::zeros(4, 4);
        g.set(0, 0, 1.0);
        g.set(1, 1, 1.0);
        assert_eq!(label_components(&g, 0.5).count(), 2);
    }

    #[test]
    fn touching_blobs_merge() {
        let mut g = Grid::zeros(8, 8);
        g.fill_rect(&Rect::new(0, 0, 4, 4), 1.0);
        g.fill_rect(&Rect::new(3, 3, 8, 8), 1.0); // overlaps one pixel
        assert_eq!(label_components(&g, 0.5).count(), 1);
    }

    #[test]
    fn level_respected() {
        let mut g = Grid::zeros(4, 4);
        g.set(1, 1, 0.4);
        g.set(2, 2, 0.6);
        let c = label_components(&g, 0.5);
        assert_eq!(c.count(), 1);
        assert_eq!(c.label(1, 1), 0);
        assert_eq!(c.label(2, 2), 1);
    }

    #[test]
    fn large_snake_does_not_overflow_stack() {
        // worst case flood fill on a serpentine pattern
        let mut g = Grid::zeros(64, 64);
        for y in 0..64 {
            if y % 2 == 0 {
                g.fill_rect(&Rect::new(0, y, 63, y + 1), 1.0);
            } else if (y / 2) % 2 == 0 {
                g.fill_rect(&Rect::new(62, y, 63, y + 1), 1.0);
            } else {
                g.fill_rect(&Rect::new(0, y, 1, y + 1), 1.0);
            }
        }
        let c = label_components(&g, 0.5);
        assert_eq!(c.count(), 1);
    }
}
