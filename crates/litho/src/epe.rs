//! Edge placement error (paper Definition 1).
//!
//! Checkpoints are sampled along each target edge; at each checkpoint the
//! printed contour (level 0.5 of the resist image) is located along the
//! edge's outward normal, and the signed displacement is the EPE. A
//! checkpoint whose `|EPE|` exceeds the threshold (10 nm in the paper)
//! counts as an EPE violation — the paper's headline metric ("EPE #").

use crate::LithoConfig;
use ldmo_geom::{Grid, Rect, Vec2};

/// Where and how a single EPE measurement was taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpeCheckpoint {
    /// Sub-pixel position of the checkpoint on the target edge.
    pub pos: Vec2,
    /// Outward normal of the target edge at the checkpoint.
    pub normal: Vec2,
    /// Index of the target pattern the edge belongs to.
    pub pattern: usize,
}

/// One EPE measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpeSite {
    /// The checkpoint measured.
    pub checkpoint: EpeCheckpoint,
    /// Signed EPE in nm: positive = printed edge lies outside the target
    /// (over-print), negative = inside (under-print / necking).
    pub epe_nm: f64,
    /// Whether `|EPE|` exceeds the configured threshold.
    pub violation: bool,
}

/// Aggregated EPE measurement over a full layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpeReport {
    /// All individual measurements.
    pub sites: Vec<EpeSite>,
}

impl EpeReport {
    /// Number of violating checkpoints — the paper's "EPE #".
    pub fn violations(&self) -> usize {
        self.sites.iter().filter(|s| s.violation).count()
    }

    /// Largest absolute EPE over all checkpoints (0 when empty).
    pub fn max_abs_nm(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.epe_nm.abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute EPE (0 when empty).
    pub fn mean_abs_nm(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites.iter().map(|s| s.epe_nm.abs()).sum::<f64>() / self.sites.len() as f64
    }
}

/// Generates the checkpoints for a set of target rectangles: points spaced
/// `cfg.epe_sample_step_nm` apart along every edge (at least one per edge,
/// at the edge midpoint), excluding the corner neighbourhoods where EPE is
/// ill-defined.
pub fn checkpoints_for(targets: &[Rect], cfg: &LithoConfig) -> Vec<EpeCheckpoint> {
    let step = cfg.epe_sample_step_nm.max(1);
    let mut pts = Vec::new();
    for (pi, r) in targets.iter().enumerate() {
        // (start, end, fixed coordinate, axis, outward normal)
        let edges = [
            // bottom edge: y = y0, normal (0, -1)
            (r.x0, r.x1, r.y0, true, Vec2::new(0.0, -1.0)),
            // top edge: y = y1, normal (0, +1)
            (r.x0, r.x1, r.y1, true, Vec2::new(0.0, 1.0)),
            // left edge: x = x0, normal (-1, 0)
            (r.y0, r.y1, r.x0, false, Vec2::new(-1.0, 0.0)),
            // right edge: x = x1, normal (+1, 0)
            (r.y0, r.y1, r.x1, false, Vec2::new(1.0, 0.0)),
        ];
        for (a, b, fixed, horizontal, normal) in edges {
            let len = b - a;
            // keep the configured corner margin at both ends (capped so
            // short edges still get a midpoint checkpoint)
            let margin = cfg.epe_corner_margin_nm.max(step / 2).min(len / 3);
            let lo = a + margin;
            let hi = b - margin;
            let span = hi - lo;
            let n = (span / step).max(0) as usize + 1;
            for k in 0..n {
                let t = if n == 1 {
                    f64::from(lo) + f64::from(span) / 2.0
                } else {
                    f64::from(lo) + f64::from(span) * k as f64 / (n - 1) as f64
                };
                let pos = if horizontal {
                    Vec2::new(t, f64::from(fixed))
                } else {
                    Vec2::new(f64::from(fixed), t)
                };
                pts.push(EpeCheckpoint {
                    pos,
                    normal,
                    pattern: pi,
                });
            }
        }
    }
    pts
}

/// Measures EPE of `printed` against `targets` per the paper's Definition 1.
///
/// The printed contour is located by marching along each checkpoint's normal
/// from `-search` (inside) to `+search` (outside) in quarter-pixel steps and
/// finding the crossing of `cfg.print_level`. If the contour is not found —
/// the pattern failed to print at all, or bloated beyond the search window —
/// the EPE saturates at `±search` and counts as a violation.
///
/// Geometry (`targets`, EPE values) is in nm; `printed` is a raster at
/// `cfg.nm_per_px` nm per pixel.
///
/// ```
/// use ldmo_geom::{Grid, Rect};
/// use ldmo_litho::{measure_epe, LithoConfig};
///
/// let cfg = LithoConfig { nm_per_px: 1.0, ..LithoConfig::default() };
/// let target = Rect::new(20, 20, 60, 60);
/// // a "perfect" print: the binary target itself
/// let mut printed = Grid::zeros(80, 80);
/// printed.fill_rect(&target, 1.0);
/// let report = measure_epe(&printed, &[target], &cfg);
/// assert_eq!(report.violations(), 0);
/// assert!(report.max_abs_nm() <= 1.0);
/// ```
pub fn measure_epe(printed: &Grid, targets: &[Rect], cfg: &LithoConfig) -> EpeReport {
    let search = 2.0 * cfg.epe_threshold_nm;
    let level = cfg.print_level;
    let step = 0.25f64 * cfg.nm_per_px;
    let scale = cfg.nm_per_px;
    let sites = checkpoints_for(targets, cfg)
        .into_iter()
        .map(|cp| {
            let mut epe = None;
            let mut s = -search;
            let mut prev = sample(printed, cp.pos, cp.normal, s, scale);
            while s < search {
                let s_next = s + step;
                let cur = sample(printed, cp.pos, cp.normal, s_next, scale);
                // crossing from printed (>= level) to clear (< level)
                if prev >= level && cur < level {
                    let frac = if (prev - cur).abs() > 1e-12 {
                        f64::from((prev - level) / (prev - cur))
                    } else {
                        0.5
                    };
                    epe = Some(s + frac * step);
                    break;
                }
                prev = cur;
                s = s_next;
            }
            let epe_nm = epe.unwrap_or_else(|| {
                // no contour: decide between "missing" (dark inside) and
                // "bloated" (bright outside) by the innermost sample
                let inner = sample(printed, cp.pos, cp.normal, -search, scale);
                if inner < level {
                    -search
                } else {
                    search
                }
            });
            EpeSite {
                checkpoint: cp,
                epe_nm,
                violation: epe_nm.abs() > cfg.epe_threshold_nm,
            }
        })
        .collect();
    EpeReport { sites }
}

#[inline]
fn sample(grid: &Grid, pos: Vec2, normal: Vec2, s: f64, nm_per_px: f64) -> f32 {
    // positions are in nm; the grid pixel (x, y) covers
    // [x·scale, (x+1)·scale) nm, so its center sits at (x + 0.5)·scale
    let p = pos + normal * s;
    grid.sample_bilinear(p.x / nm_per_px - 0.5, p.y / nm_per_px - 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LithoConfig {
        // pure-geometry tests run at 1 nm per pixel for clarity
        LithoConfig {
            nm_per_px: 1.0,
            ..LithoConfig::default()
        }
    }

    #[test]
    fn perfect_print_zero_epe() {
        let target = Rect::new(20, 20, 60, 60);
        let mut printed = Grid::zeros(96, 96);
        printed.fill_rect(&target, 1.0);
        let r = measure_epe(&printed, &[target], &cfg());
        assert!(!r.sites.is_empty());
        assert_eq!(r.violations(), 0);
        assert!(r.max_abs_nm() <= 1.0, "max {}", r.max_abs_nm());
    }

    #[test]
    fn uniform_shrink_reports_negative_epe() {
        let target = Rect::new(20, 20, 60, 60);
        let shrunk = Rect::new(25, 25, 55, 55); // 5 nm under everywhere
        let mut printed = Grid::zeros(96, 96);
        printed.fill_rect(&shrunk, 1.0);
        let r = measure_epe(&printed, &[target], &cfg());
        assert_eq!(r.violations(), 0, "5nm is under the 10nm threshold");
        for s in &r.sites {
            assert!(
                s.epe_nm < -3.0 && s.epe_nm > -7.0,
                "expected ~-5nm, got {}",
                s.epe_nm
            );
        }
    }

    #[test]
    fn large_shrink_violates_everywhere() {
        let target = Rect::new(20, 20, 60, 60);
        let shrunk = Rect::new(35, 35, 45, 45); // 15 nm under
        let mut printed = Grid::zeros(96, 96);
        printed.fill_rect(&shrunk, 1.0);
        let r = measure_epe(&printed, &[target], &cfg());
        assert_eq!(r.violations(), r.sites.len());
    }

    #[test]
    fn missing_pattern_saturates_negative() {
        let target = Rect::new(20, 20, 60, 60);
        let printed = Grid::zeros(96, 96);
        let r = measure_epe(&printed, &[target], &cfg());
        assert_eq!(r.violations(), r.sites.len());
        for s in &r.sites {
            assert!(s.epe_nm <= -2.0 * cfg().epe_threshold_nm + 1e-9);
        }
    }

    #[test]
    fn bloat_reports_positive_epe() {
        let target = Rect::new(30, 30, 60, 60);
        let bloated = Rect::new(24, 24, 66, 66); // 6 nm over
        let mut printed = Grid::zeros(96, 96);
        printed.fill_rect(&bloated, 1.0);
        let r = measure_epe(&printed, &[target], &cfg());
        assert_eq!(r.violations(), 0);
        for s in &r.sites {
            assert!(s.epe_nm > 4.0 && s.epe_nm < 8.0, "got {}", s.epe_nm);
        }
    }

    #[test]
    fn every_edge_gets_a_checkpoint() {
        let cps = checkpoints_for(&[Rect::new(0, 0, 12, 12)], &cfg());
        // 4 edges, at least one checkpoint each
        assert!(cps.len() >= 4);
        let mut normals: Vec<(i32, i32)> = cps
            .iter()
            .map(|c| (c.normal.x as i32, c.normal.y as i32))
            .collect();
        normals.sort_unstable();
        normals.dedup();
        assert_eq!(normals.len(), 4, "all four edge orientations sampled");
    }

    #[test]
    fn checkpoint_density_scales_with_edge_length() {
        let small = checkpoints_for(&[Rect::new(0, 0, 20, 20)], &cfg()).len();
        let large = checkpoints_for(&[Rect::new(0, 0, 100, 100)], &cfg()).len();
        assert!(large > small);
    }

    #[test]
    fn report_aggregates() {
        let mut r = EpeReport::default();
        assert_eq!(r.violations(), 0);
        assert_eq!(r.max_abs_nm(), 0.0);
        assert_eq!(r.mean_abs_nm(), 0.0);
        let cp = EpeCheckpoint {
            pos: Vec2::new(0.0, 0.0),
            normal: Vec2::new(1.0, 0.0),
            pattern: 0,
        };
        r.sites.push(EpeSite {
            checkpoint: cp,
            epe_nm: -12.0,
            violation: true,
        });
        r.sites.push(EpeSite {
            checkpoint: cp,
            epe_nm: 4.0,
            violation: false,
        });
        assert_eq!(r.violations(), 1);
        assert_eq!(r.max_abs_nm(), 12.0);
        assert!((r.mean_abs_nm() - 8.0).abs() < 1e-12);
    }
}
