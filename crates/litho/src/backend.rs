//! Pluggable convolution backends for the litho forward pass.
//!
//! The separable convolution in [`crate::convolve_separable_into`] is the
//! innermost hot loop of every flow stage, so it is abstracted behind the
//! [`LithoBackend`] trait (DESIGN.md §13): one contract, several
//! implementations that must agree with [`ScalarBackend`] bit-for-bit (or
//! within a declared ULP tolerance — every in-tree backend declares 0).
//!
//! - [`ScalarBackend`] — the register-blocked scalar passes, unchanged.
//! - [`SimdBackend`] — `std::arch` x86_64 SSE2/AVX2 lanes over the output
//!   tile, detected at runtime; scalar fallback on other architectures.
//!   Bit-identical by construction: lanes vectorize across output elements
//!   while each element keeps the exact scalar tap order (increasing `k`)
//!   and operation shape (`mul` then `add`, never fused).
//! - [`BatchedBackend`] — the same per-pass arithmetic as the auto-resolved
//!   SIMD/scalar path, plus a process-wide signal (see
//!   [`backend_kind`]`() == `[`BackendKind::Batched`]) that higher layers —
//!   `ldmo_core::flow::LdmoFlow::rank_candidates`,
//!   `ldmo_ilt::IltContext::evaluate_unoptimized_batch` and
//!   [`crate::simulate_print_batch`] — use to push many candidate masks
//!   through the kernel bank kernel-major, loading each kernel expansion
//!   once per batch instead of once per candidate.
//!
//! Selection is process-global, like the `ldmo-par` thread pool: the
//! default comes from `LDMO_BACKEND` (falling back to [`BackendKind::Auto`]),
//! the `ldmo` CLI and bench bins call [`cli_setup`] to honour `--backend`,
//! and tests flip it with [`set_backend`]. Because every in-tree backend is
//! bit-identical, switching backends never changes results — only speed.

use crate::conv;
use ldmo_geom::Grid;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The contract every convolution backend implements: the separable-conv
/// forward pass on caller-owned buffers. Implementations must be
/// allocation-free (DESIGN.md §6) and must reproduce [`ScalarBackend`]
/// within [`LithoBackend::max_ulps`] (0 = bit-identical), which the
/// conformance suite (`crates/litho/tests/backend_conformance.rs`) enforces
/// for every backend in [`registry`].
pub trait LithoBackend: Send + Sync + fmt::Debug {
    /// Stable lowercase backend name (`"scalar"`, `"simd"`, `"batched"`).
    fn name(&self) -> &'static str;

    /// Separable convolution `input ⊗ (p pᵀ)`: row pass into `tmp`, column
    /// pass into `out`; both buffers fully overwritten, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `profile.len()` is even or either buffer's shape differs
    /// from `input`'s.
    fn convolve_separable_into(
        &self,
        input: &Grid,
        profile: &[f32],
        tmp: &mut Grid,
        out: &mut Grid,
    );

    /// Maximum tolerated divergence from [`ScalarBackend`], in units in the
    /// last place per output element. Every in-tree backend returns 0
    /// (bit-identical); a future backend with reassociated arithmetic
    /// (e.g. horizontal-add reductions) would declare its bound here and
    /// document it in DESIGN.md §13.
    fn max_ulps(&self) -> u32 {
        0
    }
}

/// Backend selection, as spelled on the `--backend` flag / `LDMO_BACKEND`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Resolve at runtime: SIMD where detected, scalar elsewhere. The
    /// separable path never auto-selects FFT — see [`FFT_CROSSOVER_PX`]
    /// for the dense-kernel crossover the auto rule is keyed on.
    Auto,
    /// The register-blocked scalar passes.
    Scalar,
    /// Runtime-detected SSE2/AVX2 vector passes.
    Simd,
    /// SIMD/scalar passes plus batched candidate evaluation in ranking.
    Batched,
}

impl BackendKind {
    /// Parses a CLI/env spelling; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(BackendKind::Auto),
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            "batched" => Some(BackendKind::Batched),
            _ => None,
        }
    }

    /// The canonical lowercase spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Auto => "auto",
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
            BackendKind::Batched => "batched",
        }
    }

    /// Numeric code for span metadata (`litho.backend` on `flow.run`):
    /// 0 auto (unresolved), 1 scalar, 2 simd, 3 batched.
    pub fn code(self) -> u8 {
        match self {
            BackendKind::Auto => 0,
            BackendKind::Scalar => 1,
            BackendKind::Simd => 2,
            BackendKind::Batched => 3,
        }
    }

    fn from_code(code: u8) -> BackendKind {
        match code {
            1 => BackendKind::Scalar,
            2 => BackendKind::Simd,
            3 => BackendKind::Batched,
            _ => BackendKind::Auto,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Grid side length (pixels) at which a *dense* (non-separable) kernel
/// convolution of a bank-scale kernel switches from the direct path to the
/// FFT. The bank's own kernels are separable and never route through this
/// — the separable passes beat the FFT at every size we run. Re-measured
/// for this PR at ≥224² via the `backend/xover_*` bench rows (see
/// EXPERIMENTS.md): for the σ=6 (37-tap) dense kernel the FFT wins 39.8ms
/// vs 70.8ms direct at 224² and 39.5ms vs 92.7ms at 256², and the
/// direct/FFT cost models (`n²k²` vs padded-`n² log n`) put the break-even
/// between 32² and 64² — 64 is the measured floor where FFT padding
/// overhead stops dominating.
pub const FFT_CROSSOVER_PX: usize = 64;

/// Minimum dense-kernel width (taps) for the FFT path to be worth it at
/// *any* grid size: FFT cost is kernel-size independent, so small kernels
/// never amortize it — at 128² the 13-tap σ=2 kernel runs 2.9ms direct vs
/// 8.1ms FFT, and the gap widens with grid size (direct `∝ n²k²` vs FFT
/// `∝ n_pad² log n_pad`). 25 taps sits between the measured always-loses
/// 13-tap and always-wins-past-64² 37-tap points.
pub const FFT_MIN_KERNEL_TAPS: usize = 25;

/// Dense-kernel convolution with automatic direct/FFT selection: the FFT
/// path when the grid is at least [`FFT_CROSSOVER_PX`] on a side *and* the
/// kernel at least [`FFT_MIN_KERNEL_TAPS`] wide, the cache-friendly direct
/// path otherwise. Results differ between the two paths only by FFT
/// rounding (~1e-6 relative); callers needing bit-stable output should
/// call one of [`crate::convolve2d_direct`] / [`crate::convolve2d_fft`]
/// explicitly.
///
/// # Panics
///
/// Panics if `kernel.len() != kw * kh` or either kernel dimension is even.
pub fn convolve2d_auto(input: &Grid, kernel: &[f32], kw: usize, kh: usize) -> Grid {
    let (w, h) = input.shape();
    if w.max(h) >= FFT_CROSSOVER_PX && kw.max(kh) >= FFT_MIN_KERNEL_TAPS {
        crate::fft::convolve2d_fft(input, kernel, kw, kh)
    } else {
        conv::convolve2d_direct(input, kernel, kw, kh)
    }
}

/// The scalar reference backend: the register-blocked separable passes
/// every other backend is differentially tested against.
#[derive(Debug)]
pub struct ScalarBackend;

impl LithoBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn convolve_separable_into(
        &self,
        input: &Grid,
        profile: &[f32],
        tmp: &mut Grid,
        out: &mut Grid,
    ) {
        conv::convolve_rows_scalar(input, profile, tmp);
        conv::convolve_cols_scalar(tmp, profile, out);
    }
}

/// The vectorized backend: SSE2/AVX2 on x86_64 (runtime-detected), scalar
/// fallback elsewhere. Bit-identical to [`ScalarBackend`] — lanes run
/// across output elements, so each element sees the scalar tap order and
/// unfused mul/add sequence exactly.
#[derive(Debug)]
pub struct SimdBackend;

impl LithoBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn convolve_separable_into(
        &self,
        input: &Grid,
        profile: &[f32],
        tmp: &mut Grid,
        out: &mut Grid,
    ) {
        conv::convolve_rows_simd(input, profile, tmp);
        conv::convolve_cols_simd(tmp, profile, out);
    }
}

/// The batched backend: per-pass arithmetic identical to [`SimdBackend`]
/// (and therefore to scalar); its batching lives in the call sites that
/// consult [`backend_kind`] — candidate ranking evaluates candidates
/// through `IltContext::evaluate_unoptimized_batch`, which pushes every
/// mask of a batch through the kernel bank kernel-major.
#[derive(Debug)]
pub struct BatchedBackend;

impl LithoBackend for BatchedBackend {
    fn name(&self) -> &'static str {
        "batched"
    }

    fn convolve_separable_into(
        &self,
        input: &Grid,
        profile: &[f32],
        tmp: &mut Grid,
        out: &mut Grid,
    ) {
        conv::convolve_rows_simd(input, profile, tmp);
        conv::convolve_cols_simd(tmp, profile, out);
    }
}

static SCALAR: ScalarBackend = ScalarBackend;
static SIMD: SimdBackend = SimdBackend;
static BATCHED: BatchedBackend = BatchedBackend;

/// Every registered backend, scalar first. The conformance suite iterates
/// this, so a new backend gets differential coverage by joining the list.
pub fn registry() -> &'static [&'static dyn LithoBackend] {
    static REGISTRY: [&dyn LithoBackend; 3] = [&SCALAR, &SIMD, &BATCHED];
    &REGISTRY
}

/// Whether vector passes are available on this build/host. On x86_64 SSE2
/// is part of the baseline ISA, so this is a compile-time yes there.
pub fn simd_available() -> bool {
    cfg!(target_arch = "x86_64")
}

/// The process-global selection cell; its default is read from
/// `LDMO_BACKEND` once, exactly like `ldmo-par`'s `LDMO_THREADS`.
fn selected_cell() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| AtomicU8::new(default_kind().code()))
}

/// The backend the process starts with: `LDMO_BACKEND` when set to a valid
/// spelling, otherwise [`BackendKind::Auto`].
pub fn default_kind() -> BackendKind {
    std::env::var("LDMO_BACKEND")
        .ok()
        .and_then(|v| BackendKind::parse(&v))
        .unwrap_or(BackendKind::Auto)
}

/// Replaces the process-global backend selection. Safe at any time: every
/// in-tree backend is bit-identical, so in-flight work is unaffected
/// numerically (which is what lets one test process compare backends).
pub fn set_backend(kind: BackendKind) {
    selected_cell().store(kind.code(), Ordering::Relaxed);
}

/// The currently selected backend kind (possibly [`BackendKind::Auto`]).
pub fn backend_kind() -> BackendKind {
    BackendKind::from_code(selected_cell().load(Ordering::Relaxed))
}

/// [`backend_kind`] with `Auto` resolved to what will actually run:
/// [`BackendKind::Simd`] where vector passes exist, scalar elsewhere.
pub fn resolved_kind() -> BackendKind {
    match backend_kind() {
        BackendKind::Auto => {
            if simd_available() {
                BackendKind::Simd
            } else {
                BackendKind::Scalar
            }
        }
        k => k,
    }
}

/// The backend instance serving [`crate::convolve_separable_into`] right
/// now (auto resolved per [`resolved_kind`]).
pub fn active() -> &'static dyn LithoBackend {
    match resolved_kind() {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Simd | BackendKind::Auto => &SIMD,
        BackendKind::Batched => &BATCHED,
    }
}

/// One-call CLI setup shared by the `ldmo` binary and the bench bins
/// (mirrors `ldmo_par::cli_setup`): scans `std::env::args` for
/// `--backend {auto,scalar,simd,batched}` (last occurrence wins) and
/// installs it; without the flag the process keeps its default
/// (`LDMO_BACKEND` or auto). Returns the resulting resolved kind.
pub fn cli_setup() -> BackendKind {
    let args: Vec<String> = std::env::args().collect();
    let mut requested = None;
    for pair in args.windows(2) {
        if pair[0] == "--backend" {
            match BackendKind::parse(&pair[1]) {
                Some(kind) => requested = Some(kind),
                None => eprintln!(
                    "ignoring invalid --backend value '{}' (want auto|scalar|simd|batched)",
                    pair[1]
                ),
            }
        }
    }
    if let Some(kind) = requested {
        set_backend(kind);
    }
    let resolved = resolved_kind();
    ldmo_obs::set_run_info("backend", resolved.as_str());
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            BackendKind::Auto,
            BackendKind::Scalar,
            BackendKind::Simd,
            BackendKind::Batched,
        ] {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
            assert_eq!(BackendKind::from_code(kind.code()), kind);
        }
        assert_eq!(BackendKind::parse("AVX512"), None);
        assert_eq!(BackendKind::parse(" Simd "), Some(BackendKind::Simd));
    }

    #[test]
    fn registry_leads_with_scalar_reference() {
        let names: Vec<&str> = registry().iter().map(|b| b.name()).collect();
        assert_eq!(names, ["scalar", "simd", "batched"]);
        assert!(registry().iter().all(|b| b.max_ulps() == 0));
    }

    #[test]
    fn auto_resolves_to_a_concrete_backend() {
        let prev = backend_kind();
        set_backend(BackendKind::Auto);
        assert_ne!(resolved_kind(), BackendKind::Auto);
        set_backend(prev);
    }

    #[test]
    fn dense_auto_selects_by_grid_size() {
        // behaviourally: tiny grids and large grids agree within FFT
        // rounding, whichever path auto picks
        let kernel = crate::CoherentKernel::gaussian(2.0, 1.0);
        let (dense, k) = kernel.to_dense();
        for side in [32usize, 96] {
            let mut g = Grid::zeros(side, side);
            g.set(side / 2, side / 2, 1.0);
            let auto = convolve2d_auto(&g, &dense, k, k);
            let direct = conv::convolve2d_direct(&g, &dense, k, k);
            for i in 0..side * side {
                assert!(
                    (auto.as_slice()[i] - direct.as_slice()[i]).abs() < 1e-5,
                    "auto/direct mismatch at {i} (side {side})"
                );
            }
        }
    }
}
