//! Coherent optical kernels — the optical model substitute.
//!
//! The paper's lithography engine uses sum-of-coherent-systems (SOCS)
//! kernels obtained from a Hopkins decomposition of the projection optics.
//! Those kernels are proprietary contest assets; we substitute analytic
//! radially-symmetric kernels that keep the exact mathematical form
//! `I = Σ w_k (M ⊗ h_k)²` — and therefore the exact gradient structure the
//! ILT engine needs.
//!
//! Two kernel shapes are provided:
//!
//! - a plain **Gaussian** (pure low-pass blur), and
//! - a **difference of Gaussians** (DoG): `h = (g_σ − a·g_σr) / (1 − a)`,
//!   normalized to unit DC gain. The subtracted wide Gaussian creates the
//!   *negative side ring* every real projection kernel has (the Airy
//!   pattern's first dark ring): a feature's coherent field turns negative
//!   at 1–3σ from its edges, so a same-mask neighbour in that band loses
//!   amplitude by destructive interference — the physical mechanism behind
//!   the paper's `nmin`/`nmax` proximity classification, and the reason
//!   decomposition (not OPC) must separate close patterns.
//!
//! Each kernel is a signed sum of separable Gaussian components, so both
//! the forward convolution and the gradient back-projection stay on the
//! fast separable path.

use crate::conv::{convolve_separable_into, correlate_separable_into};
use crate::workspace::ConvScratch;
use crate::LithoConfig;
use ldmo_geom::Grid;

/// One separable Gaussian component of a coherent kernel.
#[derive(Debug, PartialEq)]
struct Component {
    sigma: f64,
    amplitude: f32,
    profile: Vec<f32>, // odd-length, unit-sum
}

/// A deep copy re-materializes the expanded profile buffer, so it counts
/// as a kernel expansion — this is what makes per-candidate `KernelBank`
/// deep clones (the reload the `Arc`-shared `IltContext` bank eliminates)
/// visible in traces, not just profile sampling in `Component::new`.
impl Clone for Component {
    fn clone(&self) -> Self {
        if ldmo_obs::enabled() {
            kernel_expansion_counter().incr();
        }
        Component {
            sigma: self.sigma,
            amplitude: self.amplitude,
            profile: self.profile.clone(),
        }
    }
}

/// Telemetry: one count per sampled 1-D kernel profile. Expansion is a
/// setup-time cost the flow is supposed to amortize via `IltContext`; this
/// counter makes accidental re-expansion in a loop visible in traces.
fn kernel_expansion_counter() -> ldmo_obs::Counter {
    static COUNTER: std::sync::OnceLock<ldmo_obs::Counter> = std::sync::OnceLock::new();
    *COUNTER.get_or_init(|| ldmo_obs::counter("litho.kernel_expansions"))
}

impl Component {
    fn new(sigma: f64, amplitude: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        if ldmo_obs::enabled() {
            kernel_expansion_counter().incr();
        }
        let radius = (3.0 * sigma).ceil() as i64;
        let mut profile: Vec<f32> = (-radius..=radius)
            .map(|i| (-((i * i) as f64) / (2.0 * sigma * sigma)).exp() as f32)
            .collect();
        let sum: f32 = profile.iter().sum();
        for p in &mut profile {
            *p /= sum;
        }
        Component {
            sigma,
            amplitude: amplitude as f32,
            profile,
        }
    }
}

/// A radially symmetric coherent kernel: a signed sum of separable
/// Gaussians with an intensity weight `w_k`.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherentKernel {
    components: Vec<Component>,
    weight: f64,
}

impl CoherentKernel {
    /// A plain Gaussian kernel with standard deviation `sigma` (pixels) and
    /// intensity weight `weight`, truncated at `3σ`, unit DC gain.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or `weight < 0`.
    pub fn gaussian(sigma: f64, weight: f64) -> Self {
        assert!(weight >= 0.0, "weight must be non-negative");
        CoherentKernel {
            components: vec![Component::new(sigma, 1.0)],
            weight,
        }
    }

    /// A difference-of-Gaussians kernel `h = (g_σ − a·g_σr)/(1 − a)` with
    /// main lobe `sigma`, ring width `ring_sigma` and ring amplitude
    /// `ring_amplitude = a ∈ [0, 1)` (pixels). Unit DC gain, so the
    /// straight-edge calibration of the bank is unchanged.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= a < 1`, `0 < sigma < ring_sigma`, `weight >= 0`.
    pub fn difference_of_gaussians(
        sigma: f64,
        ring_sigma: f64,
        ring_amplitude: f64,
        weight: f64,
    ) -> Self {
        assert!(weight >= 0.0, "weight must be non-negative");
        assert!(
            (0.0..1.0).contains(&ring_amplitude),
            "ring amplitude must be in [0, 1)"
        );
        assert!(
            sigma > 0.0 && ring_sigma > sigma,
            "ring sigma must exceed the main-lobe sigma"
        );
        if ring_amplitude == 0.0 {
            return CoherentKernel::gaussian(sigma, weight);
        }
        let norm = 1.0 / (1.0 - ring_amplitude);
        CoherentKernel {
            components: vec![
                Component::new(sigma, norm),
                Component::new(ring_sigma, -ring_amplitude * norm),
            ],
            weight,
        }
    }

    /// Intensity weight `w_k`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Main-lobe standard deviation in pixels.
    pub fn sigma(&self) -> f64 {
        self.components[0].sigma
    }

    /// The coherent field `M ⊗ h_k` of a mask (may be negative for DoG
    /// kernels — the destructive-interference ring).
    ///
    /// Thin wrapper over [`CoherentKernel::field_into`] with a transient
    /// scratch; hot loops should hold a [`ConvScratch`] and call the
    /// `_into` variant.
    pub fn field(&self, mask: &Grid) -> Grid {
        let (w, h) = mask.shape();
        let mut scratch = ConvScratch::new(w, h);
        let mut out = Grid::zeros(w, h);
        self.field_into(mask, &mut scratch, &mut out);
        out
    }

    /// Buffer-reuse variant of [`CoherentKernel::field`]: accumulates the
    /// signed component sum into `out` (fully overwritten) using `scratch`
    /// for the separable passes. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` or `out` shapes differ from `mask`'s.
    pub fn field_into(&self, mask: &Grid, scratch: &mut ConvScratch, out: &mut Grid) {
        assert_eq!(mask.shape(), out.shape(), "output shape mismatch");
        // first component writes, the rest accumulate: skips a full-grid
        // zero-fill per call on the single-component (plain Gaussian) case
        for (i, c) in self.components.iter().enumerate() {
            convolve_separable_into(mask, &c.profile, &mut scratch.tmp, &mut scratch.part);
            let a = out.as_mut_slice();
            if i == 0 {
                for (v, &p) in a.iter_mut().zip(scratch.part.as_slice()) {
                    *v = c.amplitude * p;
                }
            } else {
                for (v, &p) in a.iter_mut().zip(scratch.part.as_slice()) {
                    *v += c.amplitude * p;
                }
            }
        }
    }

    /// Back-projection `g ⊗ h_k` used by the ILT gradient (`h_k` is
    /// symmetric, so correlation equals convolution).
    pub fn backproject(&self, g: &Grid) -> Grid {
        let (w, h) = g.shape();
        let mut scratch = ConvScratch::new(w, h);
        let mut out = Grid::zeros(w, h);
        self.backproject_into(g, &mut scratch, &mut out);
        out
    }

    /// Buffer-reuse variant of [`CoherentKernel::backproject`]; see
    /// [`CoherentKernel::field_into`].
    pub fn backproject_into(&self, g: &Grid, scratch: &mut ConvScratch, out: &mut Grid) {
        assert_eq!(g.shape(), out.shape(), "output shape mismatch");
        for (i, c) in self.components.iter().enumerate() {
            correlate_separable_into(g, &c.profile, &mut scratch.tmp, &mut scratch.part);
            let a = out.as_mut_slice();
            if i == 0 {
                for (v, &p) in a.iter_mut().zip(scratch.part.as_slice()) {
                    *v = c.amplitude * p;
                }
            } else {
                for (v, &p) in a.iter_mut().zip(scratch.part.as_slice()) {
                    *v += c.amplitude * p;
                }
            }
        }
    }

    /// The separable Gaussian components as `(amplitude, profile)` pairs:
    /// each profile is centered, odd-length and unit-sum. This is the raw
    /// material for external convolution implementations (benchmark
    /// baselines, accelerator ports) that must match the built-in passes
    /// exactly.
    pub fn components(&self) -> impl Iterator<Item = (f32, &[f32])> {
        self.components
            .iter()
            .map(|c| (c.amplitude, c.profile.as_slice()))
    }

    /// Dense 2-D realization of the kernel (sum of outer products), for the
    /// direct/FFT convolution reference paths and tests. Returns the buffer
    /// and its (odd) side length.
    pub fn to_dense(&self) -> (Vec<f32>, usize) {
        let k = self
            .components
            .iter()
            .map(|c| c.profile.len())
            .max()
            .expect("at least one component");
        let mut dense = vec![0.0f32; k * k];
        for c in &self.components {
            let off = (k - c.profile.len()) / 2;
            for y in 0..c.profile.len() {
                for x in 0..c.profile.len() {
                    dense[(y + off) * k + (x + off)] += c.amplitude * c.profile[y] * c.profile[x];
                }
            }
        }
        (dense, k)
    }

    /// Half-extent of the kernel support in pixels.
    pub fn radius(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.profile.len() / 2)
            .max()
            .unwrap_or(0)
    }
}

/// The kernel bank defining the optical system: `I = Σ_k w_k (M ⊗ h_k)²`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBank {
    kernels: Vec<CoherentKernel>,
}

impl KernelBank {
    /// Builds a bank from explicit kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(kernels: Vec<CoherentKernel>) -> Self {
        assert!(!kernels.is_empty(), "kernel bank must not be empty");
        KernelBank { kernels }
    }

    /// The two-kernel bank used throughout the reproduction: a DoG kernel
    /// carrying most of the energy (coherent main lobe + destructive ring)
    /// plus a wide plain Gaussian modelling the partially coherent
    /// background. Calibrated so a long straight edge prints exactly at the
    /// drawn position (see [`LithoConfig::total_kernel_weight`]). Sigmas
    /// are given in nm in the config and converted to pixels here via
    /// `cfg.nm_per_px`.
    pub fn paper_bank(cfg: &LithoConfig) -> Self {
        let total = cfg.total_kernel_weight();
        let w1 = total * cfg.primary_weight_fraction;
        let w2 = total - w1;
        let px = cfg.nm_per_px;
        KernelBank::new(vec![
            CoherentKernel::difference_of_gaussians(
                cfg.sigma_primary / px,
                cfg.ring_sigma / px,
                cfg.ring_amplitude,
                w1,
            ),
            CoherentKernel::gaussian(cfg.sigma_secondary / px, w2),
        ])
    }

    /// The kernels in the bank.
    pub fn kernels(&self) -> &[CoherentKernel] {
        &self.kernels
    }

    /// Sum of the intensity weights.
    pub fn total_weight(&self) -> f64 {
        self.kernels.iter().map(CoherentKernel::weight).sum()
    }

    /// Largest kernel radius (pixels of half-extent), i.e. the optical
    /// interaction range. Patterns farther apart than twice this distance
    /// cannot influence each other's print.
    pub fn interaction_radius(&self) -> usize {
        self.kernels
            .iter()
            .map(CoherentKernel::radius)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    #[test]
    fn gaussian_profile_normalized_unit_dc() {
        let k = CoherentKernel::gaussian(5.0, 1.0);
        // DC gain 1: a uniform mask maps to field 1 in the interior
        let g = Grid::filled(64, 64, 1.0);
        let f = k.field(&g);
        assert!((f.get(32, 32) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn dog_has_unit_dc_and_negative_ring() {
        let k = CoherentKernel::difference_of_gaussians(4.0, 8.0, 0.4, 1.0);
        // interior of a large pattern: field 1 (unit DC)
        let mut mask = Grid::zeros(96, 96);
        mask.fill_rect(&Rect::new(24, 24, 72, 72), 1.0);
        let f = k.field(&mask);
        assert!(
            (f.get(48, 48) - 1.0).abs() < 1e-3,
            "center {}",
            f.get(48, 48)
        );
        // outside the pattern at ring distance: field goes negative
        let ring_sample = f.get(48, 84); // 12 px beyond the edge (= 3σ main)
        assert!(
            ring_sample < 0.0,
            "expected destructive ring, got {ring_sample}"
        );
    }

    #[test]
    fn dog_with_zero_ring_is_gaussian() {
        let a = CoherentKernel::difference_of_gaussians(4.0, 8.0, 0.0, 1.0);
        let b = CoherentKernel::gaussian(4.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn straight_edge_field_is_half_for_both_shapes() {
        // unit DC gain puts the field at 0.5 on a long straight edge,
        // which is what the 4·Ith bank calibration relies on
        for k in [
            CoherentKernel::gaussian(5.0, 1.0),
            CoherentKernel::difference_of_gaussians(5.0, 10.0, 0.4, 1.0),
        ] {
            let mut mask = Grid::zeros(128, 128);
            mask.fill_rect(&Rect::new(0, 0, 64, 128), 1.0);
            let f = k.field(&mask);
            // the drawn edge lies between pixel centers 63 and 64:
            // average the two samples straddling it
            let edge = 0.5 * (f.get(63, 64) + f.get(64, 64));
            assert!((edge - 0.5).abs() < 0.02, "edge field {edge}");
        }
    }

    #[test]
    fn paper_bank_calibration() {
        let cfg = LithoConfig::default();
        let bank = KernelBank::paper_bank(&cfg);
        assert_eq!(bank.kernels().len(), 2);
        assert!((bank.total_weight() - 4.0 * f64::from(cfg.intensity_threshold)).abs() < 1e-9);
        assert!(bank.interaction_radius() >= 49);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sigma_rejected() {
        let _ = CoherentKernel::gaussian(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "ring sigma must exceed")]
    fn inverted_dog_rejected() {
        let _ = CoherentKernel::difference_of_gaussians(8.0, 4.0, 0.3, 1.0);
    }

    #[test]
    fn dense_realization_matches_field() {
        for k in [
            CoherentKernel::gaussian(2.0, 1.0),
            CoherentKernel::difference_of_gaussians(2.0, 4.0, 0.35, 1.0),
        ] {
            let (dense, kw) = k.to_dense();
            let mut g = Grid::zeros(kw + 8, kw + 8);
            g.set(kw / 2 + 4, kw / 2 + 4, 1.0);
            let a = k.field(&g);
            let b = crate::convolve2d_direct(&g, &dense, kw, kw);
            for i in 0..a.as_slice().len() {
                assert!(
                    (a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-5,
                    "mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn backproject_equals_field_for_symmetric_kernels() {
        let k = CoherentKernel::difference_of_gaussians(3.0, 6.0, 0.4, 1.0);
        let mut g = Grid::zeros(48, 48);
        g.set(20, 25, 1.0);
        g.set(30, 10, -0.5);
        assert_eq!(k.field(&g), k.backproject(&g));
    }
}
