//! Constant-threshold sigmoid resist model (paper Eq. 2) and the
//! double-patterning image union (paper Eq. 3).

use crate::LithoConfig;
use ldmo_geom::Grid;

/// Numerically stable logistic sigmoid `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Applies the resist model `T = sigmoid(θz (I − I_th))` to an aerial image
/// (paper Eq. 2 with the paper's constants from [`LithoConfig`]).
pub fn resist_threshold(intensity: &Grid, cfg: &LithoConfig) -> Grid {
    let theta = cfg.theta_z;
    let ith = cfg.intensity_threshold;
    intensity.map(|i| sigmoid(theta * (i - ith)))
}

/// Buffer-reuse variant of [`resist_threshold`]: overwrites `out`.
/// Allocation-free.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn resist_threshold_into(intensity: &Grid, cfg: &LithoConfig, out: &mut Grid) {
    let theta = cfg.theta_z;
    let ith = cfg.intensity_threshold;
    out.map_from(intensity, |i| sigmoid(theta * (i - ith)));
}

/// Combines two printed images into the double-patterning result
/// `T = min(T1 + T2, 1)` (paper Eq. 3).
///
/// # Panics
///
/// Panics if the two grids have different shapes.
pub fn combine_double_pattern(t1: &Grid, t2: &Grid) -> Grid {
    t1.zip_map(t2, |a, b| (a + b).min(1.0))
        .expect("printed images must share a shape")
}

/// Generalization of Eq. 3 to `k` masks: `T = min(Σ_i T_i, 1)`.
///
/// # Panics
///
/// Panics if `prints` is empty or shapes differ.
pub fn combine_prints(prints: &[Grid]) -> Grid {
    assert!(!prints.is_empty(), "need at least one printed image");
    let (w, h) = prints[0].shape();
    let mut out = Grid::zeros(w, h);
    combine_prints_into(prints, &mut out);
    out
}

/// Buffer-reuse variant of [`combine_prints`]: overwrites `out`.
/// Allocation-free.
///
/// # Panics
///
/// Panics if `prints` is empty or any shape differs (the images must share
/// a shape, including `out`'s).
pub fn combine_prints_into(prints: &[Grid], out: &mut Grid) {
    assert!(!prints.is_empty(), "need at least one printed image");
    out.copy_from(&prints[0]);
    for t in &prints[1..] {
        assert_eq!(out.shape(), t.shape(), "printed images must share a shape");
        let acc = out.as_mut_slice();
        for (a, &b) in acc.iter_mut().zip(t.as_slice()) {
            *a += b;
        }
    }
    out.map_inplace(|v| v.min(1.0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_reference_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // symmetry: s(-x) = 1 - s(x)
        for &x in &[0.1f32, 1.0, 3.5, 20.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!(sigmoid(f32::MAX).is_finite());
        assert!(sigmoid(f32::MIN).is_finite());
    }

    #[test]
    fn resist_threshold_cuts_at_ith() {
        let cfg = LithoConfig::default();
        let g = Grid::from_vec(
            3,
            1,
            vec![
                cfg.intensity_threshold - 0.02,
                cfg.intensity_threshold,
                cfg.intensity_threshold + 0.02,
            ],
        );
        let t = resist_threshold(&g, &cfg);
        assert!(t.get(0, 0) < 0.1);
        assert!((t.get(1, 0) - 0.5).abs() < 1e-6);
        assert!(t.get(2, 0) > 0.9);
    }

    #[test]
    fn combine_clamps_at_one() {
        let a = Grid::from_vec(2, 1, vec![0.8, 0.3]);
        let b = Grid::from_vec(2, 1, vec![0.7, 0.2]);
        let t = combine_double_pattern(&a, &b);
        assert_eq!(t.get(0, 0), 1.0);
        assert!((t.get(1, 0) - 0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn combine_rejects_shape_mismatch() {
        let a = Grid::zeros(2, 2);
        let b = Grid::zeros(3, 2);
        let _ = combine_double_pattern(&a, &b);
    }

    #[test]
    fn sigmoid_handles_subnormals_and_infinities() {
        let smallest_subnormal = f32::from_bits(1);
        for &x in &[
            smallest_subnormal,
            -smallest_subnormal,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            0.0,
            -0.0,
        ] {
            let s = sigmoid(x);
            assert!(
                s.is_finite() && (0.0..=1.0).contains(&s),
                "sigmoid({x:e}) = {s}"
            );
        }
        assert!((sigmoid(smallest_subnormal) - 0.5).abs() < 1e-6);
        assert_eq!(sigmoid(f32::INFINITY), 1.0);
        assert_eq!(sigmoid(f32::NEG_INFINITY), 0.0);
    }

    proptest! {
        #[test]
        fn sigmoid_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
            if a < b {
                prop_assert!(sigmoid(a) <= sigmoid(b));
            }
        }

        // bit-pattern strategy: uniformly drawn u32s reinterpreted as f32
        // cover the whole value space — normals, subnormals, zeros and
        // infinities — which a lerp-based float range never reaches
        #[test]
        fn sigmoid_finite_and_bounded_on_every_bit_pattern(bits in 0u32..=u32::MAX) {
            let x = f32::from_bits(bits);
            if x.is_nan() {
                return Ok(());
            }
            let s = sigmoid(x);
            prop_assert!(s.is_finite(), "sigmoid({x:e}) = {s}");
            prop_assert!((0.0..=1.0).contains(&s), "sigmoid({x:e}) = {s}");
        }

        #[test]
        fn sigmoid_monotone_across_the_full_range(ba in 0u32..=u32::MAX,
                                                  bb in 0u32..=u32::MAX) {
            let a = f32::from_bits(ba);
            let b = f32::from_bits(bb);
            if a.is_nan() || b.is_nan() {
                return Ok(());
            }
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                sigmoid(lo) <= sigmoid(hi),
                "sigmoid({lo:e}) > sigmoid({hi:e})"
            );
        }

        #[test]
        fn combine_commutative(va in proptest::collection::vec(0.0f32..1.0, 9),
                               vb in proptest::collection::vec(0.0f32..1.0, 9)) {
            let a = Grid::from_vec(3, 3, va);
            let b = Grid::from_vec(3, 3, vb);
            prop_assert_eq!(combine_double_pattern(&a, &b), combine_double_pattern(&b, &a));
        }

        #[test]
        fn combine_bounded(va in proptest::collection::vec(0.0f32..1.0, 9),
                           vb in proptest::collection::vec(0.0f32..1.0, 9)) {
            let a = Grid::from_vec(3, 3, va);
            let b = Grid::from_vec(3, 3, vb);
            let t = combine_double_pattern(&a, &b);
            prop_assert!(t.min() >= 0.0 && t.max() <= 1.0);
        }
    }
}
