//! Printed-contour extraction (marching squares).
//!
//! Converts a resist image into explicit iso-level contour segments. The
//! EPE machinery measures displacement along known target edges and never
//! needs full contours, but visualization (Fig. 7 style overlays) and the
//! process-window metrics do.

use ldmo_geom::{Grid, Vec2};

/// One line segment of an iso-contour, in pixel coordinates (sub-pixel
/// interpolated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContourSegment {
    /// Segment start.
    pub a: Vec2,
    /// Segment end.
    pub b: Vec2,
}

impl ContourSegment {
    /// Segment length in pixels.
    pub fn length(&self) -> f64 {
        (self.b - self.a).norm()
    }
}

/// Extracts the `level` iso-contour of `grid` with the marching-squares
/// algorithm. Saddle cells are resolved by the cell-average rule.
///
/// ```
/// use ldmo_geom::{Grid, Rect};
/// use ldmo_litho::extract_contour;
///
/// let mut g = Grid::zeros(16, 16);
/// g.fill_rect(&Rect::new(4, 4, 12, 12), 1.0);
/// let segments = extract_contour(&g, 0.5);
/// assert!(!segments.is_empty());
/// // a closed square contour: total length ≈ its perimeter (4 × 8 px,
/// // measured between pixel centers: 4 × 7 plus corner cuts)
/// let total: f64 = segments.iter().map(|s| s.length()).sum();
/// assert!(total > 20.0 && total < 40.0);
/// ```
pub fn extract_contour(grid: &Grid, level: f32) -> Vec<ContourSegment> {
    let (w, h) = grid.shape();
    let mut segments = Vec::new();
    if w < 2 || h < 2 {
        return segments;
    }
    // interpolation along an edge between two sample points
    let lerp = |pa: Vec2, va: f32, pb: Vec2, vb: f32| -> Vec2 {
        let t = if (vb - va).abs() < 1e-12 {
            0.5
        } else {
            f64::from((level - va) / (vb - va))
        };
        pa + (pb - pa) * t.clamp(0.0, 1.0)
    };
    for y in 0..h - 1 {
        for x in 0..w - 1 {
            let v = [
                grid.get(x, y),
                grid.get(x + 1, y),
                grid.get(x + 1, y + 1),
                grid.get(x, y + 1),
            ];
            let p = [
                Vec2::new(x as f64, y as f64),
                Vec2::new((x + 1) as f64, y as f64),
                Vec2::new((x + 1) as f64, (y + 1) as f64),
                Vec2::new(x as f64, (y + 1) as f64),
            ];
            let mut case = 0usize;
            for (i, &vi) in v.iter().enumerate() {
                if vi >= level {
                    case |= 1 << i;
                }
            }
            if case == 0 || case == 15 {
                continue;
            }
            // midpoints of crossed edges: edge i connects corner i and i+1
            let edge_point = |i: usize| -> Vec2 {
                let j = (i + 1) % 4;
                lerp(p[i], v[i], p[j], v[j])
            };
            // lookup: which edges the contour crosses per case, as pairs
            let pairs: &[(usize, usize)] = match case {
                1 => &[(3, 0)],
                2 => &[(0, 1)],
                3 => &[(3, 1)],
                4 => &[(1, 2)],
                5 => {
                    // saddle: disambiguate by cell average
                    let avg = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if avg >= level {
                        &[(3, 2), (1, 0)]
                    } else {
                        &[(3, 0), (1, 2)]
                    }
                }
                6 => &[(0, 2)],
                7 => &[(3, 2)],
                8 => &[(2, 3)],
                9 => &[(2, 0)],
                10 => {
                    let avg = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if avg >= level {
                        &[(0, 1), (2, 3)]
                    } else {
                        &[(0, 3), (2, 1)]
                    }
                }
                11 => &[(2, 1)],
                12 => &[(1, 3)],
                13 => &[(1, 0)],
                14 => &[(0, 3)],
                _ => unreachable!("cases 0 and 15 are filtered"),
            };
            for &(ea, eb) in pairs {
                segments.push(ContourSegment {
                    a: edge_point(ea),
                    b: edge_point(eb),
                });
            }
        }
    }
    segments
}

/// Total contour length at `level`, in pixels — a roughness/area-boundary
/// summary statistic used by the extension benches.
pub fn contour_length(grid: &Grid, level: f32) -> f64 {
    extract_contour(grid, level)
        .iter()
        .map(ContourSegment::length)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    #[test]
    fn empty_grid_has_no_contour() {
        let g = Grid::zeros(8, 8);
        assert!(extract_contour(&g, 0.5).is_empty());
        let full = Grid::filled(8, 8, 1.0);
        assert!(extract_contour(&full, 0.5).is_empty());
    }

    #[test]
    fn square_contour_length_scales_with_side() {
        let mut small = Grid::zeros(64, 64);
        small.fill_rect(&Rect::new(16, 16, 32, 32), 1.0);
        let mut large = Grid::zeros(64, 64);
        large.fill_rect(&Rect::new(8, 8, 56, 56), 1.0);
        let ls = contour_length(&small, 0.5);
        let ll = contour_length(&large, 0.5);
        assert!(ll > 2.5 * ls, "small {ls}, large {ll}");
    }

    #[test]
    fn contour_sits_between_inside_and_outside() {
        let mut g = Grid::zeros(32, 32);
        g.fill_rect(&Rect::new(8, 8, 24, 24), 1.0);
        for s in extract_contour(&g, 0.5) {
            for p in [s.a, s.b] {
                // every contour point lies within half a cell of the
                // drawn boundary ring (7..24 in pixel-center coordinates)
                assert!(
                    p.x >= 7.0 && p.x <= 24.0 && p.y >= 7.0 && p.y <= 24.0,
                    "stray contour point {p}"
                );
            }
        }
    }

    #[test]
    fn smooth_gradient_single_crossing_per_column() {
        // linear ramp in x: the 0.5 contour is a vertical line
        let mut g = Grid::zeros(16, 8);
        for y in 0..8 {
            for x in 0..16 {
                g.set(x, y, x as f32 / 15.0);
            }
        }
        let segs = extract_contour(&g, 0.5);
        assert!(!segs.is_empty());
        for s in &segs {
            assert!((s.a.x - s.b.x).abs() < 1e-5, "contour not vertical");
            assert!((s.a.x - 7.5).abs() < 1.0, "crossing at {}", s.a.x);
        }
    }

    #[test]
    fn saddle_cells_do_not_panic_and_produce_two_segments() {
        // checkerboard corners force cases 5/10
        let g = Grid::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let segs = extract_contour(&g, 0.5);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn degenerate_grids() {
        let g = Grid::filled(1, 1, 1.0);
        assert!(extract_contour(&g, 0.5).is_empty());
        let g = Grid::filled(1, 5, 1.0);
        assert!(extract_contour(&g, 0.5).is_empty());
    }
}
