#![warn(missing_docs)]
//! # ldmo-litho — lithography simulation substrate
//!
//! A from-scratch substitute for the production lithography engine the DAC'20
//! paper relies on. The model follows the sum-of-coherent-systems structure
//! used by inverse lithography technology (ILT):
//!
//! 1. **Optics** — the aerial intensity of a mask `M` is
//!    `I(x, y) = Σ_k w_k (M ⊗ h_k)²(x, y)` where `h_k` are radially symmetric
//!    Gaussian coherent kernels ([`KernelBank`]). Gaussians reproduce the
//!    low-pass behaviour of 193 nm projection optics: corner rounding,
//!    pattern bridging below the minimum spacing, and proximity interaction
//!    that decays to nothing beyond ~100 nm — exactly the effects the
//!    paper's `nmin`/`nmax` classification (Eq. 6) encodes.
//! 2. **Resist** — the constant-threshold sigmoid model of the paper's Eq. 2:
//!    `T_i = sigmoid(θz (I_i − I_th))` with `θz = 120`, `I_th = 0.039`.
//! 3. **Double patterning** — the printed image of two masks is
//!    `T = min(T1 + T2, 1)` (paper Eq. 3).
//!
//! Printability metrics:
//!
//! - **EPE** (paper Definition 1): edge placement error at checkpoints
//!   sampled on target edges, violation when `|EPE| > 10 nm` ([`measure_epe`]).
//! - **L2 error** (paper Definition 2): `‖T − T′‖²` ([`l2_error`]).
//! - **Print violations**: bridged or missing patterns detected by
//!   connected-component analysis of the printed image ([`detect_violations`]).
//!
//! The kernel bank is calibrated so that a long straight edge of a large
//! pattern prints exactly on target: the total kernel weight is `4·I_th`,
//! which puts the half-amplitude point of the image slope at the threshold.
//!
//! ```
//! use ldmo_geom::{Grid, Rect};
//! use ldmo_litho::{KernelBank, LithoConfig, simulate_print};
//!
//! let cfg = LithoConfig::default();
//! let bank = KernelBank::paper_bank(&cfg);
//! let mut mask = Grid::zeros(128, 128);
//! mask.fill_rect(&Rect::new(30, 30, 100, 100), 1.0);
//! let printed = simulate_print(&mask, &bank, &cfg);
//! // the centre of a large pattern prints solid:
//! assert!(printed.get(64, 64) > 0.9);
//! // far-away background stays empty:
//! assert!(printed.get(5, 5) < 0.1);
//! ```

mod aerial;
pub mod backend;
mod components;
mod contour;
mod conv;
mod epe;
mod fft;
mod kernel;
mod metrics;
pub mod process;
mod resist;
mod violation;
mod workspace;

pub use aerial::{aerial_image, aerial_image_into, AerialImage};
pub use backend::{BackendKind, LithoBackend};
pub use components::{label_components, ComponentLabels};
pub use contour::{contour_length, extract_contour, ContourSegment};
pub use conv::{
    convolve2d_direct, convolve_separable, convolve_separable_into, correlate_separable,
    correlate_separable_into,
};
pub use epe::{measure_epe, EpeCheckpoint, EpeReport, EpeSite};
pub use fft::{convolve2d_fft, fft2d, ifft2d, Complex};
pub use kernel::{CoherentKernel, KernelBank};
pub use metrics::{l2_error, pvband_area};
pub use resist::{
    combine_double_pattern, combine_prints, combine_prints_into, resist_threshold,
    resist_threshold_into, sigmoid,
};
pub use violation::{detect_violations, ViolationKind, ViolationReport};
pub use workspace::{ConvScratch, GradScratch, LithoWorkspace};

use ldmo_geom::Grid;

/// Global lithography configuration: the paper's published constants plus
/// the optical calibration of our Gaussian substitute model.
#[derive(Debug, Clone, PartialEq)]
pub struct LithoConfig {
    /// Physical size of one raster pixel in nm. Layout geometry is always
    /// in nm; grids are rasterized at this scale (default 2 nm/px, which
    /// keeps a 448 nm cell window on a 224×224 grid as in the paper's
    /// 224×224 CNN input).
    pub nm_per_px: f64,
    /// Resist sigmoid steepness `θz` (paper: 120).
    pub theta_z: f32,
    /// Constant resist threshold `I_th` (paper: 0.039).
    pub intensity_threshold: f32,
    /// Primary coherent-kernel main-lobe sigma in nm.
    pub sigma_primary: f64,
    /// Width (sigma, nm) of the primary kernel's negative interference
    /// ring — the subtracted Gaussian of the DoG shape.
    pub ring_sigma: f64,
    /// Amplitude `a ∈ [0, 1)` of the negative ring. `0` degrades the
    /// primary kernel to a plain Gaussian (no coherent interference).
    pub ring_amplitude: f64,
    /// Secondary (wider, partially coherent background) kernel sigma in nm.
    pub sigma_secondary: f64,
    /// Fraction of the total kernel energy carried by the primary kernel.
    pub primary_weight_fraction: f64,
    /// EPE violation threshold in nm (paper: 10 nm).
    pub epe_threshold_nm: f64,
    /// Spacing between EPE checkpoints along an edge, in nm.
    pub epe_sample_step_nm: i32,
    /// Corner exclusion zone for EPE checkpoints, in nm: EPE is ill-defined
    /// at corners (every optical system rounds them), so checkpoints keep
    /// this margin from edge endpoints, as in production OPC recipes.
    pub epe_corner_margin_nm: i32,
    /// Resist binarization level for contours/components (0.5).
    pub print_level: f32,
}

impl LithoConfig {
    /// Total kernel weight that calibrates straight edges to print on
    /// target: an infinite edge produces a field of `0.5`, so intensity
    /// `W · 0.25` must equal the threshold, i.e. `W = 4 · I_th`.
    pub fn total_kernel_weight(&self) -> f64 {
        4.0 * f64::from(self.intensity_threshold)
    }
}

impl Default for LithoConfig {
    fn default() -> Self {
        LithoConfig {
            nm_per_px: 2.0,
            theta_z: 120.0,
            intensity_threshold: 0.039,
            sigma_primary: 48.0,
            ring_sigma: 96.0,
            ring_amplitude: 0.0,
            sigma_secondary: 90.0,
            primary_weight_fraction: 0.85,
            epe_threshold_nm: 10.0,
            epe_sample_step_nm: 10,
            epe_corner_margin_nm: 14,
            print_level: 0.5,
        }
    }
}

/// Runs the full forward model for a single mask: aerial image then resist.
///
/// Returns the resist image `T` with values in `(0, 1)`.
pub fn simulate_print(mask: &Grid, bank: &KernelBank, cfg: &LithoConfig) -> Grid {
    let aerial = aerial_image(mask, bank);
    resist_threshold(&aerial.intensity, cfg)
}

/// Batched forward model: prints every mask in `masks` in one pass over the
/// kernel bank. The loop is **kernel-major** — each kernel's expanded
/// profiles are loaded once and swept across the whole batch, instead of
/// reloading the bank per mask — which is the amortization the batched
/// backend ([`backend::BackendKind::Batched`]) buys candidate ranking.
///
/// Bit-identical to calling [`simulate_print`] per mask: each mask's
/// intensity still accumulates its kernels in bank order with the same
/// arithmetic; only the iteration order *across masks* changes, and masks
/// are independent.
///
/// Thin wrapper over [`simulate_print_batch_into`] with transient buffers.
///
/// # Panics
///
/// Panics if `masks` is empty or the masks disagree on shape.
pub fn simulate_print_batch(masks: &[Grid], bank: &KernelBank, cfg: &LithoConfig) -> Vec<Grid> {
    assert!(!masks.is_empty(), "batch must not be empty");
    let (w, h) = masks[0].shape();
    let mut scratch = ConvScratch::new(w, h);
    let mut field = Grid::zeros(w, h);
    let mut outs: Vec<Grid> = masks.iter().map(|_| Grid::zeros(w, h)).collect();
    simulate_print_batch_into(masks, bank, cfg, &mut scratch, &mut field, &mut outs);
    outs
}

/// Buffer-reuse variant of [`simulate_print_batch`]: `outs[i]` receives the
/// resist image of `masks[i]` (fully overwritten; prior contents ignored).
/// `field` holds one coherent field at a time. Allocation-free.
///
/// # Panics
///
/// Panics if `masks` is empty, `outs.len() != masks.len()`, or any buffer's
/// shape differs from `masks[0]`'s.
pub fn simulate_print_batch_into(
    masks: &[Grid],
    bank: &KernelBank,
    cfg: &LithoConfig,
    scratch: &mut ConvScratch,
    field: &mut Grid,
    outs: &mut [Grid],
) {
    assert!(!masks.is_empty(), "batch must not be empty");
    assert_eq!(masks.len(), outs.len(), "batch output length mismatch");
    let shape = masks[0].shape();
    assert_eq!(field.shape(), shape, "field buffer shape mismatch");
    if ldmo_obs::enabled() {
        ldmo_obs::counter("litho.batch_prints").incr();
    }
    // kernel-major: load each kernel's expansion once per batch. Per mask
    // the accumulation order over kernels is unchanged (k == 0 writes, the
    // rest add), so each intensity is bit-identical to the unbatched path.
    for (k, kernel) in bank.kernels().iter().enumerate() {
        let wk = kernel.weight() as f32;
        for (mask, out) in masks.iter().zip(outs.iter_mut()) {
            assert_eq!(mask.shape(), shape, "batch mask shape mismatch");
            kernel.field_into(mask, scratch, field);
            let acc = out.as_mut_slice();
            let f = field.as_slice();
            if k == 0 {
                for (a, &v) in acc.iter_mut().zip(f) {
                    *a = wk * v * v;
                }
            } else {
                for (a, &v) in acc.iter_mut().zip(f) {
                    *a += wk * v * v;
                }
            }
        }
    }
    // resist in place: the same Eq. 2 arithmetic as resist_threshold_into
    let theta = cfg.theta_z;
    let ith = cfg.intensity_threshold;
    for out in outs.iter_mut() {
        for v in out.as_mut_slice() {
            *v = sigmoid(theta * (*v - ith));
        }
    }
}

/// Runs the forward model for a double-patterning mask pair and combines the
/// two prints per the paper's Eq. 3.
pub fn simulate_print_pair(
    mask1: &Grid,
    mask2: &Grid,
    bank: &KernelBank,
    cfg: &LithoConfig,
) -> Grid {
    let t1 = simulate_print(mask1, bank, cfg);
    let t2 = simulate_print(mask2, bank, cfg);
    combine_double_pattern(&t1, &t2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    #[test]
    fn straight_edge_prints_on_target() {
        // A huge pattern filling the left half: its vertical edge must print
        // within ~1 px of the drawn position thanks to the 4*Ith calibration.
        let cfg = LithoConfig::default();
        let bank = KernelBank::paper_bank(&cfg);
        let mut mask = Grid::zeros(192, 192);
        mask.fill_rect(&Rect::new(0, 0, 96, 192), 1.0);
        let t = simulate_print(&mask, &bank, &cfg);
        // find the 0.5 crossing along the middle row
        let y = 96;
        let mut crossing = None;
        for x in 1..192 {
            let (a, b) = (t.get(x - 1, y), t.get(x, y));
            if a >= 0.5 && b < 0.5 {
                crossing = Some(x as f64 - (0.5 - f64::from(b)) / f64::from(a - b));
            }
        }
        let c = crossing.expect("edge must cross 0.5");
        assert!((c - 96.0).abs() < 1.5, "edge printed at {c}, expected 96");
    }

    #[test]
    fn isolated_small_contact_underprints() {
        // Small contacts receive less dose than large pads: the printed area
        // is smaller than drawn. This is the proximity effect ILT corrects.
        let cfg = LithoConfig::default();
        let bank = KernelBank::paper_bank(&cfg);
        let mut mask = Grid::zeros(128, 128);
        let contact = Rect::centered(64, 64, 30, 30);
        mask.fill_rect(&contact, 1.0);
        let t = simulate_print(&mask, &bank, &cfg);
        let printed_area = t.count_above(0.5) as i64;
        assert!(
            printed_area < contact.area(),
            "printed {printed_area} px vs drawn {}",
            contact.area()
        );
    }

    #[test]
    fn close_patterns_bridge_on_one_mask() {
        // Two contacts at 20 nm spacing on the SAME mask merge in print —
        // the reason the decomposition step exists at all.
        let cfg = LithoConfig::default();
        let bank = KernelBank::paper_bank(&cfg);
        let mut mask = Grid::zeros(180, 180);
        mask.fill_rect(&Rect::new(40, 20, 80, 160), 1.0);
        mask.fill_rect(&Rect::new(100, 20, 140, 160), 1.0);
        let t = simulate_print(&mask, &bank, &cfg);
        // the gap midpoint (x=90) prints when bars are 20 px (40 nm) apart
        assert!(
            t.get(90, 90) > 0.5,
            "gap intensity should bridge, got {}",
            t.get(90, 90)
        );
    }

    #[test]
    fn separated_masks_do_not_bridge() {
        // The same two contacts split across two masks print cleanly.
        let cfg = LithoConfig::default();
        let bank = KernelBank::paper_bank(&cfg);
        let mut m1 = Grid::zeros(180, 180);
        let mut m2 = Grid::zeros(180, 180);
        m1.fill_rect(&Rect::new(40, 20, 80, 160), 1.0);
        m2.fill_rect(&Rect::new(100, 20, 140, 160), 1.0);
        let t = simulate_print_pair(&m1, &m2, &bank, &cfg);
        assert!(
            t.get(90, 90) < 0.5,
            "split patterns must not bridge, got {}",
            t.get(90, 90)
        );
        // but both bars still print
        assert!(t.get(60, 90) > 0.5);
        assert!(t.get(120, 90) > 0.5);
    }
}
