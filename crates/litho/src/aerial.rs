//! Aerial image formation: `I = Σ_k w_k (M ⊗ h_k)²`.

use crate::kernel::KernelBank;
use crate::workspace::ConvScratch;
use ldmo_geom::Grid;

/// The aerial image of a mask together with the per-kernel coherent fields,
/// which the ILT gradient needs (`∂I/∂M` re-uses `M ⊗ h_k`).
#[derive(Debug, Clone)]
pub struct AerialImage {
    /// Total intensity `I = Σ_k w_k field_k²`.
    pub intensity: Grid,
    /// Coherent field `M ⊗ h_k` per kernel, same order as the bank.
    pub fields: Vec<Grid>,
}

impl AerialImage {
    /// Preallocates an aerial image for a `width × height` grid under a
    /// bank of `num_kernels` kernels, for use with [`aerial_image_into`].
    pub fn zeros(width: usize, height: usize, num_kernels: usize) -> Self {
        AerialImage {
            intensity: Grid::zeros(width, height),
            fields: (0..num_kernels)
                .map(|_| Grid::zeros(width, height))
                .collect(),
        }
    }
}

/// Computes the aerial image of `mask` under the optical system `bank`.
///
/// ```
/// use ldmo_geom::{Grid, Rect};
/// use ldmo_litho::{aerial_image, KernelBank, LithoConfig};
///
/// let cfg = LithoConfig::default();
/// let bank = KernelBank::paper_bank(&cfg);
/// let mut mask = Grid::zeros(96, 96);
/// mask.fill_rect(&Rect::new(20, 20, 76, 76), 1.0);
/// let aerial = aerial_image(&mask, &bank);
/// assert_eq!(aerial.fields.len(), bank.kernels().len());
/// // intensity is non-negative everywhere
/// assert!(aerial.intensity.min() >= 0.0);
/// ```
pub fn aerial_image(mask: &Grid, bank: &KernelBank) -> AerialImage {
    let (w, h) = mask.shape();
    let mut scratch = ConvScratch::new(w, h);
    let mut out = AerialImage::zeros(w, h, bank.kernels().len());
    aerial_image_into(mask, bank, &mut scratch, &mut out);
    out
}

/// Buffer-reuse variant of [`aerial_image`]: writes intensity and per-kernel
/// fields into `out` (fully overwritten). Allocation-free.
///
/// # Panics
///
/// Panics if `out` was not allocated for `mask`'s shape and `bank`'s kernel
/// count.
pub fn aerial_image_into(
    mask: &Grid,
    bank: &KernelBank,
    scratch: &mut ConvScratch,
    out: &mut AerialImage,
) {
    assert_eq!(
        out.fields.len(),
        bank.kernels().len(),
        "aerial buffer kernel count mismatch"
    );
    assert_eq!(mask.shape(), out.intensity.shape(), "output shape mismatch");
    // first kernel writes, the rest accumulate: no full-grid zero-fill
    for (k, (kernel, field)) in bank.kernels().iter().zip(&mut out.fields).enumerate() {
        kernel.field_into(mask, scratch, field);
        let wk = kernel.weight() as f32;
        let acc = out.intensity.as_mut_slice();
        let f = field.as_slice();
        if k == 0 {
            for (a, &v) in acc.iter_mut().zip(f) {
                *a = wk * v * v;
            }
        } else {
            for (a, &v) in acc.iter_mut().zip(f) {
                *a += wk * v * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LithoConfig;
    use ldmo_geom::Rect;

    fn bank() -> KernelBank {
        KernelBank::paper_bank(&LithoConfig::default())
    }

    #[test]
    fn empty_mask_dark_everywhere() {
        let mask = Grid::zeros(64, 64);
        let a = aerial_image(&mask, &bank());
        assert_eq!(a.intensity.max(), 0.0);
    }

    #[test]
    fn full_mask_reaches_total_weight() {
        let mask = Grid::filled(288, 288, 1.0);
        let a = aerial_image(&mask, &bank());
        let center = a.intensity.get(144, 144);
        let expected = bank().total_weight() as f32;
        assert!(
            (center - expected).abs() < 1e-3,
            "center {center} vs {expected}"
        );
    }

    #[test]
    fn intensity_at_straight_edge_equals_threshold() {
        // the calibration contract: at a long straight edge, I = Ith.
        let cfg = LithoConfig::default();
        let mut mask = Grid::zeros(192, 192);
        mask.fill_rect(&Rect::new(0, 0, 96, 192), 1.0);
        let a = aerial_image(&mask, &bank());
        let at_edge = a.intensity.get(96, 96);
        // field at half-plane boundary is ~0.5 (one pixel discretization skew)
        assert!(
            (at_edge - cfg.intensity_threshold).abs() < 0.25 * cfg.intensity_threshold,
            "edge intensity {at_edge} vs threshold {}",
            cfg.intensity_threshold
        );
    }

    #[test]
    fn intensity_monotone_in_mask_dose() {
        // doubling a (sub-saturation) mask transmission must not lower I
        let mut m1 = Grid::zeros(64, 64);
        m1.fill_rect(&Rect::new(28, 28, 36, 36), 0.4);
        let m2 = m1.map(|v| v * 2.0);
        let a1 = aerial_image(&m1, &bank());
        let a2 = aerial_image(&m2, &bank());
        for i in 0..64 * 64 {
            assert!(a2.intensity.as_slice()[i] >= a1.intensity.as_slice()[i] - 1e-7);
        }
    }
}
