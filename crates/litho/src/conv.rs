//! 2-D convolution: direct (reference), and fast separable convolution for
//! the radially symmetric Gaussian kernels used by the optical model.
//!
//! All convolutions use "same" output size with zero padding, which models a
//! mask embedded in an empty (chrome) surround.

use ldmo_geom::Grid;

/// Direct 2-D convolution of `input` with a dense `kernel`, same-size output,
/// zero padding. `O(W·H·kw·kh)` — the reference implementation used to
/// validate the separable and FFT fast paths, and for non-separable kernels.
///
/// The kernel is indexed `kernel[ky * kw + kx]` and is *centered*: taps run
/// from `-(kw/2)` to `kw - kw/2 - 1` relative to the output pixel
/// (convolution flips the kernel; for the symmetric kernels used here
/// convolution and correlation coincide).
///
/// # Panics
///
/// Panics if `kernel.len() != kw * kh` or either kernel dimension is even
/// (centered kernels must be odd-sized).
pub fn convolve2d_direct(input: &Grid, kernel: &[f32], kw: usize, kh: usize) -> Grid {
    assert_eq!(kernel.len(), kw * kh, "kernel buffer length mismatch");
    assert!(kw % 2 == 1 && kh % 2 == 1, "kernel must be odd-sized");
    let (w, h) = input.shape();
    let (cx, cy) = ((kw / 2) as i64, (kh / 2) as i64);
    let mut out = Grid::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for ky in 0..kh {
                for kx in 0..kw {
                    // convolution: out(x,y) = sum in(x - (kx - cx), y - (ky - cy)) * k(kx, ky)
                    let sx = x as i64 - (kx as i64 - cx);
                    let sy = y as i64 - (ky as i64 - cy);
                    acc += input.get_padded(sx, sy) * kernel[ky * kw + kx];
                }
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Separable convolution with a centered, odd-length 1-D `profile` applied
/// along x then along y: `input ⊗ (p pᵀ)`. `O(W·H·k)` per axis.
///
/// # Panics
///
/// Panics if `profile.len()` is even.
pub fn convolve_separable(input: &Grid, profile: &[f32]) -> Grid {
    let tmp = convolve_rows(input, profile);
    convolve_cols(&tmp, profile)
}

/// Correlation with a separable symmetric kernel. For the symmetric Gaussian
/// profiles used here this is identical to [`convolve_separable`]; it exists
/// so gradient code can state its intent (backpropagation through a
/// convolution is a correlation with the same kernel).
pub fn correlate_separable(input: &Grid, profile: &[f32]) -> Grid {
    // A symmetric profile equals its own flip, so correlation == convolution.
    convolve_separable(input, profile)
}

fn convolve_rows(input: &Grid, profile: &[f32]) -> Grid {
    assert!(profile.len() % 2 == 1, "profile must be odd-length");
    let (w, h) = input.shape();
    let c = (profile.len() / 2) as i64;
    let mut out = Grid::zeros(w, h);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        let row = &src[y * w..(y + 1) * w];
        let out_row = &mut dst[y * w..(y + 1) * w];
        // tap-outer accumulation over contiguous slices: for tap offset
        // `off = k - c`, out[x] += row[x - off] * p, i.e. a shifted
        // slice-add the compiler vectorizes
        for (k, &p) in profile.iter().enumerate() {
            let off = k as i64 - c;
            let (dst_range, src_range) = if off >= 0 {
                let off = (off as usize).min(w);
                (off..w, 0..w - off)
            } else {
                let off = ((-off) as usize).min(w);
                (0..w - off, off..w)
            };
            for (d, &s) in out_row[dst_range].iter_mut().zip(&row[src_range]) {
                *d += s * p;
            }
        }
    }
    out
}

fn convolve_cols(input: &Grid, profile: &[f32]) -> Grid {
    assert!(profile.len() % 2 == 1, "profile must be odd-length");
    let (w, h) = input.shape();
    let c = (profile.len() / 2) as i64;
    let mut out = Grid::zeros(w, h);
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        for (k, &p) in profile.iter().enumerate() {
            let sy = y as i64 - (k as i64 - c);
            if sy < 0 || sy as usize >= h {
                continue;
            }
            let src_row = &src[sy as usize * w..(sy as usize + 1) * w];
            let dst_row = &mut dst[y * w..(y + 1) * w];
            for (d, &s) in dst_row.iter_mut().zip(src_row) {
                *d += s * p;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn outer(profile: &[f32]) -> Vec<f32> {
        let k = profile.len();
        let mut dense = vec![0.0f32; k * k];
        for y in 0..k {
            for x in 0..k {
                dense[y * k + x] = profile[y] * profile[x];
            }
        }
        dense
    }

    #[test]
    fn identity_kernel_is_noop() {
        let mut g = Grid::zeros(5, 5);
        g.set(2, 2, 3.0);
        g.set(0, 4, -1.0);
        let out = convolve2d_direct(&g, &[1.0], 1, 1);
        assert_eq!(out, g);
        let out_sep = convolve_separable(&g, &[1.0]);
        assert_eq!(out_sep, g);
    }

    #[test]
    fn impulse_response_reproduces_kernel() {
        let mut g = Grid::zeros(7, 7);
        g.set(3, 3, 1.0);
        let kernel = [0.1, 0.2, 0.1, 0.2, 0.4, 0.2, 0.05, 0.1, 0.05];
        let out = convolve2d_direct(&g, &kernel, 3, 3);
        // impulse at center: output around (3,3) equals the kernel
        for ky in 0..3 {
            for kx in 0..3 {
                let v = out.get(2 + kx, 2 + ky);
                assert!((v - kernel[ky * 3 + kx]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn asymmetric_kernel_is_flipped() {
        // convolution flips the kernel: an impulse convolved with a kernel
        // that has weight only at its "right" tap shifts mass to the RIGHT
        // when the kernel tap is at the right (since out(x) = sum in(x-k')k).
        let mut g = Grid::zeros(5, 1);
        g.set(2, 0, 1.0);
        let kernel = [0.0, 0.0, 1.0]; // tap at kx=2, offset +1
        let out = convolve2d_direct(&g, &kernel, 3, 1);
        assert_eq!(out.get(3, 0), 1.0);
        assert_eq!(out.get(1, 0), 0.0);
    }

    #[test]
    fn separable_matches_direct_dense() {
        let profile = [0.25f32, 0.5, 0.25];
        let dense = outer(&profile);
        let mut g = Grid::zeros(9, 9);
        g.set(4, 4, 1.0);
        g.set(1, 7, 2.0);
        g.set(8, 0, -0.5);
        let a = convolve_separable(&g, &profile);
        let b = convolve2d_direct(&g, &dense, 3, 3);
        for (x, y) in (0..9).flat_map(|y| (0..9).map(move |x| (x, y))) {
            assert!((a.get(x, y) - b.get(x, y)).abs() < 1e-5, "at ({x},{y})");
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let g = Grid::zeros(4, 4);
        let _ = convolve2d_direct(&g, &[0.5, 0.5], 2, 1);
    }

    proptest! {
        #[test]
        fn separable_equals_dense_on_random_input(
            vals in proptest::collection::vec(-1.0f32..1.0, 64),
            p0 in 0.01f32..1.0, p1 in 0.01f32..1.0, p2 in 0.01f32..1.0,
        ) {
            let profile = [p0, p1, p2];
            let g = Grid::from_vec(8, 8, vals);
            let a = convolve_separable(&g, &profile);
            let b = convolve2d_direct(&g, &outer(&profile), 3, 3);
            for i in 0..64 {
                prop_assert!((a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-4);
            }
        }

        #[test]
        fn convolution_is_linear(
            vals in proptest::collection::vec(-1.0f32..1.0, 16),
            scale in -2.0f32..2.0,
        ) {
            let profile = [0.25f32, 0.5, 0.25];
            let g = Grid::from_vec(4, 4, vals);
            let scaled = g.map(|v| v * scale);
            let a = convolve_separable(&scaled, &profile);
            let b = convolve_separable(&g, &profile).map(|v| v * scale);
            for i in 0..16 {
                prop_assert!((a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-4);
            }
        }
    }
}
