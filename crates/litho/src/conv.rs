//! 2-D convolution: direct (reference), and fast separable convolution for
//! the radially symmetric Gaussian kernels used by the optical model.
//!
//! All convolutions use "same" output size with zero padding, which models a
//! mask embedded in an empty (chrome) surround.

use ldmo_geom::Grid;

/// Direct 2-D convolution of `input` with a dense `kernel`, same-size output,
/// zero padding. `O(W·H·kw·kh)` — the reference implementation used to
/// validate the separable and FFT fast paths, and for non-separable kernels.
///
/// The kernel is indexed `kernel[ky * kw + kx]` and is *centered*: taps run
/// from `-(kw/2)` to `kw - kw/2 - 1` relative to the output pixel
/// (convolution flips the kernel; for the symmetric kernels used here
/// convolution and correlation coincide).
///
/// # Panics
///
/// Panics if `kernel.len() != kw * kh` or either kernel dimension is even
/// (centered kernels must be odd-sized).
pub fn convolve2d_direct(input: &Grid, kernel: &[f32], kw: usize, kh: usize) -> Grid {
    assert_eq!(kernel.len(), kw * kh, "kernel buffer length mismatch");
    assert!(kw % 2 == 1 && kh % 2 == 1, "kernel must be odd-sized");
    let (w, h) = input.shape();
    let (cx, cy) = ((kw / 2) as i64, (kh / 2) as i64);
    let mut out = Grid::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for ky in 0..kh {
                for kx in 0..kw {
                    // convolution: out(x,y) = sum in(x - (kx - cx), y - (ky - cy)) * k(kx, ky)
                    let sx = x as i64 - (kx as i64 - cx);
                    let sy = y as i64 - (ky as i64 - cy);
                    acc += input.get_padded(sx, sy) * kernel[ky * kw + kx];
                }
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Separable convolution with a centered, odd-length 1-D `profile` applied
/// along x then along y: `input ⊗ (p pᵀ)`. `O(W·H·k)` per axis.
///
/// Thin wrapper over [`convolve_separable_into`] with transient buffers;
/// hot loops should hold the buffers and call the `_into` variant.
///
/// # Panics
///
/// Panics if `profile.len()` is even.
pub fn convolve_separable(input: &Grid, profile: &[f32]) -> Grid {
    let (w, h) = input.shape();
    let mut tmp = Grid::zeros(w, h);
    let mut out = Grid::zeros(w, h);
    convolve_separable_into(input, profile, &mut tmp, &mut out);
    out
}

/// Buffer-reuse variant of [`convolve_separable`]: the row pass writes into
/// `tmp`, the column pass into `out`. Neither buffer's prior contents
/// matter; both are fully overwritten. Allocation-free.
///
/// Dispatches to the process-global [`crate::backend`] selection; every
/// in-tree backend is bit-identical, so the choice affects speed only.
///
/// # Panics
///
/// Panics if `profile.len()` is even or either buffer's shape differs from
/// `input`'s.
pub fn convolve_separable_into(input: &Grid, profile: &[f32], tmp: &mut Grid, out: &mut Grid) {
    if ldmo_obs::enabled() {
        conv_pass_counter().incr();
    }
    crate::backend::active().convolve_separable_into(input, profile, tmp, out);
}

/// Telemetry: one count per separable convolution pass (row + column
/// sweep). Registered once; recording is a single relaxed atomic add, so
/// the zero-allocation hot path (DESIGN.md §6) stays allocation-free.
fn conv_pass_counter() -> ldmo_obs::Counter {
    static COUNTER: std::sync::OnceLock<ldmo_obs::Counter> = std::sync::OnceLock::new();
    *COUNTER.get_or_init(|| ldmo_obs::counter("litho.conv_passes"))
}

/// Correlation with a separable symmetric kernel. For the symmetric Gaussian
/// profiles used here this is identical to [`convolve_separable`]; it exists
/// so gradient code can state its intent (backpropagation through a
/// convolution is a correlation with the same kernel).
pub fn correlate_separable(input: &Grid, profile: &[f32]) -> Grid {
    // A symmetric profile equals its own flip, so correlation == convolution.
    convolve_separable(input, profile)
}

/// Buffer-reuse variant of [`correlate_separable`]; see
/// [`convolve_separable_into`].
pub fn correlate_separable_into(input: &Grid, profile: &[f32], tmp: &mut Grid, out: &mut Grid) {
    convolve_separable_into(input, profile, tmp, out);
}

/// Output tile width of the register-blocked convolution passes: the
/// accumulator tile lives in SIMD registers across the whole tap loop, so
/// the output row is written exactly once instead of once per tap.
const TILE: usize = 32;

/// Stack capacity for the zero-padded source row of the row pass; rows
/// needing more (width + 2·radius) fall back to one heap allocation.
const PAD_STACK: usize = 1024;

/// The scalar row pass of the register-blocked separable convolution — the
/// reference implementation every backend must reproduce bit-for-bit.
pub(crate) fn convolve_rows_scalar(input: &Grid, profile: &[f32], out: &mut Grid) {
    assert!(profile.len() % 2 == 1, "profile must be odd-length");
    assert_eq!(input.shape(), out.shape(), "output shape mismatch");
    let (w, h) = input.shape();
    let k_len = profile.len();
    let c = k_len / 2;
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    // zero-padded row: out-of-range taps read an exact 0.0 instead of
    // branching, which keeps every tile iteration branch-free
    let padded_len = w + 2 * c;
    let mut stack_buf = [0.0f32; PAD_STACK];
    let mut heap_buf = Vec::new();
    let padded: &mut [f32] = if padded_len <= PAD_STACK {
        &mut stack_buf[..padded_len]
    } else {
        heap_buf.resize(padded_len, 0.0);
        &mut heap_buf
    };
    for y in 0..h {
        padded[c..c + w].copy_from_slice(&src[y * w..(y + 1) * w]);
        let out_row = &mut dst[y * w..(y + 1) * w];
        // out[x] = Σ_k p[k] · row[x - (k - c)] = Σ_k p[k] · padded[x + 2c - k],
        // accumulated in increasing-k order per element (the same order as
        // a tap-at-a-time pass over a zeroed output)
        let mut x = 0;
        while x + TILE <= w {
            let mut acc = [0.0f32; TILE];
            for (k, &p) in profile.iter().enumerate() {
                let s = &padded[x + 2 * c - k..x + 2 * c - k + TILE];
                for j in 0..TILE {
                    acc[j] += s[j] * p;
                }
            }
            out_row[x..x + TILE].copy_from_slice(&acc);
            x += TILE;
        }
        for (xr, o) in out_row.iter_mut().enumerate().skip(x) {
            let mut a = 0.0f32;
            for (k, &p) in profile.iter().enumerate() {
                a += padded[xr + 2 * c - k] * p;
            }
            *o = a;
        }
    }
}

/// The scalar column pass; see [`convolve_rows_scalar`].
pub(crate) fn convolve_cols_scalar(input: &Grid, profile: &[f32], out: &mut Grid) {
    assert!(profile.len() % 2 == 1, "profile must be odd-length");
    assert_eq!(input.shape(), out.shape(), "output shape mismatch");
    let (w, h) = input.shape();
    let k_len = profile.len();
    let c = k_len as i64 / 2;
    let src = input.as_slice();
    let dst = out.as_mut_slice();
    for y in 0..h {
        let out_row = &mut dst[y * w..(y + 1) * w];
        // out(x, y) = Σ_k p[k] · in(x, y - (k - c)); out-of-range source
        // rows contribute nothing, and k stays increasing per element
        let mut x = 0;
        while x + TILE <= w {
            let mut acc = [0.0f32; TILE];
            for (k, &p) in profile.iter().enumerate() {
                let sy = y as i64 - (k as i64 - c);
                if sy < 0 || sy as usize >= h {
                    continue;
                }
                let s = &src[sy as usize * w + x..sy as usize * w + x + TILE];
                for j in 0..TILE {
                    acc[j] += s[j] * p;
                }
            }
            out_row[x..x + TILE].copy_from_slice(&acc);
            x += TILE;
        }
        for (xr, o) in out_row.iter_mut().enumerate().skip(x) {
            let mut a = 0.0f32;
            for (k, &p) in profile.iter().enumerate() {
                let sy = y as i64 - (k as i64 - c);
                if sy < 0 || sy as usize >= h {
                    continue;
                }
                a += src[sy as usize * w + xr] * p;
            }
            *o = a;
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD passes (x86_64 SSE2/AVX2, runtime-detected)
//
// Bit-identity argument: the scalar tile loop accumulates, for each output
// element j, `acc[j] += padded[...k...][j] * p[k]` in increasing-k order
// with an unfused f32 multiply then add. The vector passes below keep the
// identical per-element sequence and merely evaluate 4/8 adjacent j lanes
// per instruction — `mulps`/`addps` are exact IEEE-754 single ops per lane,
// and no FMA contraction is ever emitted — so every output bit matches the
// scalar pass. The tile remainder and all degenerate shapes reuse the same
// scalar epilogue loops.
// ---------------------------------------------------------------------------

/// The SIMD row pass: scalar prologue/epilogue with vectorized 32-wide
/// tiles on x86_64; delegates to [`convolve_rows_scalar`] elsewhere.
pub(crate) fn convolve_rows_simd(input: &Grid, profile: &[f32], out: &mut Grid) {
    #[cfg(target_arch = "x86_64")]
    {
        assert!(profile.len() % 2 == 1, "profile must be odd-length");
        assert_eq!(input.shape(), out.shape(), "output shape mismatch");
        let (w, h) = input.shape();
        let c = profile.len() / 2;
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let padded_len = w + 2 * c;
        let mut stack_buf = [0.0f32; PAD_STACK];
        let mut heap_buf = Vec::new();
        let padded: &mut [f32] = if padded_len <= PAD_STACK {
            &mut stack_buf[..padded_len]
        } else {
            heap_buf.resize(padded_len, 0.0);
            &mut heap_buf
        };
        let avx2 = x86::avx2_available();
        for y in 0..h {
            padded[c..c + w].copy_from_slice(&src[y * w..(y + 1) * w]);
            let out_row = &mut dst[y * w..(y + 1) * w];
            let mut x = 0;
            while x + TILE <= w {
                // SAFETY: `x + TILE <= w` keeps every load of
                // `padded[x + 2c - k .. +TILE]` (k ≤ 2c) and every store of
                // `out_row[x .. x + TILE]` in bounds; the ISA was detected.
                unsafe {
                    if avx2 {
                        x86::row_tile_avx2(padded, profile, out_row, x, c);
                    } else {
                        x86::row_tile_sse2(padded, profile, out_row, x, c);
                    }
                }
                x += TILE;
            }
            for (xr, o) in out_row.iter_mut().enumerate().skip(x) {
                let mut a = 0.0f32;
                for (k, &p) in profile.iter().enumerate() {
                    a += padded[xr + 2 * c - k] * p;
                }
                *o = a;
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    convolve_rows_scalar(input, profile, out);
}

/// The SIMD column pass; see [`convolve_rows_simd`].
pub(crate) fn convolve_cols_simd(input: &Grid, profile: &[f32], out: &mut Grid) {
    #[cfg(target_arch = "x86_64")]
    {
        assert!(profile.len() % 2 == 1, "profile must be odd-length");
        assert_eq!(input.shape(), out.shape(), "output shape mismatch");
        let (w, h) = input.shape();
        let c = profile.len() as i64 / 2;
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let avx2 = x86::avx2_available();
        for y in 0..h {
            let out_row = &mut dst[y * w..(y + 1) * w];
            let mut x = 0;
            while x + TILE <= w {
                // SAFETY: `x + TILE <= w` and the in-range `sy` filter keep
                // every `src[sy·w + x .. +TILE]` load and the
                // `out_row[x .. x + TILE]` store in bounds.
                unsafe {
                    if avx2 {
                        x86::col_tile_avx2(src, profile, out_row, x, y, w, h, c);
                    } else {
                        x86::col_tile_sse2(src, profile, out_row, x, y, w, h, c);
                    }
                }
                x += TILE;
            }
            for (xr, o) in out_row.iter_mut().enumerate().skip(x) {
                let mut a = 0.0f32;
                for (k, &p) in profile.iter().enumerate() {
                    let sy = y as i64 - (k as i64 - c);
                    if sy < 0 || sy as usize >= h {
                        continue;
                    }
                    a += src[sy as usize * w + xr] * p;
                }
                *o = a;
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    convolve_cols_scalar(input, profile, out);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The unsafe vector tile kernels. Callers guarantee bounds (see the
    //! SAFETY comments at the call sites); AVX2 entry points additionally
    //! require the runtime feature check that [`avx2_available`] caches.

    use super::TILE;
    use std::arch::x86_64::*;

    /// Cached `is_x86_feature_detected!("avx2")` — SSE2 is baseline x86_64
    /// and needs no check.
    pub(super) fn avx2_available() -> bool {
        static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    /// One 32-wide row-pass output tile at `out_row[x..x+TILE]`, AVX2
    /// (4 × 8 lanes).
    ///
    /// # Safety
    ///
    /// `x + TILE <= out_row.len()`, `padded.len() >= x + 2c + TILE`, and
    /// the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile_avx2(
        padded: &[f32],
        profile: &[f32],
        out_row: &mut [f32],
        x: usize,
        c: usize,
    ) {
        let mut acc = [_mm256_setzero_ps(); TILE / 8];
        for (k, &p) in profile.iter().enumerate() {
            let pv = _mm256_set1_ps(p);
            let base = padded.as_ptr().add(x + 2 * c - k);
            for (i, a) in acc.iter_mut().enumerate() {
                let s = _mm256_loadu_ps(base.add(8 * i));
                *a = _mm256_add_ps(*a, _mm256_mul_ps(s, pv));
            }
        }
        let dst = out_row.as_mut_ptr().add(x);
        for (i, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(dst.add(8 * i), *a);
        }
    }

    /// One 32-wide row-pass output tile, SSE2 (8 × 4 lanes).
    ///
    /// # Safety
    ///
    /// `x + TILE <= out_row.len()` and `padded.len() >= x + 2c + TILE`.
    pub(super) unsafe fn row_tile_sse2(
        padded: &[f32],
        profile: &[f32],
        out_row: &mut [f32],
        x: usize,
        c: usize,
    ) {
        let mut acc = [_mm_setzero_ps(); TILE / 4];
        for (k, &p) in profile.iter().enumerate() {
            let pv = _mm_set1_ps(p);
            let base = padded.as_ptr().add(x + 2 * c - k);
            for (i, a) in acc.iter_mut().enumerate() {
                let s = _mm_loadu_ps(base.add(4 * i));
                *a = _mm_add_ps(*a, _mm_mul_ps(s, pv));
            }
        }
        let dst = out_row.as_mut_ptr().add(x);
        for (i, a) in acc.iter().enumerate() {
            _mm_storeu_ps(dst.add(4 * i), *a);
        }
    }

    /// One 32-wide column-pass output tile at `out_row[x..x+TILE]`, AVX2.
    ///
    /// # Safety
    ///
    /// `x + TILE <= w`, `src.len() == w * h`, and the host supports AVX2.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn col_tile_avx2(
        src: &[f32],
        profile: &[f32],
        out_row: &mut [f32],
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        c: i64,
    ) {
        let mut acc = [_mm256_setzero_ps(); TILE / 8];
        for (k, &p) in profile.iter().enumerate() {
            let sy = y as i64 - (k as i64 - c);
            if sy < 0 || sy as usize >= h {
                continue;
            }
            let pv = _mm256_set1_ps(p);
            let base = src.as_ptr().add(sy as usize * w + x);
            for (i, a) in acc.iter_mut().enumerate() {
                let s = _mm256_loadu_ps(base.add(8 * i));
                *a = _mm256_add_ps(*a, _mm256_mul_ps(s, pv));
            }
        }
        let dst = out_row.as_mut_ptr().add(x);
        for (i, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(dst.add(8 * i), *a);
        }
    }

    /// One 32-wide column-pass output tile, SSE2.
    ///
    /// # Safety
    ///
    /// `x + TILE <= w` and `src.len() == w * h`.
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn col_tile_sse2(
        src: &[f32],
        profile: &[f32],
        out_row: &mut [f32],
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        c: i64,
    ) {
        let mut acc = [_mm_setzero_ps(); TILE / 4];
        for (k, &p) in profile.iter().enumerate() {
            let sy = y as i64 - (k as i64 - c);
            if sy < 0 || sy as usize >= h {
                continue;
            }
            let pv = _mm_set1_ps(p);
            let base = src.as_ptr().add(sy as usize * w + x);
            for (i, a) in acc.iter_mut().enumerate() {
                let s = _mm_loadu_ps(base.add(4 * i));
                *a = _mm_add_ps(*a, _mm_mul_ps(s, pv));
            }
        }
        let dst = out_row.as_mut_ptr().add(x);
        for (i, a) in acc.iter().enumerate() {
            _mm_storeu_ps(dst.add(4 * i), *a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn outer(profile: &[f32]) -> Vec<f32> {
        let k = profile.len();
        let mut dense = vec![0.0f32; k * k];
        for y in 0..k {
            for x in 0..k {
                dense[y * k + x] = profile[y] * profile[x];
            }
        }
        dense
    }

    #[test]
    fn identity_kernel_is_noop() {
        let mut g = Grid::zeros(5, 5);
        g.set(2, 2, 3.0);
        g.set(0, 4, -1.0);
        let out = convolve2d_direct(&g, &[1.0], 1, 1);
        assert_eq!(out, g);
        let out_sep = convolve_separable(&g, &[1.0]);
        assert_eq!(out_sep, g);
    }

    #[test]
    fn impulse_response_reproduces_kernel() {
        let mut g = Grid::zeros(7, 7);
        g.set(3, 3, 1.0);
        let kernel = [0.1, 0.2, 0.1, 0.2, 0.4, 0.2, 0.05, 0.1, 0.05];
        let out = convolve2d_direct(&g, &kernel, 3, 3);
        // impulse at center: output around (3,3) equals the kernel
        for ky in 0..3 {
            for kx in 0..3 {
                let v = out.get(2 + kx, 2 + ky);
                assert!((v - kernel[ky * 3 + kx]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn asymmetric_kernel_is_flipped() {
        // convolution flips the kernel: an impulse convolved with a kernel
        // that has weight only at its "right" tap shifts mass to the RIGHT
        // when the kernel tap is at the right (since out(x) = sum in(x-k')k).
        let mut g = Grid::zeros(5, 1);
        g.set(2, 0, 1.0);
        let kernel = [0.0, 0.0, 1.0]; // tap at kx=2, offset +1
        let out = convolve2d_direct(&g, &kernel, 3, 1);
        assert_eq!(out.get(3, 0), 1.0);
        assert_eq!(out.get(1, 0), 0.0);
    }

    #[test]
    fn separable_matches_direct_dense() {
        let profile = [0.25f32, 0.5, 0.25];
        let dense = outer(&profile);
        let mut g = Grid::zeros(9, 9);
        g.set(4, 4, 1.0);
        g.set(1, 7, 2.0);
        g.set(8, 0, -0.5);
        let a = convolve_separable(&g, &profile);
        let b = convolve2d_direct(&g, &dense, 3, 3);
        for (x, y) in (0..9).flat_map(|y| (0..9).map(move |x| (x, y))) {
            assert!((a.get(x, y) - b.get(x, y)).abs() < 1e-5, "at ({x},{y})");
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let g = Grid::zeros(4, 4);
        let _ = convolve2d_direct(&g, &[0.5, 0.5], 2, 1);
    }

    #[test]
    fn into_variant_overwrites_dirty_buffers_bit_identically() {
        let profile = [0.2f32, 0.6, 0.2];
        let mut g = Grid::zeros(9, 9);
        g.set(4, 4, 1.0);
        g.set(0, 8, -2.0);
        let reference = convolve_separable(&g, &profile);
        // garbage in the buffers must not leak into the result
        let mut tmp = Grid::filled(9, 9, f32::NAN);
        let mut out = Grid::filled(9, 9, 123.0);
        convolve_separable_into(&g, &profile, &mut tmp, &mut out);
        assert_eq!(out, reference);
        let mut out2 = Grid::filled(9, 9, -7.0);
        correlate_separable_into(&g, &profile, &mut tmp, &mut out2);
        assert_eq!(out2, correlate_separable(&g, &profile));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn into_variant_rejects_wrong_shape() {
        let g = Grid::zeros(4, 4);
        let mut tmp = Grid::zeros(4, 4);
        let mut out = Grid::zeros(5, 4);
        convolve_separable_into(&g, &[1.0], &mut tmp, &mut out);
    }

    proptest! {
        #[test]
        fn separable_equals_dense_on_random_input(
            vals in proptest::collection::vec(-1.0f32..1.0, 64),
            p0 in 0.01f32..1.0, p1 in 0.01f32..1.0, p2 in 0.01f32..1.0,
        ) {
            let profile = [p0, p1, p2];
            let g = Grid::from_vec(8, 8, vals);
            let a = convolve_separable(&g, &profile);
            let b = convolve2d_direct(&g, &outer(&profile), 3, 3);
            for i in 0..64 {
                prop_assert!((a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-4);
            }
        }

        #[test]
        fn convolution_is_linear(
            vals in proptest::collection::vec(-1.0f32..1.0, 16),
            scale in -2.0f32..2.0,
        ) {
            let profile = [0.25f32, 0.5, 0.25];
            let g = Grid::from_vec(4, 4, vals);
            let scaled = g.map(|v| v * scale);
            let a = convolve_separable(&scaled, &profile);
            let b = convolve_separable(&g, &profile).map(|v| v * scale);
            for i in 0..16 {
                prop_assert!((a.as_slice()[i] - b.as_slice()[i]).abs() < 1e-4);
            }
        }
    }
}
