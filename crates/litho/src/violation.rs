//! Print-violation detection.
//!
//! A *print violation* in the paper is a catastrophic printing failure — two
//! patterns merging into one (bridge) or a pattern failing to resolve
//! (missing). The LDMO flow checks for these every three ILT iterations and
//! falls back to another decomposition candidate when they occur
//! (Section III-C); they also enter the training score with the largest
//! weight (`γ = 8000`, Eq. 9).

use crate::components::label_components;
use ldmo_geom::{Grid, Rect};
use std::collections::HashMap;

/// One detected print violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Target pattern `pattern` does not print (no resist above level at its
    /// center).
    Missing {
        /// Index into the target list.
        pattern: usize,
    },
    /// Target patterns `a` and `b` print as a single connected component.
    Bridge {
        /// Lower pattern index.
        a: usize,
        /// Higher pattern index.
        b: usize,
    },
}

/// All violations found in one printed image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViolationReport {
    /// Detected violations, deduplicated.
    pub violations: Vec<ViolationKind>,
}

impl ViolationReport {
    /// Total violation count (the `#Violation` term of Eq. 9).
    pub fn count(&self) -> usize {
        self.violations.len()
    }

    /// Whether the print is violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of bridge violations.
    pub fn bridges(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| matches!(v, ViolationKind::Bridge { .. }))
            .count()
    }

    /// Number of missing-pattern violations.
    pub fn missing(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| matches!(v, ViolationKind::Missing { .. }))
            .count()
    }
}

/// Detects bridge/missing violations of `printed` against the `targets`.
///
/// Each target pattern is located by its center pixel in the labeled
/// component map of the binarized print. Patterns mapping to background are
/// missing; pairs of patterns mapping to the same component are bridged.
/// Targets are in nm; `printed` is a raster at `nm_per_px` nm per pixel.
///
/// ```
/// use ldmo_geom::{Grid, Rect};
/// use ldmo_litho::detect_violations;
///
/// let targets = [Rect::new(2, 2, 8, 8), Rect::new(12, 2, 18, 8)];
/// let mut printed = Grid::zeros(24, 12);
/// printed.fill_rect(&targets[0], 1.0);
/// printed.fill_rect(&targets[1], 1.0);
/// assert!(detect_violations(&printed, &targets, 0.5, 1.0).is_clean());
/// ```
pub fn detect_violations(
    printed: &Grid,
    targets: &[Rect],
    level: f32,
    nm_per_px: f64,
) -> ViolationReport {
    let labels = label_components(printed, level);
    let (w, h) = printed.shape();
    let mut owner: HashMap<u32, usize> = HashMap::new();
    let mut report = ViolationReport::default();
    for (i, r) in targets.iter().enumerate() {
        let c = r.center_f();
        let cx = ((c.x / nm_per_px) as i32).clamp(0, w as i32 - 1) as usize;
        let cy = ((c.y / nm_per_px) as i32).clamp(0, h as i32 - 1) as usize;
        let lab = labels.label(cx, cy);
        if lab == 0 {
            report
                .violations
                .push(ViolationKind::Missing { pattern: i });
            continue;
        }
        match owner.get(&lab) {
            Some(&j) => {
                report.violations.push(ViolationKind::Bridge {
                    a: j.min(i),
                    b: j.max(i),
                });
            }
            None => {
                owner.insert(lab, i);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_print_no_violations() {
        let targets = [Rect::new(2, 2, 8, 8), Rect::new(14, 2, 20, 8)];
        let mut printed = Grid::zeros(24, 12);
        printed.fill_rect(&targets[0], 1.0);
        printed.fill_rect(&targets[1], 1.0);
        let r = detect_violations(&printed, &targets, 0.5, 1.0);
        assert!(r.is_clean());
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn merged_print_is_bridge() {
        let targets = [Rect::new(2, 2, 8, 8), Rect::new(10, 2, 16, 8)];
        let mut printed = Grid::zeros(24, 12);
        printed.fill_rect(&Rect::new(2, 2, 16, 8), 1.0); // one blob over both
        let r = detect_violations(&printed, &targets, 0.5, 1.0);
        assert_eq!(r.bridges(), 1);
        assert_eq!(r.violations[0], ViolationKind::Bridge { a: 0, b: 1 });
    }

    #[test]
    fn absent_print_is_missing() {
        let targets = [Rect::new(2, 2, 8, 8)];
        let printed = Grid::zeros(12, 12);
        let r = detect_violations(&printed, &targets, 0.5, 1.0);
        assert_eq!(r.missing(), 1);
        assert_eq!(r.violations[0], ViolationKind::Missing { pattern: 0 });
    }

    #[test]
    fn three_way_bridge_reports_pairs() {
        let targets = [
            Rect::new(2, 2, 6, 6),
            Rect::new(8, 2, 12, 6),
            Rect::new(14, 2, 18, 6),
        ];
        let mut printed = Grid::zeros(24, 8);
        printed.fill_rect(&Rect::new(2, 2, 18, 6), 1.0);
        let r = detect_violations(&printed, &targets, 0.5, 1.0);
        assert_eq!(r.bridges(), 2); // (0,1) and (0,2) against the first owner
        assert!(r.violations.contains(&ViolationKind::Bridge { a: 0, b: 1 }));
        assert!(r.violations.contains(&ViolationKind::Bridge { a: 0, b: 2 }));
    }

    #[test]
    fn mixed_missing_and_bridge() {
        let targets = [
            Rect::new(2, 2, 6, 6),
            Rect::new(8, 2, 12, 6),
            Rect::new(16, 2, 20, 6),
        ];
        let mut printed = Grid::zeros(24, 8);
        printed.fill_rect(&Rect::new(2, 2, 12, 6), 1.0); // bridges 0-1, 2 missing
        let r = detect_violations(&printed, &targets, 0.5, 1.0);
        assert_eq!(r.bridges(), 1);
        assert_eq!(r.missing(), 1);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn separate_blobs_not_bridged_even_if_close() {
        let targets = [Rect::new(2, 2, 8, 8), Rect::new(10, 2, 16, 8)];
        let mut printed = Grid::zeros(24, 12);
        printed.fill_rect(&targets[0], 1.0);
        printed.fill_rect(&targets[1], 1.0); // gap of 2px at x=8..10
        let r = detect_violations(&printed, &targets, 0.5, 1.0);
        assert!(r.is_clean());
    }
}
