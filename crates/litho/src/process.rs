//! Process-window evaluation: dose and defocus corners.
//!
//! The paper's ILT reference [6] (MOSAIC) is *process-window aware*: a mask
//! is only manufacturable if it prints across dose/focus variation, not
//! just at the nominal condition. This module provides the corner models
//! and the process-variation (PV) band metric used by the extension
//! benches (DESIGN.md §4):
//!
//! - **dose corners** scale the aerial intensity by `1 ± δ`;
//! - **defocus corners** widen the coherent kernels (a defocused beam
//!   blurs), modeled by scaling every kernel sigma by `1 + φ`;
//! - the **PV band** is the set of pixels whose printed state differs
//!   between the outermost corners — its area is a standard printability
//!   robustness metric.

use crate::aerial::aerial_image;
use crate::kernel::{CoherentKernel, KernelBank};
use crate::metrics::pvband_area;
use crate::resist::{combine_double_pattern, resist_threshold};
use crate::LithoConfig;
use ldmo_geom::Grid;

/// One process condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessCorner {
    /// Dose multiplier applied to the aerial intensity (1.0 = nominal).
    pub dose: f32,
    /// Relative defocus blur: every kernel sigma is scaled by
    /// `1 + defocus` (0.0 = best focus).
    pub defocus: f64,
}

impl ProcessCorner {
    /// The nominal condition.
    pub const NOMINAL: ProcessCorner = ProcessCorner {
        dose: 1.0,
        defocus: 0.0,
    };

    /// The symmetric corner set `{nominal, ±dose, +defocus}` used by the
    /// extension benches.
    pub fn standard_set(dose_delta: f32, defocus: f64) -> Vec<ProcessCorner> {
        vec![
            ProcessCorner::NOMINAL,
            ProcessCorner {
                dose: 1.0 + dose_delta,
                defocus: 0.0,
            },
            ProcessCorner {
                dose: 1.0 - dose_delta,
                defocus: 0.0,
            },
            ProcessCorner { dose: 1.0, defocus },
        ]
    }
}

/// A kernel bank re-derived for a defocused condition.
///
/// # Panics
///
/// Panics if `1 + defocus <= 0`.
pub fn defocused_bank(cfg: &LithoConfig, defocus: f64) -> KernelBank {
    let scale = 1.0 + defocus;
    assert!(scale > 0.0, "defocus must keep sigmas positive");
    let total = cfg.total_kernel_weight();
    let w1 = total * cfg.primary_weight_fraction;
    let w2 = total - w1;
    let px = cfg.nm_per_px;
    let primary = if cfg.ring_amplitude > 0.0 {
        CoherentKernel::difference_of_gaussians(
            cfg.sigma_primary * scale / px,
            cfg.ring_sigma * scale / px,
            cfg.ring_amplitude,
            w1,
        )
    } else {
        CoherentKernel::gaussian(cfg.sigma_primary * scale / px, w1)
    };
    KernelBank::new(vec![
        primary,
        CoherentKernel::gaussian(cfg.sigma_secondary * scale / px, w2),
    ])
}

/// Prints a double-patterning mask pair at a process corner.
pub fn print_at_corner(
    mask1: &Grid,
    mask2: &Grid,
    corner: ProcessCorner,
    cfg: &LithoConfig,
) -> Grid {
    let bank = defocused_bank(cfg, corner.defocus);
    let print_one = |mask: &Grid| {
        let mut aerial = aerial_image(mask, &bank).intensity;
        if corner.dose != 1.0 {
            aerial.map_inplace(|v| v * corner.dose);
        }
        resist_threshold(&aerial, cfg)
    };
    combine_double_pattern(&print_one(mask1), &print_one(mask2))
}

/// Process-window summary of a mask pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessWindowReport {
    /// PV-band area in pixels (symmetric difference between the highest-
    /// and lowest-dose prints).
    pub pvband_px: usize,
    /// Printed area (pixels above the print level) per corner, in the
    /// order the corners were given.
    pub printed_area_px: Vec<usize>,
}

/// Evaluates a mask pair across `corners` and reports the PV band between
/// the extreme dose corners.
///
/// # Panics
///
/// Panics if `corners` is empty.
pub fn process_window_report(
    mask1: &Grid,
    mask2: &Grid,
    corners: &[ProcessCorner],
    cfg: &LithoConfig,
) -> ProcessWindowReport {
    assert!(!corners.is_empty(), "need at least one corner");
    let prints: Vec<Grid> = corners
        .iter()
        .map(|&c| print_at_corner(mask1, mask2, c, cfg))
        .collect();
    let printed_area_px = prints
        .iter()
        .map(|p| p.count_above(cfg.print_level))
        .collect();
    // extreme dose corners for the PV band
    let hi = corners
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.dose.total_cmp(&b.1.dose))
        .map(|(i, _)| i)
        .expect("non-empty");
    let lo = corners
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.dose.total_cmp(&b.1.dose))
        .map(|(i, _)| i)
        .expect("non-empty");
    ProcessWindowReport {
        pvband_px: pvband_area(&prints[hi], &prints[lo], cfg.print_level),
        printed_area_px,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn masks() -> (Grid, Grid, LithoConfig) {
        let cfg = LithoConfig::default();
        let mut m1 = Grid::zeros(224, 224);
        m1.fill_rect(&Rect::new(20, 20, 110, 110), 1.0);
        let mut m2 = Grid::zeros(224, 224);
        m2.fill_rect(&Rect::new(130, 130, 214, 214), 1.0);
        (m1, m2, cfg)
    }

    #[test]
    fn higher_dose_prints_more_area() {
        let (m1, m2, cfg) = masks();
        let lo = print_at_corner(
            &m1,
            &m2,
            ProcessCorner {
                dose: 0.9,
                defocus: 0.0,
            },
            &cfg,
        );
        let hi = print_at_corner(
            &m1,
            &m2,
            ProcessCorner {
                dose: 1.1,
                defocus: 0.0,
            },
            &cfg,
        );
        assert!(
            hi.count_above(0.5) > lo.count_above(0.5),
            "dose monotonicity violated: {} vs {}",
            hi.count_above(0.5),
            lo.count_above(0.5)
        );
    }

    #[test]
    fn nominal_corner_matches_plain_simulation() {
        let (m1, m2, cfg) = masks();
        let corner = print_at_corner(&m1, &m2, ProcessCorner::NOMINAL, &cfg);
        let bank = KernelBank::paper_bank(&cfg);
        let direct = crate::simulate_print_pair(&m1, &m2, &bank, &cfg);
        assert_eq!(corner, direct);
    }

    #[test]
    fn defocus_widens_kernels() {
        let cfg = LithoConfig::default();
        let nominal = defocused_bank(&cfg, 0.0);
        let blurred = defocused_bank(&cfg, 0.2);
        assert!(blurred.interaction_radius() > nominal.interaction_radius());
        // weight is preserved
        assert!((blurred.total_weight() - nominal.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn pvband_nonzero_under_dose_swing() {
        let (m1, m2, cfg) = masks();
        let report = process_window_report(&m1, &m2, &ProcessCorner::standard_set(0.1, 0.15), &cfg);
        assert!(report.pvband_px > 0);
        assert_eq!(report.printed_area_px.len(), 4);
    }

    #[test]
    fn zero_dose_swing_gives_zero_pvband() {
        let (m1, m2, cfg) = masks();
        let report = process_window_report(
            &m1,
            &m2,
            &[ProcessCorner::NOMINAL, ProcessCorner::NOMINAL],
            &cfg,
        );
        assert_eq!(report.pvband_px, 0);
    }

    #[test]
    fn standard_set_contains_nominal_first() {
        let set = ProcessCorner::standard_set(0.08, 0.1);
        assert_eq!(set[0], ProcessCorner::NOMINAL);
        assert_eq!(set.len(), 4);
    }
}
