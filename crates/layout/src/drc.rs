//! Design-rule checker — the stand-in for the commercial DRC run the paper
//! applies to its generated layouts ("verified with Mentor Calibre design
//! rule check").
//!
//! The rules model a 45 nm contact layer: exact contact size, minimum
//! contact-to-contact spacing (the double-patterning composite-layer rule,
//! *not* the single-mask rule — sub-`nmin` spacings are legal on the layout
//! and are exactly what decomposition resolves), and window containment.

use crate::Layout;
use ldmo_geom::Rect;

/// Contact-layer design rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrcRules {
    /// Minimum pattern width/height in nm.
    pub min_size: i32,
    /// Maximum pattern width/height in nm.
    pub max_size: i32,
    /// Minimum edge-to-edge spacing between any two patterns in nm
    /// (composite layer; both masks together).
    pub min_spacing: f64,
    /// Margin every pattern must keep from the window boundary, in nm,
    /// so optical context does not leak off-canvas.
    pub window_margin: i32,
}

impl Default for DrcRules {
    fn default() -> Self {
        DrcRules {
            min_size: 50,
            max_size: 90,
            min_spacing: 50.0,
            window_margin: 40,
        }
    }
}

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcViolation {
    /// Pattern `pattern` is smaller than `min_size` or larger than
    /// `max_size` in some dimension.
    BadSize {
        /// Pattern index.
        pattern: usize,
        /// Offending rectangle.
        rect: Rect,
    },
    /// Patterns `a` and `b` are closer than `min_spacing` (or overlap).
    Spacing {
        /// First pattern index.
        a: usize,
        /// Second pattern index.
        b: usize,
        /// Measured gap in nm.
        gap: f64,
    },
    /// Pattern `pattern` violates the window margin.
    OutOfWindow {
        /// Pattern index.
        pattern: usize,
    },
}

/// Checks `layout` against `rules`, returning every violation found.
///
/// ```
/// use ldmo_geom::Rect;
/// use ldmo_layout::{Layout, drc::{check_drc, DrcRules}};
///
/// let good = Layout::new(
///     Rect::new(0, 0, 448, 448),
///     vec![Rect::square(60, 60, 64), Rect::square(200, 60, 64)],
/// );
/// assert!(check_drc(&good, &DrcRules::default()).is_empty());
/// ```
pub fn check_drc(layout: &Layout, rules: &DrcRules) -> Vec<DrcViolation> {
    let mut violations = Vec::new();
    let inner = Rect::new(
        layout.window().x0 + rules.window_margin,
        layout.window().y0 + rules.window_margin,
        layout.window().x1 - rules.window_margin,
        layout.window().y1 - rules.window_margin,
    );
    for (i, r) in layout.patterns().iter().enumerate() {
        let (w, h) = (r.width(), r.height());
        if w < rules.min_size || h < rules.min_size || w > rules.max_size || h > rules.max_size {
            violations.push(DrcViolation::BadSize {
                pattern: i,
                rect: *r,
            });
        }
        if r.x0 < inner.x0 || r.y0 < inner.y0 || r.x1 > inner.x1 || r.y1 > inner.y1 {
            violations.push(DrcViolation::OutOfWindow { pattern: i });
        }
    }
    let gaps = layout.gap_matrix();
    for (i, row) in gaps.iter().enumerate() {
        for (j, &gap) in row.iter().enumerate().skip(i + 1) {
            if gap < rules.min_spacing {
                violations.push(DrcViolation::Spacing { a: i, b: j, gap });
            }
        }
    }
    violations
}

/// Convenience predicate: whether the layout passes the rules.
pub fn passes_drc(layout: &Layout, rules: &DrcRules) -> bool {
    check_drc(layout, rules).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::new(0, 0, 448, 448)
    }

    #[test]
    fn clean_layout_passes() {
        let l = Layout::new(
            window(),
            vec![Rect::square(60, 60, 64), Rect::square(200, 60, 64)],
        );
        assert!(passes_drc(&l, &DrcRules::default()));
    }

    #[test]
    fn undersized_pattern_flagged() {
        let l = Layout::new(window(), vec![Rect::square(60, 60, 30)]);
        let v = check_drc(&l, &DrcRules::default());
        assert!(matches!(v[0], DrcViolation::BadSize { pattern: 0, .. }));
    }

    #[test]
    fn oversized_pattern_flagged() {
        let l = Layout::new(window(), vec![Rect::square(60, 60, 200)]);
        let v = check_drc(&l, &DrcRules::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, DrcViolation::BadSize { pattern: 0, .. })));
    }

    #[test]
    fn spacing_violation_flagged_with_gap() {
        let l = Layout::new(
            window(),
            vec![Rect::square(60, 60, 64), Rect::square(60 + 64 + 30, 60, 64)],
        );
        let v = check_drc(&l, &DrcRules::default());
        assert_eq!(v.len(), 1);
        match &v[0] {
            DrcViolation::Spacing { a: 0, b: 1, gap } => assert!((gap - 30.0).abs() < 1e-9),
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn sub_nmin_spacing_is_legal() {
        // 60 nm gap: below nmin=80 (needs decomposition) but DRC-clean,
        // because DPL composite rules allow it.
        let l = Layout::new(
            window(),
            vec![Rect::square(60, 60, 64), Rect::square(60 + 64 + 60, 60, 64)],
        );
        assert!(passes_drc(&l, &DrcRules::default()));
    }

    #[test]
    fn window_margin_enforced() {
        let l = Layout::new(window(), vec![Rect::square(10, 60, 64)]);
        let v = check_drc(&l, &DrcRules::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, DrcViolation::OutOfWindow { pattern: 0 })));
    }

    #[test]
    fn empty_layout_passes() {
        let l = Layout::new(window(), vec![]);
        assert!(passes_drc(&l, &DrcRules::default()));
    }
}
