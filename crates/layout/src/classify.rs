//! Pattern classification (paper Eq. 6).
//!
//! Each pattern is classified by the distance `d` to its nearest neighbour:
//!
//! - `d <= nmin`          → **SP** (separated pattern): printing both on one
//!   mask always causes a print violation, so they must be separated;
//! - `nmin < d <= nmax`   → **VP** (violated pattern): prone to printability
//!   decline — decomposition should pay attention to these;
//! - `nmax < d`           → **NP** (normal pattern): negligible interaction.
//!
//! The paper sets `nmin = 80`, `nmax = 98` (nm).

use crate::Layout;

/// Classification thresholds of Eq. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifyConfig {
    /// Below or at this nearest-neighbour distance a pattern is `SP`.
    pub nmin: f64,
    /// Between `nmin` (exclusive) and `nmax` (inclusive) a pattern is `VP`.
    pub nmax: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            nmin: 80.0,
            nmax: 98.0,
        }
    }
}

/// The class of one pattern per Eq. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternClass {
    /// `SP`: nearest neighbour at `d <= nmin`.
    Separated,
    /// `VP`: nearest neighbour at `nmin < d <= nmax`.
    Violated,
    /// `NP`: nearest neighbour at `d > nmax` (or no neighbour at all).
    Normal,
}

/// The three index sets of Algorithm 1's `PatternClassify`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternSets {
    /// Indices of separated patterns.
    pub sp: Vec<usize>,
    /// Indices of violated patterns.
    pub vp: Vec<usize>,
    /// Indices of normal patterns.
    pub np: Vec<usize>,
}

/// Classifies every pattern of `layout` by Eq. 6.
pub fn classify_patterns(layout: &Layout, cfg: &ClassifyConfig) -> Vec<PatternClass> {
    let gaps = layout.gap_matrix();
    (0..layout.len())
        .map(|i| {
            let d = gaps[i].iter().copied().fold(f64::INFINITY, f64::min);
            if d <= cfg.nmin {
                PatternClass::Separated
            } else if d <= cfg.nmax {
                PatternClass::Violated
            } else {
                PatternClass::Normal
            }
        })
        .collect()
}

/// Splits the classification into the `SP`/`VP`/`NP` index sets used by the
/// decomposition generator (Algorithm 1, line 1).
pub fn pattern_sets(layout: &Layout, cfg: &ClassifyConfig) -> PatternSets {
    let mut sets = PatternSets::default();
    for (i, class) in classify_patterns(layout, cfg).into_iter().enumerate() {
        match class {
            PatternClass::Separated => sets.sp.push(i),
            PatternClass::Violated => sets.vp.push(i),
            PatternClass::Normal => sets.np.push(i),
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn layout(gaps: &[(i32, i32)]) -> Layout {
        // builds 64 nm squares at the given lower-left corners
        Layout::new(
            Rect::new(0, 0, 1000, 1000),
            gaps.iter().map(|&(x, y)| Rect::square(x, y, 64)).collect(),
        )
    }

    #[test]
    fn isolated_pattern_is_normal() {
        let l = layout(&[(100, 100)]);
        assert_eq!(
            classify_patterns(&l, &ClassifyConfig::default()),
            vec![PatternClass::Normal]
        );
    }

    #[test]
    fn boundary_values_of_eq6() {
        let cfg = ClassifyConfig::default();
        // pattern at x=0 and second at gap exactly nmin=80 -> both SP
        let l = layout(&[(0, 0), (64 + 80, 0)]);
        assert_eq!(
            classify_patterns(&l, &cfg),
            vec![PatternClass::Separated, PatternClass::Separated]
        );
        // gap 81: VP
        let l = layout(&[(0, 0), (64 + 81, 0)]);
        assert_eq!(classify_patterns(&l, &cfg)[0], PatternClass::Violated);
        // gap exactly nmax=98: still VP
        let l = layout(&[(0, 0), (64 + 98, 0)]);
        assert_eq!(classify_patterns(&l, &cfg)[0], PatternClass::Violated);
        // gap 99: NP
        let l = layout(&[(0, 0), (64 + 99, 0)]);
        assert_eq!(classify_patterns(&l, &cfg)[0], PatternClass::Normal);
    }

    #[test]
    fn class_uses_nearest_neighbour_only() {
        // middle pattern has one close (SP range) and one far neighbour:
        // nearest wins
        let l = layout(&[(0, 0), (64 + 70, 0), (600, 0)]);
        let classes = classify_patterns(&l, &ClassifyConfig::default());
        assert_eq!(classes[1], PatternClass::Separated);
        assert_eq!(classes[2], PatternClass::Normal);
    }

    #[test]
    fn sets_partition_all_indices() {
        let l = layout(&[(0, 0), (64 + 70, 0), (64 + 70, 64 + 90), (700, 700)]);
        let sets = pattern_sets(&l, &ClassifyConfig::default());
        let mut all: Vec<usize> = sets
            .sp
            .iter()
            .chain(&sets.vp)
            .chain(&sets.np)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn diagonal_gap_uses_euclidean_distance() {
        // diagonal offset: dx = 60, dy = 60 -> gap = 84.85 (VP), not 60 (SP)
        let l = layout(&[(0, 0), (64 + 60, 64 + 60)]);
        let classes = classify_patterns(&l, &ClassifyConfig::default());
        assert_eq!(classes[0], PatternClass::Violated);
    }
}
