//! The [`Layout`] type: a window of contact patterns plus rasterization.

use crate::LayoutError;
use ldmo_geom::{Grid, Rect};
use serde::{Deserialize, Serialize};

/// A double-patterning mask assignment: `assignment[i]` is `0` or `1`, the
/// mask index pattern `i` is placed on.
pub type MaskAssignment = Vec<u8>;

/// A contact layout: a rectangular window containing rectangular patterns,
/// all coordinates in nm.
///
/// ```
/// use ldmo_geom::Rect;
/// use ldmo_layout::Layout;
///
/// let l = Layout::new(
///     Rect::new(0, 0, 448, 448),
///     vec![Rect::square(50, 50, 64), Rect::square(250, 250, 64)],
/// );
/// assert_eq!(l.len(), 2);
/// let grid = l.rasterize_target(2.0);
/// assert_eq!(grid.shape(), (224, 224));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    window: Rect,
    patterns: Vec<Rect>,
}

impl Layout {
    /// Creates a layout from a window and its patterns.
    pub fn new(window: Rect, patterns: Vec<Rect>) -> Self {
        Layout { window, patterns }
    }

    /// The layout window.
    pub fn window(&self) -> Rect {
        self.window
    }

    /// The patterns.
    pub fn patterns(&self) -> &[Rect] {
        &self.patterns
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the layout holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Grid dimensions when rasterized at `nm_per_px`.
    pub fn grid_shape(&self, nm_per_px: f64) -> (usize, usize) {
        let w = (f64::from(self.window.width()) / nm_per_px).round() as usize;
        let h = (f64::from(self.window.height()) / nm_per_px).round() as usize;
        (w.max(1), h.max(1))
    }

    /// Converts a pattern rect (nm, window coordinates) to pixel coordinates.
    fn to_px(&self, r: &Rect, nm_per_px: f64) -> Rect {
        let sx = |v: i32| ((f64::from(v - self.window.x0) / nm_per_px).round()) as i32;
        let sy = |v: i32| ((f64::from(v - self.window.y0) / nm_per_px).round()) as i32;
        Rect {
            x0: sx(r.x0),
            y0: sy(r.y0),
            x1: sx(r.x1).max(sx(r.x0) + 1),
            y1: sy(r.y1).max(sy(r.y0) + 1),
        }
    }

    /// Patterns converted to pixel coordinates at `nm_per_px`.
    pub fn patterns_px(&self, nm_per_px: f64) -> Vec<Rect> {
        self.patterns
            .iter()
            .map(|r| self.to_px(r, nm_per_px))
            .collect()
    }

    /// Rasterizes the target image `T'`: 1.0 inside any pattern, 0.0 outside.
    pub fn rasterize_target(&self, nm_per_px: f64) -> Grid {
        let (w, h) = self.grid_shape(nm_per_px);
        let mut g = Grid::zeros(w, h);
        for r in &self.patterns {
            g.fill_rect(&self.to_px(r, nm_per_px), 1.0);
        }
        g
    }

    /// Rasterizes one mask of a decomposition: patterns with
    /// `assignment[i] == mask` are drawn at 1.0.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::AssignmentLength`] if `assignment.len()` does
    /// not match the pattern count.
    pub fn rasterize_mask(
        &self,
        assignment: &[u8],
        mask: u8,
        nm_per_px: f64,
    ) -> Result<Grid, LayoutError> {
        self.check_assignment(assignment)?;
        let (w, h) = self.grid_shape(nm_per_px);
        let mut g = Grid::zeros(w, h);
        for (r, &m) in self.patterns.iter().zip(assignment) {
            if m == mask {
                g.fill_rect(&self.to_px(r, nm_per_px), 1.0);
            }
        }
        Ok(g)
    }

    /// Rasterizes one mask of a decomposition with every pattern expanded by
    /// `expand_nm` on all sides. Used to build the mask-rule-check (MRC)
    /// corridor that bounds how far ILT may grow a mask feature beyond its
    /// drawn shape.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::AssignmentLength`] if `assignment.len()` does
    /// not match the pattern count.
    pub fn rasterize_mask_expanded(
        &self,
        assignment: &[u8],
        mask: u8,
        nm_per_px: f64,
        expand_nm: i32,
    ) -> Result<Grid, LayoutError> {
        self.check_assignment(assignment)?;
        let (w, h) = self.grid_shape(nm_per_px);
        let mut g = Grid::zeros(w, h);
        for (r, &m) in self.patterns.iter().zip(assignment) {
            if m == mask {
                g.fill_rect(&self.to_px(&r.expanded(expand_nm), nm_per_px), 1.0);
            }
        }
        Ok(g)
    }

    /// Rasterizes the paper's grayscale *decomposition image* — the CNN
    /// input: mask-0 patterns at level 1.0, mask-1 patterns at level 0.5
    /// (Section III-A: "a gray-scale image with different grayscale levels
    /// to represent patterns distributed on different masks").
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::AssignmentLength`] if `assignment.len()` does
    /// not match the pattern count.
    pub fn decomposition_image(
        &self,
        assignment: &[u8],
        nm_per_px: f64,
    ) -> Result<Grid, LayoutError> {
        self.check_assignment(assignment)?;
        let (w, h) = self.grid_shape(nm_per_px);
        let mut g = Grid::zeros(w, h);
        for (r, &m) in self.patterns.iter().zip(assignment) {
            let level = if m == 0 { 1.0 } else { 0.5 };
            g.fill_rect(&self.to_px(r, nm_per_px), level);
        }
        Ok(g)
    }

    /// Pairwise edge-to-edge gaps: `gaps[i][j]` in nm (`f64::INFINITY` on
    /// the diagonal so "nearest neighbour" scans need no special casing).
    pub fn gap_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.patterns.len();
        let mut m = vec![vec![f64::INFINITY; n]; n];
        // symmetric fill: both `m[i][j]` and `m[j][i]` are written, so an
        // iterator over rows cannot express this
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let g = self.patterns[i].gap_to(&self.patterns[j]);
                m[i][j] = g;
                m[j][i] = g;
            }
        }
        m
    }

    /// Extracts the sub-layout covered by `window` (nm, chip coordinates),
    /// translated so the returned layout's window starts at the origin.
    ///
    /// Patterns intersecting `window` are kept whole (they may overhang the
    /// window edge); everything else is dropped. The translation matters:
    /// downstream consumers — rasterization via [`Layout::to_px`] is
    /// origin-relative, but EPE measurement samples at absolute pattern
    /// coordinates — agree only when the window origin is `(0, 0)`.
    pub fn extract_window(&self, window: Rect) -> Layout {
        let patterns = self
            .patterns
            .iter()
            .filter(|r| r.intersects(&window))
            .map(|r| r.translated(-window.x0, -window.y0))
            .collect();
        Layout::new(window.translated(-window.x0, -window.y0), patterns)
    }

    fn check_assignment(&self, assignment: &[u8]) -> Result<(), LayoutError> {
        if assignment.len() != self.patterns.len() {
            return Err(LayoutError::AssignmentLength {
                patterns: self.patterns.len(),
                assignment: assignment.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Layout {
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![
                Rect::square(40, 40, 64),
                Rect::square(200, 40, 64),
                Rect::square(40, 300, 64),
            ],
        )
    }

    #[test]
    fn raster_shape_follows_scale() {
        let l = sample();
        assert_eq!(l.grid_shape(2.0), (224, 224));
        assert_eq!(l.grid_shape(1.0), (448, 448));
        assert_eq!(l.grid_shape(4.0), (112, 112));
    }

    #[test]
    fn target_raster_area_matches() {
        let l = sample();
        let g = l.rasterize_target(1.0);
        assert_eq!(g.sum() as i64, 3 * 64 * 64);
        let g2 = l.rasterize_target(2.0);
        assert_eq!(g2.sum() as i64, 3 * 32 * 32);
    }

    #[test]
    fn mask_raster_respects_assignment() {
        let l = sample();
        let m0 = l.rasterize_mask(&[0, 1, 0], 0, 1.0).expect("valid");
        let m1 = l.rasterize_mask(&[0, 1, 0], 1, 1.0).expect("valid");
        assert_eq!(m0.sum() as i64, 2 * 64 * 64);
        assert_eq!(m1.sum() as i64, 64 * 64);
        // masks partition the target
        let target = l.rasterize_target(1.0);
        let both = m0.zip_map(&m1, |a, b| a + b).expect("same shape");
        assert_eq!(both, target);
    }

    #[test]
    fn decomposition_image_levels() {
        let l = sample();
        let img = l.decomposition_image(&[0, 1, 0], 1.0).expect("valid");
        assert_eq!(img.get(50, 50), 1.0); // pattern 0 on mask 0
        assert_eq!(img.get(210, 50), 0.5); // pattern 1 on mask 1
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn wrong_assignment_length_rejected() {
        let l = sample();
        assert!(matches!(
            l.rasterize_mask(&[0, 1], 0, 1.0),
            Err(LayoutError::AssignmentLength { .. })
        ));
        assert!(l.decomposition_image(&[0, 1], 1.0).is_err());
    }

    #[test]
    fn gap_matrix_symmetric_with_inf_diagonal() {
        let l = sample();
        let m = l.gap_matrix();
        assert_eq!(m.len(), 3);
        assert!(m[0][0].is_infinite());
        assert_eq!(m[0][1], m[1][0]);
        // patterns 0 and 1: horizontal gap 200 - (40+64) = 96
        assert!((m[0][1] - 96.0).abs() < 1e-9);
    }

    #[test]
    fn window_offset_respected_in_raster() {
        let l = Layout::new(
            Rect::new(100, 100, 228, 228),
            vec![Rect::square(100, 100, 64)],
        );
        let g = l.rasterize_target(1.0);
        assert_eq!(g.shape(), (128, 128));
        assert_eq!(g.get(0, 0), 1.0); // pattern at window origin
        assert_eq!(g.get(70, 70), 0.0);
    }

    #[test]
    fn extract_window_translates_to_origin() {
        let l = sample();
        let sub = l.extract_window(Rect::new(150, 0, 448, 200));
        // only pattern 1 (at 200,40) intersects; translated by (-150, 0)
        assert_eq!(sub.window(), Rect::new(0, 0, 298, 200));
        assert_eq!(sub.patterns(), &[Rect::square(50, 40, 64)]);
    }

    #[test]
    fn extract_window_keeps_overhanging_patterns_whole() {
        let l = sample();
        // window edge cuts through pattern 1 (x ∈ [200, 264))
        let sub = l.extract_window(Rect::new(0, 0, 230, 448));
        assert_eq!(sub.len(), 3);
        // pattern 1 kept whole, overhanging the window
        assert!(sub.patterns().contains(&Rect::square(200, 40, 64)));
    }

    #[test]
    fn extract_full_window_is_identity_for_origin_layouts() {
        let l = sample();
        let sub = l.extract_window(l.window());
        assert_eq!(sub, l);
    }

    #[test]
    fn tiny_pattern_still_rasterizes_at_least_one_pixel() {
        let l = Layout::new(Rect::new(0, 0, 100, 100), vec![Rect::new(10, 10, 11, 11)]);
        let g = l.rasterize_target(4.0); // 1 nm pattern at 4 nm/px
        assert!(g.sum() >= 1.0);
    }
}
