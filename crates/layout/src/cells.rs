//! Named contact-layout templates resembling NanGate 45 nm standard cells.
//!
//! The paper's Fig. 7 compares flows on `AOI211_X1`, `NAND3_X2` and
//! `BUF_X1`; Table I runs 13 testcases from the same library. These
//! templates are deterministic contact arrangements whose spacing structure
//! (dense SP rows, VP row-to-row coupling, isolated NP contacts) mirrors the
//! contact layer of the corresponding cells.
//!
//! All cells live in the standard 448 × 448 nm window with 64 nm contacts.

use crate::Layout;
use ldmo_geom::Rect;

const WINDOW: Rect = Rect {
    x0: 0,
    y0: 0,
    x1: 448,
    y1: 448,
};
const SIZE: i32 = 64;

fn cell_from(corners: &[(i32, i32)]) -> Layout {
    Layout::new(
        WINDOW,
        corners
            .iter()
            .map(|&(x, y)| Rect::square(x, y, SIZE))
            .collect(),
    )
}

/// Names of all available cell templates.
pub fn names() -> &'static [&'static str] {
    &[
        "INV_X1",
        "BUF_X1",
        "NAND2_X1",
        "NAND3_X2",
        "NOR2_X1",
        "AOI211_X1",
        "OAI21_X1",
        "DFF_X1",
    ]
}

/// Returns the contact layout of the named cell, or `None` for unknown names.
///
/// ```
/// use ldmo_layout::cells;
///
/// let aoi = cells::cell("AOI211_X1").expect("known cell");
/// assert_eq!(aoi.len(), 8);
/// assert!(cells::cell("XOR99_X9").is_none());
/// ```
pub fn cell(name: &str) -> Option<Layout> {
    let corners: &[(i32, i32)] = match name {
        // SP pair (56 nm) plus one VP contact above it (86 nm)
        "INV_X1" => &[(40, 40), (160, 40), (40, 190)],
        // two SP pairs stacked at VP distance (88 nm): two MST components
        "BUF_X1" => &[(40, 40), (160, 40), (40, 192), (160, 192)],
        // dense 3-chain (56 nm SP gaps) plus two VP contacts below
        "NAND2_X1" => &[(40, 40), (160, 40), (280, 40), (100, 186), (250, 186)],
        // 3-chain + SP pair + a VP contact + an NP contact
        "NAND3_X2" => &[
            (40, 40),
            (160, 40),
            (280, 40),
            (70, 186),
            (190, 186),
            (130, 334),
            (344, 334),
        ],
        // 2×2 SP cluster (60 nm, a 4-cycle) with a far NP contact
        "NOR2_X1" => &[(40, 40), (164, 40), (40, 164), (164, 164), (330, 330)],
        // the paper's Fig. 7(a) cell: two SP pairs in opposite corners,
        // four VP contacts coupling them — 8 contacts, rich candidate set
        "AOI211_X1" => &[
            (40, 40),
            (160, 40),
            (40, 344),
            (160, 344),
            (100, 192),
            (314, 40),
            (314, 192),
            (314, 344),
        ],
        // 3-chain plus three VP contacts
        "OAI21_X1" => &[
            (40, 40),
            (160, 40),
            (280, 40),
            (90, 186),
            (250, 186),
            (40, 344),
        ],
        // 3×3 contact grid, 68 nm gaps both ways: the single-candidate
        // stress case (bipartite conflict graph, forced checkerboard)
        "DFF_X1" => &[
            (60, 60),
            (192, 60),
            (324, 60),
            (60, 192),
            (192, 192),
            (324, 192),
            (60, 324),
            (192, 324),
            (324, 324),
        ],
        _ => return None,
    };
    Some(cell_from(corners))
}

/// All templates as `(name, layout)` pairs, in a stable order.
pub fn all_cells() -> Vec<(&'static str, Layout)> {
    names()
        .iter()
        .map(|&n| (n, cell(n).expect("names() entries are valid")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{pattern_sets, ClassifyConfig};
    use crate::drc::{passes_drc, DrcRules};

    #[test]
    fn all_names_resolve() {
        for &n in names() {
            assert!(cell(n).is_some(), "missing template {n}");
        }
        assert!(cell("NOPE").is_none());
    }

    #[test]
    fn all_cells_pass_drc() {
        for (name, layout) in all_cells() {
            assert!(
                passes_drc(&layout, &DrcRules::default()),
                "{name} violates DRC: {:?}",
                crate::drc::check_drc(&layout, &DrcRules::default())
            );
        }
    }

    #[test]
    fn fig7_cells_have_expected_counts() {
        assert_eq!(cell("AOI211_X1").expect("known").len(), 8);
        assert_eq!(cell("NAND3_X2").expect("known").len(), 7);
        assert_eq!(cell("BUF_X1").expect("known").len(), 4);
    }

    #[test]
    fn every_cell_has_sp_patterns() {
        // decomposition is only interesting when SP patterns exist
        for (name, layout) in all_cells() {
            let sets = pattern_sets(&layout, &ClassifyConfig::default());
            assert!(!sets.sp.is_empty(), "{name} has no SP patterns");
        }
    }

    #[test]
    fn cells_fit_cnn_window() {
        for (_, layout) in all_cells() {
            assert_eq!(layout.grid_shape(2.0), (224, 224));
        }
    }
}
