#![warn(missing_docs)]
//! # ldmo-layout — layouts, synthetic generation, DRC, pattern classification
//!
//! The paper evaluates on 8000 manually generated contact layouts
//! "resembling the NanGate 45 nm library", rule-checked with a commercial
//! DRC tool. This crate supplies the equivalents:
//!
//! - [`Layout`] — a window plus a set of rectangular contact patterns, all
//!   in nm, with rasterization to target/decomposition images;
//! - [`generate::LayoutGenerator`] — a seeded synthetic generator producing
//!   cell-like contact arrangements with a controlled spacing distribution;
//! - [`cells`] — fixed contact templates named after the standard cells the
//!   paper shows in Fig. 7 (`AOI211_X1`, `NAND3_X2`, `BUF_X1`, …);
//! - [`drc`] — the design-rule checker standing in for Calibre;
//! - [`classify`] — the paper's Eq. 6 pattern classification into separated
//!   (`SP`), violated (`VP`) and normal (`NP`) patterns with
//!   `nmin = 80 nm`, `nmax = 98 nm`.
//!
//! ```
//! use ldmo_layout::{Layout, classify::{classify_patterns, ClassifyConfig, PatternClass}};
//! use ldmo_geom::Rect;
//!
//! let layout = Layout::new(
//!     Rect::new(0, 0, 448, 448),
//!     vec![
//!         Rect::square(40, 40, 64),
//!         Rect::square(174, 40, 64),  // 70 nm gap to the first: SP
//!         Rect::square(40, 300, 64),  // far from both: NP
//!     ],
//! );
//! let classes = classify_patterns(&layout, &ClassifyConfig::default());
//! assert_eq!(classes[0], PatternClass::Separated);
//! assert_eq!(classes[2], PatternClass::Normal);
//! ```

pub mod cells;
pub mod classify;
pub mod drc;
pub mod generate;
pub mod io;
mod layout;

pub use layout::{Layout, MaskAssignment};

/// Errors produced by layout operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// An assignment vector length did not match the pattern count.
    AssignmentLength {
        /// Number of patterns in the layout.
        patterns: usize,
        /// Length of the offending assignment.
        assignment: usize,
    },
    /// The generator could not place the requested patterns within the
    /// retry budget (window too crowded for the spacing rules).
    PlacementFailed {
        /// Patterns successfully placed before giving up.
        placed: usize,
        /// Patterns requested.
        requested: usize,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::AssignmentLength {
                patterns,
                assignment,
            } => write!(
                f,
                "assignment length {assignment} does not match pattern count {patterns}"
            ),
            LayoutError::PlacementFailed { placed, requested } => write!(
                f,
                "could only place {placed} of {requested} patterns under the spacing rules"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}
