//! Synthetic layout generation — the stand-in for the paper's 8000 manually
//! generated NanGate-like contact layouts.
//!
//! The generator grows a cluster of contacts: each new contact is anchored
//! to an existing one at a gap drawn from a configurable spacing
//! distribution spanning the `SP` (< 80 nm), `VP` (80–98 nm) and `NP`
//! (> 98 nm) ranges, then accepted only if the full layout stays DRC-clean.
//! This mimics real cell contact arrays, where every contact sits near its
//! transistor neighbours, and guarantees layouts exhibit the mixed-class
//! structure the paper's decomposition machinery targets.

use crate::drc::{passes_drc, DrcRules};
use crate::{Layout, LayoutError};
use ldmo_geom::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`LayoutGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Layout window (nm). Default 448 × 448, which rasterizes to the
    /// paper's 224 × 224 CNN input at 2 nm/px.
    pub window: Rect,
    /// Contact side length in nm (NanGate 45 nm contacts are ~65 nm).
    pub contact_size: i32,
    /// Inclusive range of contacts per layout.
    pub min_patterns: usize,
    /// See `min_patterns`.
    pub max_patterns: usize,
    /// Candidate gap values (nm) a new contact may take to its anchor.
    /// Spanning 56–150 nm produces the SP/VP/NP mix the flow exercises.
    pub gap_choices: Vec<f64>,
    /// Design rules every emitted layout satisfies.
    pub rules: DrcRules,
    /// Attempts per contact before the generator gives up on a layout.
    pub retries_per_pattern: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            window: Rect::new(0, 0, 448, 448),
            contact_size: 64,
            min_patterns: 3,
            max_patterns: 8,
            gap_choices: vec![56.0, 64.0, 72.0, 84.0, 92.0, 104.0, 120.0, 144.0],
            rules: DrcRules::default(),
            retries_per_pattern: 256,
        }
    }
}

/// Seeded random generator of DRC-clean contact layouts.
///
/// ```
/// use ldmo_layout::generate::{GeneratorConfig, LayoutGenerator};
///
/// let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 42);
/// let layout = gen.generate()?;
/// assert!(layout.len() >= 3);
/// # Ok::<(), ldmo_layout::LayoutError>(())
/// ```
#[derive(Debug)]
pub struct LayoutGenerator {
    cfg: GeneratorConfig,
    rng: StdRng,
}

impl LayoutGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(cfg: GeneratorConfig, seed: u64) -> Self {
        LayoutGenerator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.cfg
    }

    /// Generates one DRC-clean layout with a random contact count in the
    /// configured range. If the sampled count jams (the window is near its
    /// packing capacity at 8 contacts), the count is lowered until placement
    /// succeeds, so this only fails when even `min_patterns` cannot fit.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::PlacementFailed`] when the window cannot fit
    /// even `min_patterns` contacts under the spacing rules.
    pub fn generate(&mut self) -> Result<Layout, LayoutError> {
        let n = self
            .rng
            .gen_range(self.cfg.min_patterns..=self.cfg.max_patterns);
        let mut last = None;
        for count in (self.cfg.min_patterns..=n).rev() {
            match self.generate_with_count(count) {
                Ok(l) => return Ok(l),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(LayoutError::PlacementFailed {
            placed: 0,
            requested: n,
        }))
    }

    /// Generates one DRC-clean layout with exactly `n` contacts.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::PlacementFailed`] on placement failure.
    pub fn generate_with_count(&mut self, n: usize) -> Result<Layout, LayoutError> {
        let size = self.cfg.contact_size;
        let margin = self.cfg.rules.window_margin;
        let w = self.cfg.window;
        let lo_x = w.x0 + margin;
        let hi_x = w.x1 - margin - size;
        let lo_y = w.y0 + margin;
        let hi_y = w.y1 - margin - size;
        let mut patterns: Vec<Rect> = Vec::with_capacity(n);
        // first contact: uniform in the legal area
        patterns.push(Rect::square(
            self.rng.gen_range(lo_x..=hi_x),
            self.rng.gen_range(lo_y..=hi_y),
            size,
        ));
        while patterns.len() < n {
            let mut placed = false;
            let retries = self.cfg.retries_per_pattern;
            for attempt in 0..retries {
                // mostly anchor to an existing contact (keeps the cluster
                // structure and the intended gap classes); fall back to
                // uniform placement when the cluster has painted itself
                // into a corner
                let cand = if attempt < retries * 3 / 4 {
                    let anchor = patterns[self.rng.gen_range(0..patterns.len())];
                    let gap_idx = self.rng.gen_range(0..self.cfg.gap_choices.len());
                    let gap = self.cfg.gap_choices[gap_idx];
                    // axis-aligned placement in one of four directions keeps
                    // the drawn gap equal to the intended class distance
                    let offset = size + gap.round() as i32;
                    let (dx, dy) = match self.rng.gen_range(0..4u8) {
                        0 => (offset, self.rng.gen_range(-24..=24)),
                        1 => (-offset, self.rng.gen_range(-24..=24)),
                        2 => (self.rng.gen_range(-24..=24), offset),
                        _ => (self.rng.gen_range(-24..=24), -offset),
                    };
                    Rect::square(anchor.x0 + dx, anchor.y0 + dy, size)
                } else {
                    Rect::square(
                        self.rng.gen_range(lo_x..=hi_x),
                        self.rng.gen_range(lo_y..=hi_y),
                        size,
                    )
                };
                if cand.x0 < lo_x || cand.x0 > hi_x || cand.y0 < lo_y || cand.y0 > hi_y {
                    continue;
                }
                let mut trial = patterns.clone();
                trial.push(cand);
                let layout = Layout::new(w, trial);
                if passes_drc(&layout, &self.cfg.rules) {
                    patterns.push(cand);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(LayoutError::PlacementFailed {
                    placed: patterns.len(),
                    requested: n,
                });
            }
        }
        Ok(Layout::new(w, patterns))
    }

    /// Generates a chip-scale layout: a `cols` × `rows` grid of independent
    /// window-sized blocks, each populated by [`LayoutGenerator::generate`]
    /// and translated into place. The chip window spans
    /// `cols × window_width` by `rows × window_height` nm starting at the
    /// origin. Blocks inherit the window margin from the DRC rules, so
    /// block-to-block spacing stays DRC-clean by construction.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::PlacementFailed`] if any block fails to place.
    pub fn generate_chip(&mut self, cols: usize, rows: usize) -> Result<Layout, LayoutError> {
        let w = self.cfg.window;
        let (bw, bh) = (w.width(), w.height());
        let mut patterns = Vec::new();
        for row in 0..rows {
            for col in 0..cols {
                let block = self.generate()?;
                let dx = col as i32 * bw - w.x0;
                let dy = row as i32 * bh - w.y0;
                patterns.extend(block.patterns().iter().map(|r| r.translated(dx, dy)));
            }
        }
        let chip = Rect::new(0, 0, cols as i32 * bw, rows as i32 * bh);
        Ok(Layout::new(chip, patterns))
    }

    /// Generates a dataset of `count` layouts, skipping (rare) placement
    /// failures so the result always has exactly `count` entries.
    pub fn generate_dataset(&mut self, count: usize) -> Vec<Layout> {
        let mut out = Vec::with_capacity(count);
        let mut guard = 0usize;
        while out.len() < count && guard < count * 20 {
            guard += 1;
            if let Ok(l) = self.generate() {
                out.push(l);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_patterns, ClassifyConfig, PatternClass};
    use crate::drc::check_drc;

    #[test]
    fn generated_layouts_are_drc_clean() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 7);
        for _ in 0..20 {
            let l = gen.generate().expect("generation succeeds");
            let v = check_drc(&l, &gen.config().rules.clone());
            assert!(v.is_empty(), "violations: {v:?}");
        }
    }

    #[test]
    fn pattern_count_within_bounds() {
        let cfg = GeneratorConfig::default();
        let (lo, hi) = (cfg.min_patterns, cfg.max_patterns);
        let mut gen = LayoutGenerator::new(cfg, 11);
        for _ in 0..20 {
            let l = gen.generate().expect("generation succeeds");
            assert!(l.len() >= lo && l.len() <= hi);
        }
    }

    #[test]
    fn exact_count_honoured() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 3);
        let l = gen.generate_with_count(6).expect("fits");
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn same_seed_same_layouts() {
        let a = LayoutGenerator::new(GeneratorConfig::default(), 99).generate_dataset(5);
        let b = LayoutGenerator::new(GeneratorConfig::default(), 99).generate_dataset(5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = LayoutGenerator::new(GeneratorConfig::default(), 1).generate_dataset(3);
        let b = LayoutGenerator::new(GeneratorConfig::default(), 2).generate_dataset(3);
        assert_ne!(a, b);
    }

    #[test]
    fn dataset_exhibits_all_three_classes() {
        // across a batch, the SP/VP/NP mix must all be present — the whole
        // decomposition problem depends on it
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 123);
        let mut seen_sp = false;
        let mut seen_vp = false;
        let mut seen_np = false;
        for l in gen.generate_dataset(30) {
            for c in classify_patterns(&l, &ClassifyConfig::default()) {
                match c {
                    PatternClass::Separated => seen_sp = true,
                    PatternClass::Violated => seen_vp = true,
                    PatternClass::Normal => seen_np = true,
                }
            }
        }
        assert!(
            seen_sp && seen_vp && seen_np,
            "sp={seen_sp} vp={seen_vp} np={seen_np}"
        );
    }

    #[test]
    fn chip_layout_spans_grid_of_blocks() {
        let mut gen = LayoutGenerator::new(GeneratorConfig::default(), 21);
        let chip = gen.generate_chip(3, 2).expect("chip generates");
        assert_eq!(chip.window(), Rect::new(0, 0, 3 * 448, 2 * 448));
        // at least min_patterns per block
        assert!(chip.len() >= 6 * gen.config().min_patterns);
        // every block contributes: each 448-wide column stripe holds patterns
        for col in 0..3 {
            let stripe = Rect::new(col * 448, 0, (col + 1) * 448, 2 * 448);
            assert!(
                chip.patterns().iter().any(|r| stripe.intersects(r)),
                "column {col} empty"
            );
        }
        // all patterns inside the chip window
        assert!(chip.patterns().iter().all(|r| {
            r.x0 >= 0 && r.y0 >= 0 && r.x1 <= chip.window().x1 && r.y1 <= chip.window().y1
        }));
    }

    #[test]
    fn chip_generation_is_seed_deterministic() {
        let a = LayoutGenerator::new(GeneratorConfig::default(), 77)
            .generate_chip(2, 2)
            .expect("chip");
        let b = LayoutGenerator::new(GeneratorConfig::default(), 77)
            .generate_chip(2, 2)
            .expect("chip");
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_request_fails_cleanly() {
        let cfg = GeneratorConfig {
            window: Rect::new(0, 0, 200, 200),
            ..GeneratorConfig::default()
        };
        let mut gen = LayoutGenerator::new(cfg, 5);
        // a 200 nm window (120 nm usable) cannot hold 8 contacts of 64 nm
        let err = gen.generate_with_count(8).expect_err("must fail");
        assert!(matches!(err, LayoutError::PlacementFailed { .. }));
    }
}
