//! Plain-text layout files.
//!
//! A minimal, diff-friendly interchange format so layouts can be saved,
//! versioned and fed to the CLI without a GDSII tool-chain:
//!
//! ```text
//! ldmo-layout v1
//! window 0 0 448 448
//! pattern 40 40 104 104
//! pattern 160 40 224 104
//! ```
//!
//! Coordinates are `x0 y0 x1 y1` in nm. Blank lines and `#` comments are
//! ignored.

use crate::Layout;
use ldmo_geom::Rect;
use std::io::Write;
use std::path::Path;

/// Errors from layout file parsing.
#[derive(Debug)]
pub enum ParseLayoutError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem, with the 1-based line number.
    Malformed {
        /// Line where parsing failed (0 = whole file, e.g. missing header).
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseLayoutError::Io(e) => write!(f, "layout file I/O failed: {e}"),
            ParseLayoutError::Malformed { line, reason } => {
                write!(f, "malformed layout file (line {line}): {reason}")
            }
        }
    }
}

impl std::error::Error for ParseLayoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseLayoutError::Io(e) => Some(e),
            ParseLayoutError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseLayoutError {
    fn from(e: std::io::Error) -> Self {
        ParseLayoutError::Io(e)
    }
}

// Bridge into the workspace-wide taxonomy (here rather than in ldmo-guard
// because of the orphan rule): missing files are I/O (exit 5), structural
// problems are parse errors (exit 3).
impl From<ParseLayoutError> for ldmo_guard::LdmoError {
    fn from(e: ParseLayoutError) -> Self {
        match e {
            ParseLayoutError::Io(source) => ldmo_guard::LdmoError::Io {
                context: "layout file".to_owned(),
                source,
            },
            malformed => ldmo_guard::LdmoError::Parse {
                context: "layout file".to_owned(),
                detail: malformed.to_string(),
            },
        }
    }
}

/// Serializes a layout into the text format.
pub fn to_string(layout: &Layout) -> String {
    let w = layout.window();
    let mut s = format!(
        "ldmo-layout v1\nwindow {} {} {} {}\n",
        w.x0, w.y0, w.x1, w.y1
    );
    for r in layout.patterns() {
        s.push_str(&format!("pattern {} {} {} {}\n", r.x0, r.y0, r.x1, r.y1));
    }
    s
}

/// Parses a layout from the text format.
///
/// # Errors
///
/// Returns [`ParseLayoutError::Malformed`] on any structural problem.
pub fn from_str(text: &str) -> Result<Layout, ParseLayoutError> {
    let mut window: Option<Rect> = None;
    let mut patterns = Vec::new();
    let mut header_seen = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header_seen {
            if line != "ldmo-layout v1" {
                return Err(ParseLayoutError::Malformed {
                    line: line_no,
                    reason: format!("expected header 'ldmo-layout v1', got '{line}'"),
                });
            }
            header_seen = true;
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        let rect = parse_rect(&mut parts, line_no)?;
        if parts.next().is_some() {
            return Err(ParseLayoutError::Malformed {
                line: line_no,
                reason: "trailing tokens after coordinates".to_owned(),
            });
        }
        match keyword {
            "window" => {
                if window.replace(rect).is_some() {
                    return Err(ParseLayoutError::Malformed {
                        line: line_no,
                        reason: "duplicate window line".to_owned(),
                    });
                }
            }
            "pattern" => patterns.push(rect),
            other => {
                return Err(ParseLayoutError::Malformed {
                    line: line_no,
                    reason: format!("unknown keyword '{other}'"),
                })
            }
        }
    }
    let window = window.ok_or(ParseLayoutError::Malformed {
        line: 0,
        reason: "missing window line".to_owned(),
    })?;
    Ok(Layout::new(window, patterns))
}

fn parse_rect<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<Rect, ParseLayoutError> {
    let mut coords = [0i32; 4];
    for c in &mut coords {
        let token = parts.next().ok_or(ParseLayoutError::Malformed {
            line,
            reason: "expected four coordinates".to_owned(),
        })?;
        *c = token.parse().map_err(|_| ParseLayoutError::Malformed {
            line,
            reason: format!("'{token}' is not an integer"),
        })?;
    }
    Rect::try_new(coords[0], coords[1], coords[2], coords[3]).map_err(|_| {
        ParseLayoutError::Malformed {
            line,
            reason: "rectangle has non-positive extent".to_owned(),
        }
    })
}

/// Writes a layout to a file.
///
/// # Errors
///
/// Returns [`ParseLayoutError::Io`] on I/O failure.
pub fn save(layout: &Layout, path: impl AsRef<Path>) -> Result<(), ParseLayoutError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_string(layout).as_bytes())?;
    Ok(())
}

/// Reads a layout from a file.
///
/// # Errors
///
/// Returns [`ParseLayoutError`] on I/O failure or malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<Layout, ParseLayoutError> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Layout {
        Layout::new(
            Rect::new(0, 0, 448, 448),
            vec![Rect::square(40, 40, 64), Rect::square(160, 40, 64)],
        )
    }

    #[test]
    fn roundtrip() {
        let l = sample();
        let text = to_string(&l);
        let back = from_str(&text).expect("roundtrip");
        assert_eq!(back, l);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a layout\nldmo-layout v1\n\nwindow 0 0 100 100\n# pattern below\npattern 10 10 20 20\n";
        let l = from_str(text).expect("parses");
        assert_eq!(l.len(), 1);
        assert_eq!(l.window(), Rect::new(0, 0, 100, 100));
    }

    #[test]
    fn missing_header_rejected() {
        let err = from_str("window 0 0 10 10\n").expect_err("no header");
        assert!(matches!(err, ParseLayoutError::Malformed { line: 1, .. }));
    }

    #[test]
    fn missing_window_rejected() {
        let err = from_str("ldmo-layout v1\npattern 0 0 5 5\n").expect_err("no window");
        assert!(matches!(err, ParseLayoutError::Malformed { line: 0, .. }));
    }

    #[test]
    fn bad_numbers_rejected_with_line() {
        let err = from_str("ldmo-layout v1\nwindow 0 0 10 ten\n").expect_err("bad int");
        match err {
            ParseLayoutError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inverted_rect_rejected() {
        let err = from_str("ldmo-layout v1\nwindow 0 0 10 10\npattern 5 5 2 8\n")
            .expect_err("inverted rect");
        assert!(matches!(err, ParseLayoutError::Malformed { line: 3, .. }));
    }

    #[test]
    fn duplicate_window_rejected() {
        let err = from_str("ldmo-layout v1\nwindow 0 0 10 10\nwindow 0 0 20 20\n")
            .expect_err("duplicate");
        assert!(matches!(err, ParseLayoutError::Malformed { line: 3, .. }));
    }

    #[test]
    fn truncated_file_rejected_with_context() {
        // a file cut off mid-line must fail cleanly, not panic
        let text = to_string(&sample());
        let truncated = &text[..text.len() - 7];
        let err = from_str(truncated).expect_err("truncated");
        let bridged: ldmo_guard::LdmoError = err.into();
        assert_eq!(bridged.exit_code(), 3);
        assert!(bridged.to_string().contains("layout file"), "{bridged}");
    }

    #[test]
    fn errors_bridge_into_the_workspace_taxonomy() {
        let malformed: ldmo_guard::LdmoError =
            from_str("not a layout\n").expect_err("bad magic").into();
        assert_eq!(malformed.exit_code(), 3);
        let io: ldmo_guard::LdmoError = load("/nonexistent/ldmo-layout-test.lay")
            .expect_err("missing file")
            .into();
        assert_eq!(io.exit_code(), 5);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ldmo_layout_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sample.lay");
        save(&sample(), &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, sample());
        let _ = std::fs::remove_file(&path);
    }
}
