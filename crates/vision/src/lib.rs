#![warn(missing_docs)]
//! # ldmo-vision — SIFT-lite features, layout similarity, k-medoids
//!
//! Section IV-A of the paper samples representative layouts for CNN
//! training by (1) extracting SIFT features from each layout image,
//! (2) computing a pairwise layout similarity from matched feature
//! distances (Algorithm 2, Eq. 7), and (3) clustering with k-medoids
//! (Eq. 8) and drawing a few layouts per cluster.
//!
//! This crate implements the whole pipeline from scratch:
//!
//! - [`sift`] — a compact SIFT: Gaussian scale space, difference of
//!   Gaussians, 3-D local extrema, orientation assignment, and the classic
//!   4×4×8 = 128-dimensional gradient-histogram descriptor with
//!   normalize–clip–renormalize post-processing;
//! - [`similarity`] — Eq. 7's thresholded feature distance
//!   (`Dth = 0.7`) and Algorithm 2's greedy matching + top-`c` sum;
//! - [`kmedoids`] — PAM-style k-medoids over a precomputed distance
//!   matrix, with the paper's sum-of-layout-distances (SLD) objective.
//!
//! ```
//! use ldmo_geom::{Grid, Rect};
//! use ldmo_vision::sift::{extract_features, SiftConfig};
//!
//! let mut img = Grid::zeros(64, 64);
//! img.fill_rect(&Rect::new(16, 16, 48, 48), 1.0);
//! let feats = extract_features(&img, &SiftConfig::default());
//! // a square produces corner-like keypoints
//! assert!(!feats.is_empty());
//! ```

pub mod kmedoids;
pub mod pyramid;
pub mod sift;
pub mod similarity;
