//! SIFT-lite: keypoint detection and 128-dimensional descriptors.
//!
//! A compact re-implementation of Lowe's pipeline sufficient for layout
//! similarity: DoG extrema (no sub-pixel refinement — layouts live on an
//! integer grid), dominant-orientation assignment from a 36-bin gradient
//! histogram, and the standard 4×4 spatial × 8 orientation descriptor with
//! normalize → clip(0.2) → renormalize post-processing, making descriptors
//! robust to the layout translations and rotations the paper cares about
//! (Fig. 6).

use crate::pyramid::{build_pyramid, Pyramid};
use ldmo_geom::{Grid, Vec2};

/// SIFT extraction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SiftConfig {
    /// Number of pyramid octaves.
    pub octaves: usize,
    /// Scales per octave.
    pub scales: usize,
    /// Base blur sigma.
    pub sigma0: f64,
    /// Minimum |DoG| for a keypoint (contrast threshold).
    pub contrast_threshold: f32,
    /// Border margin (pixels at the octave scale) excluded from detection.
    pub border: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            octaves: 3,
            scales: 2,
            sigma0: 1.6,
            contrast_threshold: 0.02,
            border: 5,
        }
    }
}

/// A detected keypoint with its descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Position in input-image pixels.
    pub pos: Vec2,
    /// Scale (sigma, in input-image pixels).
    pub scale: f64,
    /// Dominant orientation, radians.
    pub orientation: f64,
    /// 128-dimensional descriptor, L2-normalized.
    pub descriptor: [f32; 128],
}

impl Feature {
    /// Euclidean distance between two descriptors (in `[0, √2]` for
    /// normalized descriptors).
    pub fn descriptor_dist(&self, other: &Feature) -> f64 {
        self.descriptor
            .iter()
            .zip(&other.descriptor)
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Extracts SIFT features from a grayscale image.
pub fn extract_features(img: &Grid, cfg: &SiftConfig) -> Vec<Feature> {
    // limit octaves so every octave keeps at least 8×8 pixels
    let max_octaves = {
        let mut o = 0usize;
        let mut s = img.width().min(img.height());
        while s >= 8 && o < cfg.octaves {
            o += 1;
            s /= 2;
        }
        o.max(1)
    };
    let pyramid = build_pyramid(img, max_octaves, cfg.scales, cfg.sigma0);
    let mut features = Vec::new();
    detect_and_describe(&pyramid, cfg, &mut features);
    features
}

fn detect_and_describe(pyramid: &Pyramid, cfg: &SiftConfig, out: &mut Vec<Feature>) {
    let k = 2f64.powf(1.0 / cfg.scales as f64);
    for octave in &pyramid.octaves {
        let (w, h) = octave.dogs[0].shape();
        if w <= 2 * cfg.border || h <= 2 * cfg.border {
            continue;
        }
        for level in 1..octave.dogs.len() - 1 {
            let below = &octave.dogs[level - 1];
            let here = &octave.dogs[level];
            let above = &octave.dogs[level + 1];
            for y in cfg.border..h - cfg.border {
                for x in cfg.border..w - cfg.border {
                    let v = here.get(x, y);
                    if v.abs() < cfg.contrast_threshold {
                        continue;
                    }
                    if !is_extremum(below, here, above, x, y, v) {
                        continue;
                    }
                    // orientation + descriptor from the matching gaussian
                    let gauss = &octave.gaussians[level];
                    let sigma_local = cfg.sigma0 * k.powi(level as i32);
                    if let Some(orientation) = dominant_orientation(gauss, x, y, sigma_local) {
                        let descriptor = describe(gauss, x, y, sigma_local, orientation);
                        out.push(Feature {
                            pos: Vec2::new(
                                (x * octave.downsample) as f64,
                                (y * octave.downsample) as f64,
                            ),
                            scale: sigma_local * octave.downsample as f64,
                            orientation,
                            descriptor,
                        });
                    }
                }
            }
        }
    }
}

fn is_extremum(below: &Grid, here: &Grid, above: &Grid, x: usize, y: usize, v: f32) -> bool {
    let mut is_max = true;
    let mut is_min = true;
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            let (nx, ny) = ((x as i64 + dx) as usize, (y as i64 + dy) as usize);
            for (grid, skip_center) in [(below, false), (here, true), (above, false)] {
                if skip_center && dx == 0 && dy == 0 {
                    continue;
                }
                let n = grid.get(nx, ny);
                if n >= v {
                    is_max = false;
                }
                if n <= v {
                    is_min = false;
                }
                if !is_max && !is_min {
                    return false;
                }
            }
        }
    }
    is_max || is_min
}

fn gradient(img: &Grid, x: usize, y: usize) -> (f64, f64) {
    let (w, h) = img.shape();
    let xm = img.get(x.saturating_sub(1), y);
    let xp = img.get((x + 1).min(w - 1), y);
    let ym = img.get(x, y.saturating_sub(1));
    let yp = img.get(x, (y + 1).min(h - 1));
    (f64::from(xp - xm) * 0.5, f64::from(yp - ym) * 0.5)
}

fn dominant_orientation(img: &Grid, x: usize, y: usize, sigma: f64) -> Option<f64> {
    let radius = (4.5 * sigma).ceil() as i64;
    let (w, h) = img.shape();
    let mut hist = [0.0f64; 36];
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let (nx, ny) = (x as i64 + dx, y as i64 + dy);
            if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
                continue;
            }
            let (gx, gy) = gradient(img, nx as usize, ny as usize);
            let mag = gx.hypot(gy);
            if mag < 1e-9 {
                continue;
            }
            let weight = (-((dx * dx + dy * dy) as f64) / (2.0 * (1.5 * sigma).powi(2))).exp();
            let angle = gy.atan2(gx).rem_euclid(2.0 * std::f64::consts::PI);
            let bin = ((angle / (2.0 * std::f64::consts::PI) * 36.0) as usize).min(35);
            hist[bin] += mag * weight;
        }
    }
    let (best_bin, &best) = hist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("36 bins");
    if best <= 0.0 {
        return None;
    }
    Some((best_bin as f64 + 0.5) / 36.0 * 2.0 * std::f64::consts::PI)
}

fn describe(img: &Grid, x: usize, y: usize, sigma: f64, orientation: f64) -> [f32; 128] {
    let (w, h) = img.shape();
    let mut desc = [0.0f32; 128];
    // 4×4 grid of 8-bin histograms over a rotated window
    let cell = 3.0 * sigma; // cell size in pixels
    let half = 2.0 * cell;
    let (sin_o, cos_o) = orientation.sin_cos();
    let radius = (half * std::f64::consts::SQRT_2).ceil() as i64;
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let (nx, ny) = (x as i64 + dx, y as i64 + dy);
            if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
                continue;
            }
            // rotate the offset into the keypoint frame
            let rx = cos_o * dx as f64 + sin_o * dy as f64;
            let ry = -sin_o * dx as f64 + cos_o * dy as f64;
            // which of the 4×4 cells does it land in?
            let cx = (rx + half) / cell;
            let cy = (ry + half) / cell;
            if cx < 0.0 || cy < 0.0 || cx >= 4.0 || cy >= 4.0 {
                continue;
            }
            let (gx, gy) = gradient(img, nx as usize, ny as usize);
            let mag = gx.hypot(gy);
            if mag < 1e-12 {
                continue;
            }
            let angle = (gy.atan2(gx) - orientation).rem_euclid(2.0 * std::f64::consts::PI);
            let obin = ((angle / (2.0 * std::f64::consts::PI) * 8.0) as usize).min(7);
            let weight = (-(rx * rx + ry * ry) / (2.0 * half * half)).exp();
            let idx = ((cy as usize) * 4 + cx as usize) * 8 + obin;
            desc[idx] += (mag * weight) as f32;
        }
    }
    normalize_descriptor(&mut desc);
    desc
}

fn normalize_descriptor(desc: &mut [f32; 128]) {
    let norm = |d: &[f32; 128]| {
        d.iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt()
    };
    let n = norm(desc);
    if n > 1e-12 {
        for v in desc.iter_mut() {
            *v = (f64::from(*v) / n) as f32;
        }
    }
    // clip at 0.2 (robustness to illumination-like effects) and renormalize
    for v in desc.iter_mut() {
        *v = v.min(0.2);
    }
    let n = norm(desc);
    if n > 1e-12 {
        for v in desc.iter_mut() {
            *v = (f64::from(*v) / n) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    fn square_img(x0: i32, y0: i32, size: i32) -> Grid {
        let mut img = Grid::zeros(96, 96);
        img.fill_rect(&Rect::new(x0, y0, x0 + size, y0 + size), 1.0);
        img
    }

    #[test]
    fn flat_image_has_no_features() {
        let img = Grid::filled(64, 64, 0.5);
        assert!(extract_features(&img, &SiftConfig::default()).is_empty());
    }

    #[test]
    fn square_produces_features() {
        let img = square_img(30, 30, 32);
        let feats = extract_features(&img, &SiftConfig::default());
        assert!(!feats.is_empty());
        // descriptors are normalized
        for f in &feats {
            let n: f32 = f.descriptor.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-3, "norm {n}");
        }
    }

    #[test]
    fn translation_preserves_descriptors() {
        // the same square translated: descriptors should match closely
        let a = extract_features(&square_img(20, 20, 32), &SiftConfig::default());
        let b = extract_features(&square_img(36, 28, 32), &SiftConfig::default());
        assert!(!a.is_empty() && !b.is_empty());
        // for each feature in a, its best match in b is close
        let mut matched = 0;
        for fa in &a {
            let best = b
                .iter()
                .map(|fb| fa.descriptor_dist(fb))
                .fold(f64::INFINITY, f64::min);
            if best < 0.4 {
                matched += 1;
            }
        }
        assert!(
            matched * 2 >= a.len(),
            "only {matched}/{} features matched after translation",
            a.len()
        );
    }

    #[test]
    fn different_structures_have_distant_descriptors() {
        // a square vs a thin horizontal bar: best-match distances should be
        // larger on average than the translated-square case
        let a = extract_features(&square_img(30, 30, 32), &SiftConfig::default());
        let mut bar = Grid::zeros(96, 96);
        bar.fill_rect(&Rect::new(10, 44, 86, 52), 1.0);
        let b = extract_features(&bar, &SiftConfig::default());
        assert!(!a.is_empty() && !b.is_empty());
        let mean_best: f64 = a
            .iter()
            .map(|fa| {
                b.iter()
                    .map(|fb| fa.descriptor_dist(fb))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / a.len() as f64;
        assert!(mean_best > 0.25, "mean best distance {mean_best}");
    }

    #[test]
    fn keypoints_inside_image() {
        let img = square_img(10, 50, 30);
        for f in extract_features(&img, &SiftConfig::default()) {
            assert!(f.pos.x >= 0.0 && f.pos.x < 96.0);
            assert!(f.pos.y >= 0.0 && f.pos.y < 96.0);
            assert!(f.scale > 0.0);
        }
    }
}
