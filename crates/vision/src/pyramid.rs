//! Gaussian scale space and difference-of-Gaussians pyramid.

use ldmo_geom::Grid;

/// Separable Gaussian blur with standard deviation `sigma` (pixels),
/// truncated at `3σ`, edge-clamped (replicate padding), so flat regions
/// stay flat right up to the border.
///
/// # Panics
///
/// Panics if `sigma <= 0`.
pub fn gaussian_blur(img: &Grid, sigma: f64) -> Grid {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i64;
    let mut profile: Vec<f32> = (-radius..=radius)
        .map(|i| (-((i * i) as f64) / (2.0 * sigma * sigma)).exp() as f32)
        .collect();
    let sum: f32 = profile.iter().sum();
    for p in &mut profile {
        *p /= sum;
    }
    let tmp = blur_axis(img, &profile, true);
    blur_axis(&tmp, &profile, false)
}

fn blur_axis(img: &Grid, profile: &[f32], horizontal: bool) -> Grid {
    let (w, h) = img.shape();
    let c = (profile.len() / 2) as i64;
    let mut out = Grid::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for (k, &p) in profile.iter().enumerate() {
                let off = k as i64 - c;
                let (sx, sy) = if horizontal {
                    ((x as i64 + off).clamp(0, w as i64 - 1), y as i64)
                } else {
                    (x as i64, (y as i64 + off).clamp(0, h as i64 - 1))
                };
                acc += img.get(sx as usize, sy as usize) * p;
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// One octave of the scale space: progressively blurred images plus their
/// pairwise differences (DoG levels).
#[derive(Debug, Clone)]
pub struct Octave {
    /// Blurred images, `scales + 3` of them.
    pub gaussians: Vec<Grid>,
    /// Difference-of-Gaussian levels, `gaussians.len() - 1` of them.
    pub dogs: Vec<Grid>,
    /// Downsampling factor of this octave relative to the input.
    pub downsample: usize,
}

/// The full multi-octave DoG pyramid.
#[derive(Debug, Clone)]
pub struct Pyramid {
    /// Octaves, finest first.
    pub octaves: Vec<Octave>,
}

/// Builds a DoG pyramid with `octaves` octaves and `scales` sampled scales
/// per octave (each octave holds `scales + 2` DoG levels so that extrema
/// can be compared across scale), starting at `sigma0`.
///
/// # Panics
///
/// Panics if `octaves == 0` or `scales == 0`, or when the image is too
/// small for the requested octave count.
pub fn build_pyramid(img: &Grid, octaves: usize, scales: usize, sigma0: f64) -> Pyramid {
    assert!(octaves > 0 && scales > 0, "need at least one octave/scale");
    let k = 2f64.powf(1.0 / scales as f64);
    let mut current = img.clone();
    let mut downsample = 1usize;
    let mut out = Vec::with_capacity(octaves);
    for _ in 0..octaves {
        assert!(
            current.width() >= 8 && current.height() >= 8,
            "image too small for the requested octave count"
        );
        let mut gaussians = Vec::with_capacity(scales + 3);
        for s in 0..scales + 3 {
            let sigma = sigma0 * k.powi(s as i32);
            gaussians.push(gaussian_blur(&current, sigma));
        }
        let dogs = gaussians
            .windows(2)
            .map(|pair| {
                pair[1]
                    .zip_map(&pair[0], |a, b| a - b)
                    .expect("same shape within an octave")
            })
            .collect();
        out.push(Octave {
            gaussians,
            dogs,
            downsample,
        });
        current = current.downsample_avg(2);
        downsample *= 2;
    }
    Pyramid { octaves: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldmo_geom::Rect;

    #[test]
    fn blur_preserves_flat_images() {
        let img = Grid::filled(16, 16, 0.7);
        let b = gaussian_blur(&img, 2.0);
        for v in b.as_slice() {
            assert!((v - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_preserves_mass_in_interior() {
        // replicate padding keeps the DC gain at exactly 1
        let mut img = Grid::zeros(32, 32);
        img.set(16, 16, 1.0);
        let b = gaussian_blur(&img, 1.5);
        assert!((b.sum() - 1.0).abs() < 1e-4);
        // peak stays at the impulse
        assert!(b.get(16, 16) >= b.max() - 1e-6);
    }

    #[test]
    fn blur_smooths_edges() {
        let mut img = Grid::zeros(32, 32);
        img.fill_rect(&Rect::new(0, 0, 16, 32), 1.0);
        let b = gaussian_blur(&img, 2.0);
        // the edge transition spreads: midpoint near 0.5
        assert!((b.get(16, 16) - 0.5).abs() < 0.15);
        assert!(b.get(2, 16) > 0.95);
        assert!(b.get(30, 16) < 0.05);
    }

    #[test]
    fn pyramid_structure() {
        let img = Grid::filled(64, 64, 0.0);
        let p = build_pyramid(&img, 3, 2, 1.6);
        assert_eq!(p.octaves.len(), 3);
        for (i, oct) in p.octaves.iter().enumerate() {
            assert_eq!(oct.gaussians.len(), 5); // scales + 3
            assert_eq!(oct.dogs.len(), 4);
            assert_eq!(oct.downsample, 1 << i);
            assert_eq!(oct.gaussians[0].width(), 64 >> i);
        }
    }

    #[test]
    fn dog_of_flat_image_is_zero() {
        let img = Grid::filled(32, 32, 0.4);
        let p = build_pyramid(&img, 2, 2, 1.6);
        for oct in &p.octaves {
            for dog in &oct.dogs {
                assert!(dog.max().abs() < 1e-5 && dog.min().abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_image_rejected_for_deep_pyramid() {
        let img = Grid::filled(16, 16, 0.0);
        let _ = build_pyramid(&img, 4, 2, 1.6);
    }
}
