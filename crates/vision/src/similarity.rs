//! Layout similarity from matched SIFT features (paper Eq. 7 +
//! Algorithm 2).
//!
//! Two feature points match when their descriptor distance is below
//! `Dth = 0.7`; unmatched points contribute the constant distance 1
//! ("their L2-Norm which is 1" for normalized descriptors). The layout
//! distance is the sum of the `c` smallest per-feature distances, which
//! makes layouts with different feature counts comparable.

use crate::sift::Feature;

/// Similarity parameters (paper values: `Dth = 0.7`, `c = 60`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityConfig {
    /// Matching threshold on descriptor distance.
    pub d_th: f64,
    /// Number of smallest distances summed into the layout distance.
    pub c: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig { d_th: 0.7, c: 60 }
    }
}

/// Eq. 7: thresholded feature distance.
pub fn feature_distance(p: &Feature, q: &Feature, cfg: &SimilarityConfig) -> f64 {
    let d = p.descriptor_dist(q);
    if d <= cfg.d_th {
        d
    } else {
        1.0
    }
}

/// Algorithm 2: greedy matching of `a`'s features against `b`'s, then the
/// sum of the `c` smallest distances. Lower = more similar; identical
/// layouts score 0 (when they have features at all).
pub fn layout_distance(a: &[Feature], b: &[Feature], cfg: &SimilarityConfig) -> f64 {
    let mut used = vec![false; b.len()];
    let mut dists: Vec<f64> = Vec::with_capacity(a.len());
    for fa in a {
        // find the minimum-distance unmatched feature in b
        let mut best: Option<(usize, f64)> = None;
        for (j, fb) in b.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d = fa.descriptor_dist(fb);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        match best {
            Some((j, d)) if d <= cfg.d_th => {
                used[j] = true;
                dists.push(d);
            }
            _ => dists.push(1.0),
        }
    }
    dists.sort_by(f64::total_cmp);
    dists.iter().take(cfg.c).sum()
}

/// Pairwise distance matrix over per-layout feature sets (symmetrized,
/// since Algorithm 2's greedy matching is not exactly symmetric). Rows of
/// the upper triangle are computed on the global [`ldmo_par`] pool; each
/// entry depends only on its own feature pair, so the matrix is identical
/// for any thread count.
pub fn distance_matrix(features: &[Vec<Feature>], cfg: &SimilarityConfig) -> Vec<Vec<f64>> {
    let n = features.len();
    let rows: Vec<usize> = (0..n).collect();
    let upper = ldmo_par::global().par_map(&rows, |&i| {
        ((i + 1)..n)
            .map(|j| {
                0.5 * (layout_distance(&features[i], &features[j], cfg)
                    + layout_distance(&features[j], &features[i], cfg))
            })
            .collect::<Vec<f64>>()
    });
    let mut m = vec![vec![0.0; n]; n];
    for (i, row) in upper.into_iter().enumerate() {
        for (off, d) in row.into_iter().enumerate() {
            let j = i + 1 + off;
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sift::{extract_features, SiftConfig};
    use ldmo_geom::{Grid, Rect};

    fn feats(corners: &[(i32, i32)]) -> Vec<Feature> {
        let mut img = Grid::zeros(96, 96);
        for &(x, y) in corners {
            img.fill_rect(&Rect::new(x, y, x + 24, y + 24), 1.0);
        }
        extract_features(&img, &SiftConfig::default())
    }

    #[test]
    fn self_distance_is_zero() {
        let f = feats(&[(20, 20), (50, 50)]);
        assert!(!f.is_empty());
        assert_eq!(layout_distance(&f, &f, &SimilarityConfig::default()), 0.0);
    }

    #[test]
    fn translated_layout_is_close_different_layout_is_far() {
        let cfg = SimilarityConfig::default();
        let a = feats(&[(20, 20), (52, 20)]);
        let translated = feats(&[(28, 30), (60, 30)]);
        let different = feats(&[(20, 20), (20, 52), (52, 20), (52, 52)]);
        let d_near = layout_distance(&a, &translated, &cfg);
        let d_far = layout_distance(&a, &different, &cfg);
        assert!(
            d_near < d_far,
            "translated {d_near} should be closer than different {d_far}"
        );
    }

    #[test]
    fn unmatched_features_contribute_one() {
        let cfg = SimilarityConfig::default();
        let a = feats(&[(20, 20)]);
        let empty: Vec<Feature> = Vec::new();
        let d = layout_distance(&a, &empty, &cfg);
        assert_eq!(d, a.len().min(cfg.c) as f64);
    }

    #[test]
    fn c_caps_the_sum() {
        let cfg = SimilarityConfig { d_th: 0.7, c: 2 };
        let a = feats(&[(10, 10), (40, 10), (10, 40), (40, 40)]);
        let empty: Vec<Feature> = Vec::new();
        assert_eq!(layout_distance(&a, &empty, &cfg), 2.0);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let sets = vec![
            feats(&[(20, 20)]),
            feats(&[(50, 50)]),
            feats(&[(20, 20), (50, 50)]),
        ];
        let m = distance_matrix(&sets, &SimilarityConfig::default());
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
    }
}
