//! k-medoids clustering (PAM) over a precomputed distance matrix.
//!
//! "The representative objects of k-medoids clustering are called medoids.
//! They are the real points that exist in the cluster, and the k-medoids
//! clustering is less sensitive to noise points compared to k-means. The
//! performance of k-medoids is evaluated by the sum of layout distance
//! (SLD)" — paper Eq. 8.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Indices of the medoid of each cluster.
    pub medoids: Vec<usize>,
    /// Cluster id (index into `medoids`) per input point.
    pub assignment: Vec<usize>,
    /// Final sum of distances from each point to its medoid (Eq. 8's SLD).
    pub sld: f64,
}

impl Clustering {
    /// The members of cluster `c` (including its medoid).
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }
}

/// Runs PAM k-medoids on a symmetric `dist` matrix, seeded.
///
/// Alternates assignment and medoid-update steps until the SLD stops
/// improving. `k` is clamped to the point count.
///
/// # Panics
///
/// Panics if `dist` is empty or not square, or if `k == 0`.
pub fn kmedoids(dist: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
    let n = dist.len();
    assert!(n > 0, "need at least one point");
    assert!(
        dist.iter().all(|row| row.len() == n),
        "matrix must be square"
    );
    assert!(k > 0, "need at least one cluster");
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut medoids: Vec<usize> = indices[..k].to_vec();
    let mut assignment = assign(dist, &medoids);
    let mut sld = score(dist, &medoids, &assignment);
    loop {
        // medoid update: within each cluster pick the member minimizing the
        // intra-cluster distance sum
        let mut new_medoids = medoids.clone();
        for (c, medoid) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter_map(|(i, &a)| (a == c).then_some(i))
                .collect();
            if members.is_empty() {
                continue;
            }
            *medoid = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let sa: f64 = members.iter().map(|&m| dist[a][m]).sum();
                    let sb: f64 = members.iter().map(|&m| dist[b][m]).sum();
                    sa.total_cmp(&sb)
                })
                .expect("non-empty members");
        }
        let new_assignment = assign(dist, &new_medoids);
        let new_sld = score(dist, &new_medoids, &new_assignment);
        if new_sld + 1e-12 < sld {
            medoids = new_medoids;
            assignment = new_assignment;
            sld = new_sld;
        } else {
            break;
        }
    }
    Clustering {
        medoids,
        assignment,
        sld,
    }
}

fn assign(dist: &[Vec<f64>], medoids: &[usize]) -> Vec<usize> {
    (0..dist.len())
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| dist[i][a].total_cmp(&dist[i][b]))
                .map(|(c, _)| c)
                .expect("at least one medoid")
        })
        .collect()
}

fn score(dist: &[Vec<f64>], medoids: &[usize], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &c)| dist[i][medoids[c]])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix of points on a line.
    fn line_dist(points: &[f64]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|&a| points.iter().map(|&b| (a - b).abs()).collect())
            .collect()
    }

    #[test]
    fn two_obvious_clusters() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let c = kmedoids(&line_dist(&pts), 2, 7);
        assert_eq!(c.medoids.len(), 2);
        // points 0-2 share a cluster; 3-5 share the other
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[1], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
        // medoids are the central points of each triple
        let mut ms = c.medoids.clone();
        ms.sort_unstable();
        assert_eq!(ms, vec![1, 4]);
        assert!((c.sld - 0.4).abs() < 1e-9);
    }

    #[test]
    fn k_equal_n_gives_zero_sld() {
        let pts = [1.0, 5.0, 9.0];
        let c = kmedoids(&line_dist(&pts), 3, 1);
        assert_eq!(c.sld, 0.0);
        let mut ms = c.medoids.clone();
        ms.sort_unstable();
        assert_eq!(ms, vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let pts = [1.0, 2.0];
        let c = kmedoids(&line_dist(&pts), 10, 3);
        assert_eq!(c.medoids.len(), 2);
    }

    #[test]
    fn single_cluster_picks_central_medoid() {
        let pts = [0.0, 1.0, 2.0, 3.0, 10.0];
        let c = kmedoids(&line_dist(&pts), 1, 5);
        // the point minimizing total distance is 2.0 (index 2)
        assert_eq!(c.medoids, vec![2]);
        assert_eq!(c.assignment, vec![0; 5]);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = [0.0, 0.5, 4.0, 4.5, 9.0, 9.5];
        let d = line_dist(&pts);
        assert_eq!(kmedoids(&d, 3, 42), kmedoids(&d, 3, 42));
    }

    #[test]
    fn members_partition_points() {
        let pts = [0.0, 0.1, 5.0, 5.1, 9.9];
        let c = kmedoids(&line_dist(&pts), 2, 11);
        let mut all: Vec<usize> = (0..2).flat_map(|k| c.members(k)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_matrix_rejected() {
        let _ = kmedoids(&[], 1, 0);
    }
}
