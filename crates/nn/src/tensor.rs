//! Dense NCHW `f32` tensors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense `f32` tensor with row-major (last dimension fastest) layout.
///
/// Convolutional data uses NCHW order: `[batch, channels, height, width]`.
///
/// ```
/// use ldmo_nn::Tensor;
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = checked_len(&shape);
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn filled(shape: Vec<usize>, value: f32) -> Self {
        let n = checked_len(&shape);
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the shape product.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(checked_len(&shape), data.len(), "buffer length mismatch");
        Tensor { shape, data }
    }

    /// He-normal initialization (`std = sqrt(2 / fan_in)`), seeded.
    pub fn randn_he(shape: Vec<usize>, fan_in: usize, seed: u64) -> Self {
        let n = checked_len(&shape);
        let std = (2.0 / fan_in.max(1) as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..n)
            .map(|_| {
                // Box-Muller from two uniforms
                let u1: f64 = rng.gen_range(1e-10..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (z * std) as f32
            })
            .collect();
        Tensor { shape, data }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes without copying.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        assert_eq!(
            checked_len(&shape),
            self.data.len(),
            "reshape must preserve element count"
        );
        self.shape = shape;
        self
    }

    /// NCHW accessor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D or an index is out of range.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let [dn, dc, dh, dw] = self.dims4();
        assert!(n < dn && c < dc && h < dh && w < dw, "index out of range");
        self.data[((n * dc + c) * dh + h) * dw + w]
    }

    /// NCHW mutable accessor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D or an index is out of range.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let [dn, dc, dh, dw] = self.dims4();
        assert!(n < dn && c < dc && h < dh && w < dw, "index out of range");
        &mut self.data[((n * dc + c) * dh + h) * dw + w]
    }

    /// The four dimensions of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn dims4(&self) -> [usize; 4] {
        assert_eq!(self.shape.len(), 4, "expected a 4-D tensor");
        [self.shape[0], self.shape[1], self.shape[2], self.shape[3]]
    }

    /// Element-wise map into a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        (self.data.iter().map(|&v| f64::from(v)).sum::<f64>() / self.data.len() as f64) as f32
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensors need at least one dimension");
    assert!(
        shape.iter().all(|&d| d > 0),
        "tensor dimensions must be positive"
    );
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Tensor::zeros(vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![0.0; 5]);
    }

    #[test]
    fn nchw_indexing_is_row_major() {
        let mut t = Tensor::zeros(vec![2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at4(1, 2, 3, 4), 7.0);
        // last element of the buffer
        assert_eq!(t.as_slice()[2 * 3 * 4 * 5 - 1], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros(vec![2, 3]).reshape(vec![4, 2]);
    }

    #[test]
    fn he_init_statistics() {
        let t = Tensor::randn_he(vec![10_000], 50, 7);
        let mean = t.mean();
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        let expected_var = 2.0 / 50.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected_var).abs() / expected_var < 0.1,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn he_init_deterministic_per_seed() {
        let a = Tensor::randn_he(vec![8], 4, 1);
        let b = Tensor::randn_he(vec![8], 4, 1);
        let c = Tensor::randn_he(vec![8], 4, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
