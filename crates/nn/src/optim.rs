//! Optimizers: Adam (the paper's choice — "Adam computes individual
//! adaptive learning rates for different parameters which is more suitable
//! for large scale data") and plain SGD for comparison.

use crate::layers::{Layer, Param};

/// A step-decay learning-rate schedule: every `step_epochs` epochs the
/// learning rate is multiplied by `gamma`. Call [`LrSchedule::lr_at`] with
/// the current epoch and hand the result to the optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Epoch interval between decays.
    pub step_epochs: usize,
    /// Multiplicative decay factor per step.
    pub gamma: f32,
}

impl LrSchedule {
    /// A constant schedule (no decay).
    pub fn constant(lr: f32) -> Self {
        LrSchedule {
            base_lr: lr,
            step_epochs: usize::MAX,
            gamma: 1.0,
        }
    }

    /// The learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        if self.step_epochs == usize::MAX || self.step_epochs == 0 {
            return self.base_lr;
        }
        self.base_lr * self.gamma.powi((epoch / self.step_epochs) as i32)
    }
}

/// Clips every parameter gradient of `net` to the global L2 norm
/// `max_norm`, returning the pre-clip norm. Standard protection against
/// the occasional exploding mini-batch.
pub fn clip_grad_norm(net: &mut dyn Layer, max_norm: f32) -> f32 {
    let mut sq_sum = 0.0f64;
    net.visit_params(&mut |p: &mut Param| {
        sq_sum += p
            .grad
            .as_slice()
            .iter()
            .map(|&g| f64::from(g) * f64::from(g))
            .sum::<f64>();
    });
    let norm = (sq_sum.sqrt()) as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        net.visit_params(&mut |p: &mut Param| {
            for g in p.grad.as_mut_slice() {
                *g *= scale;
            }
        });
    }
    norm
}

/// Adam optimizer with the standard bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the usual defaults (β1 = 0.9, β2 = 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step to every parameter of `net` using the
    /// gradients accumulated since the last [`Layer::zero_grad`].
    pub fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - (f64::from(self.beta1)).powf(t);
        let bc2 = 1.0 - (f64::from(self.beta2)).powf(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        net.visit_params(&mut |p: &mut Param| {
            if m_all.len() <= idx {
                m_all.push(vec![0.0; p.value.len()]);
                v_all.push(vec![0.0; p.value.len()]);
            }
            let m = &mut m_all[idx];
            let v = &mut v_all[idx];
            assert_eq!(
                m.len(),
                p.value.len(),
                "parameter {} changed size between steps",
                p.name
            );
            let vals = p.value.as_mut_slice();
            let grads = p.grad.as_slice();
            for i in 0..vals.len() {
                let g = grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let m_hat = f64::from(m[i]) / bc1;
                let v_hat = f64::from(v[i]) / bc2;
                vals[i] -= lr * (m_hat / (v_hat.sqrt() + f64::from(eps))) as f32;
            }
            idx += 1;
        });
    }
}

/// Plain stochastic gradient descent, optionally with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step.
    pub fn step(&mut self, net: &mut dyn Layer) {
        let (lr, mu) = (self.lr, self.momentum);
        let vel = &mut self.velocity;
        let mut idx = 0usize;
        net.visit_params(&mut |p: &mut Param| {
            if vel.len() <= idx {
                vel.push(vec![0.0; p.value.len()]);
            }
            let v = &mut vel[idx];
            let vals = p.value.as_mut_slice();
            let grads = p.grad.as_slice();
            for i in 0..vals.len() {
                v[i] = mu * v[i] + grads[i];
                vals[i] -= lr * v[i];
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use crate::loss::{mse_loss, mse_loss_grad};
    use crate::Tensor;

    fn fit(optimizer_is_adam: bool) -> f32 {
        // regress y = 2x1 - x2 + 0.5 with a single linear layer
        let mut net = Linear::new(2, 1, 5);
        let xs = [
            [0.0f32, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [0.5, -0.5],
            [-1.0, 0.5],
        ];
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[0] - x[1] + 0.5).collect();
        let x = Tensor::from_vec(vec![6, 2], xs.iter().flatten().copied().collect());
        let y = Tensor::from_vec(vec![6, 1], ys);
        let mut adam = Adam::new(0.05);
        let mut sgd = Sgd::new(0.05, 0.9);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let pred = net.forward(&x, true);
            last = mse_loss(&pred, &y);
            let grad = mse_loss_grad(&pred, &y);
            net.zero_grad();
            let _ = net.backward(&grad);
            if optimizer_is_adam {
                adam.step(&mut net);
            } else {
                sgd.step(&mut net);
            }
        }
        last
    }

    #[test]
    fn adam_fits_linear_regression() {
        assert!(fit(true) < 1e-3, "final loss {}", fit(true));
    }

    #[test]
    fn sgd_fits_linear_regression() {
        assert!(fit(false) < 1e-3, "final loss {}", fit(false));
    }

    #[test]
    fn lr_schedule_decays_stepwise() {
        let s = LrSchedule {
            base_lr: 1.0,
            step_epochs: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
        assert_eq!(LrSchedule::constant(0.1).lr_at(1000), 0.1);
    }

    #[test]
    fn grad_clipping_caps_global_norm() {
        let mut net = Linear::new(2, 1, 3);
        let x = Tensor::from_vec(vec![1, 2], vec![100.0, -100.0]);
        let y = Tensor::from_vec(vec![1, 1], vec![0.0]);
        let pred = net.forward(&x, true);
        let grad = mse_loss_grad(&pred, &y);
        net.zero_grad();
        let _ = net.backward(&grad);
        let before = clip_grad_norm(&mut net, 1.0);
        assert!(before > 1.0, "test needs a large gradient, got {before}");
        let after = clip_grad_norm(&mut net, 1.0);
        assert!((after - 1.0).abs() < 1e-4, "post-clip norm {after}");
    }

    #[test]
    fn clipping_leaves_small_gradients_alone() {
        let mut net = Linear::new(2, 1, 3);
        let x = Tensor::from_vec(vec![1, 2], vec![0.01, 0.01]);
        let y = Tensor::from_vec(vec![1, 1], vec![0.0]);
        let pred = net.forward(&x, true);
        let grad = mse_loss_grad(&pred, &y);
        net.zero_grad();
        let _ = net.backward(&grad);
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.extend_from_slice(p.grad.as_slice()));
        let _ = clip_grad_norm(&mut net, 1e6);
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.extend_from_slice(p.grad.as_slice()));
        assert_eq!(before, after);
    }

    #[test]
    fn adam_moments_persist_across_steps() {
        let mut net = Linear::new(1, 1, 9);
        let mut adam = Adam::new(0.1);
        let x = Tensor::from_vec(vec![1, 1], vec![1.0]);
        let y = Tensor::from_vec(vec![1, 1], vec![5.0]);
        let mut w_after_first = 0.0;
        for step in 0..2 {
            let pred = net.forward(&x, true);
            let grad = mse_loss_grad(&pred, &y);
            net.zero_grad();
            let _ = net.backward(&grad);
            adam.step(&mut net);
            if step == 0 {
                net.visit_params(&mut |p| {
                    if p.name == "linear.weight" {
                        w_after_first = p.value.as_slice()[0];
                    }
                });
            }
        }
        let mut w_after_second = 0.0;
        net.visit_params(&mut |p| {
            if p.name == "linear.weight" {
                w_after_second = p.value.as_slice()[0];
            }
        });
        assert_ne!(w_after_first, w_after_second);
        assert_eq!(adam.t, 2);
    }
}
