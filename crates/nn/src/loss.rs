//! Regression losses: mean absolute error (the paper's Eq. 10 — chosen to
//! be robust to the label noise the ILT-based labeling introduces) and mean
//! squared error.

use crate::Tensor;

/// Mean absolute error `Σ |ŷ − y| / n` (paper Eq. 10).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mae_loss(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.len() as f64;
    (pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&a, &b)| f64::from((a - b).abs()))
        .sum::<f64>()
        / n) as f32
}

/// Gradient of [`mae_loss`] w.r.t. `pred`: `sign(ŷ − y) / n`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mae_loss_grad(pred: &Tensor, target: &Tensor) -> Tensor {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.len() as f32;
    let data = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&a, &b)| {
            if a > b {
                1.0 / n
            } else if a < b {
                -1.0 / n
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(pred.shape().to_vec(), data)
}

/// Mean squared error `Σ (ŷ − y)² / n`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.len() as f64;
    (pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / n) as f32
}

/// Gradient of [`mse_loss`] w.r.t. `pred`: `2 (ŷ − y) / n`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss_grad(pred: &Tensor, target: &Tensor) -> Tensor {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.len() as f32;
    let data = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&a, &b)| 2.0 * (a - b) / n)
        .collect();
    Tensor::from_vec(pred.shape().to_vec(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_reference_values() {
        let p = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec(vec![4], vec![1.0, 0.0, 5.0, 4.0]);
        assert!((mae_loss(&p, &t) - 1.0).abs() < 1e-7); // (0+2+2+0)/4
    }

    #[test]
    fn mae_grad_is_scaled_sign() {
        let p = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec(vec![4], vec![1.0, 0.0, 5.0, 4.0]);
        let g = mae_loss_grad(&p, &t);
        assert_eq!(g.as_slice(), &[0.0, 0.25, -0.25, 0.0]);
    }

    #[test]
    fn mse_reference_values() {
        let p = Tensor::from_vec(vec![2], vec![1.0, 3.0]);
        let t = Tensor::from_vec(vec![2], vec![0.0, 1.0]);
        assert!((mse_loss(&p, &t) - 2.5).abs() < 1e-7); // (1+4)/2
        let g = mse_loss_grad(&p, &t);
        assert_eq!(g.as_slice(), &[1.0, 2.0]); // 2·d/2
    }

    #[test]
    fn zero_loss_on_identical() {
        let p = Tensor::filled(vec![3], 1.5);
        assert_eq!(mae_loss(&p, &p), 0.0);
        assert_eq!(mse_loss(&p, &p), 0.0);
        assert!(mae_loss_grad(&p, &p).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_rejected() {
        let p = Tensor::zeros(vec![2]);
        let t = Tensor::zeros(vec![3]);
        let _ = mae_loss(&p, &t);
    }

    #[test]
    fn mae_grad_matches_fd() {
        let p = Tensor::from_vec(vec![3], vec![0.5, -1.0, 2.0]);
        let t = Tensor::from_vec(vec![3], vec![0.0, 0.0, 0.0]);
        let g = mae_loss_grad(&p, &t);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut pa = p.clone();
            pa.as_mut_slice()[i] += eps;
            let mut pb = p.clone();
            pb.as_mut_slice()[i] -= eps;
            let numeric = (mae_loss(&pa, &t) - mae_loss(&pb, &t)) / (2.0 * eps);
            assert!(
                (numeric - g.as_slice()[i]).abs() < 1e-3,
                "at {i}: {numeric} vs {}",
                g.as_slice()[i]
            );
        }
    }
}
