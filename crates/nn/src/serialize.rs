//! Minimal binary checkpoint format for trained networks.
//!
//! Layout: the magic `LDMONN1\n`, then a `u32` array count, then for each
//! array a `u32` length and that many little-endian `f32`s. Arrays are the
//! network's parameters followed by its state buffers, in
//! [`Layer::visit_params`]/[`Layer::visit_buffers`] order — which is stable
//! for a fixed architecture, so a checkpoint can only be loaded into the
//! same architecture it was saved from.

use crate::layers::Layer;
use crate::NnError;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LDMONN1\n";

/// Collects all arrays (parameters then buffers) of a network.
fn collect_arrays(net: &mut dyn Layer) -> Vec<Vec<f32>> {
    let mut arrays = Vec::new();
    net.visit_params(&mut |p| arrays.push(p.value.as_slice().to_vec()));
    net.visit_buffers(&mut |b| arrays.push(b.clone()));
    arrays
}

/// Serializes `net` to `writer`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn save_to<W: Write>(net: &mut dyn Layer, mut writer: W) -> Result<(), NnError> {
    let arrays = collect_arrays(net);
    writer.write_all(MAGIC)?;
    writer.write_all(&(arrays.len() as u32).to_le_bytes())?;
    for arr in arrays {
        writer.write_all(&(arr.len() as u32).to_le_bytes())?;
        for v in arr {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Serializes `net` to the file at `path`. A mutable reference is required
/// because visiting parameters is a mutating traversal; the network values
/// are not changed.
///
/// # Errors
///
/// Returns [`NnError::Io`] on I/O failure.
pub fn save(net: &mut dyn Layer, path: impl AsRef<Path>) -> Result<(), NnError> {
    let file = std::fs::File::create(path)?;
    save_to(net, std::io::BufWriter::new(file))
}

/// Deserializes a checkpoint from `reader` into `net`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on read failure or [`NnError::ShapeMismatch`]
/// when the checkpoint does not match the network architecture.
pub fn load_from<R: Read>(net: &mut dyn Layer, mut reader: R) -> Result<(), NnError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::ShapeMismatch {
            detail: "bad magic: not an ldmo-nn checkpoint".to_owned(),
        });
    }
    let mut u32buf = [0u8; 4];
    reader.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    let mut arrays = Vec::with_capacity(count);
    for ai in 0..count {
        reader.read_exact(&mut u32buf)?;
        let len = u32::from_le_bytes(u32buf) as usize;
        let mut arr = vec![0.0f32; len];
        for v in &mut arr {
            reader.read_exact(&mut u32buf)?;
            *v = f32::from_le_bytes(u32buf);
        }
        // reject non-finite weights before anything touches the network —
        // one NaN here would poison every subsequent forward pass
        if let Some(bad) = arr.iter().position(|v| !v.is_finite()) {
            return Err(NnError::Corrupt {
                detail: format!("array {ai}, value {bad} is non-finite"),
            });
        }
        arrays.push(arr);
    }
    // count expected arrays first so a mismatch never half-loads the net
    let mut expected = 0usize;
    net.visit_params(&mut |_| expected += 1);
    net.visit_buffers(&mut |_| expected += 1);
    if expected != arrays.len() {
        return Err(NnError::ShapeMismatch {
            detail: format!(
                "checkpoint has {} arrays, network has {expected}",
                arrays.len()
            ),
        });
    }
    let mut iter = arrays.into_iter();
    let mut mismatch: Option<String> = None;
    net.visit_params(&mut |p| {
        if mismatch.is_some() {
            return;
        }
        let arr = iter.next().expect("length checked");
        if arr.len() != p.value.len() {
            mismatch = Some(format!(
                "parameter {} has {} values, checkpoint array has {}",
                p.name,
                p.value.len(),
                arr.len()
            ));
            return;
        }
        p.value.as_mut_slice().copy_from_slice(&arr);
    });
    net.visit_buffers(&mut |b| {
        if mismatch.is_some() {
            return;
        }
        let arr = iter.next().expect("length checked");
        if arr.len() != b.len() {
            mismatch = Some(format!(
                "buffer has {} values, checkpoint array has {}",
                b.len(),
                arr.len()
            ));
            return;
        }
        b.copy_from_slice(&arr);
    });
    match mismatch {
        Some(detail) => Err(NnError::ShapeMismatch { detail }),
        None => Ok(()),
    }
}

/// Deserializes the checkpoint at `path` into `net`.
///
/// # Errors
///
/// See [`load_from`].
pub fn load(net: &mut dyn Layer, path: impl AsRef<Path>) -> Result<(), NnError> {
    let mut bytes = std::fs::read(path)?;
    // chaos harness: an installed model fault corrupts the bytes between
    // read and parse (one relaxed load when no plan is installed)
    if let Some(model_fault) = ldmo_guard::fault::corrupt_model() {
        ldmo_guard::fault::corrupt_bytes(&mut bytes, model_fault);
    }
    load_from(net, bytes.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Linear, Sequential};
    use crate::Tensor;

    fn sample_net(seed: u64) -> Sequential {
        Sequential::new()
            .with(Linear::new(4, 3, seed))
            .with(Linear::new(3, 1, seed ^ 1))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut net = sample_net(11);
        let x = Tensor::from_vec(vec![1, 4], vec![0.1, -0.2, 0.3, 0.4]);
        let before = net.forward(&x, false);
        let mut buf = Vec::new();
        save_to(&mut net, &mut buf).expect("save");
        let mut other = sample_net(99); // different init
        load_from(&mut other, buf.as_slice()).expect("load");
        let after = other.forward(&x, false);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn batchnorm_running_stats_roundtrip() {
        let mut bn = BatchNorm2d::new(2);
        bn.set_running_stats(&[1.0, 2.0], &[3.0, 4.0]);
        let mut buf = Vec::new();
        save_to(&mut bn, &mut buf).expect("save");
        let mut fresh = BatchNorm2d::new(2);
        load_from(&mut fresh, buf.as_slice()).expect("load");
        assert_eq!(fresh.running_mean(), &[1.0, 2.0]);
        assert_eq!(fresh.running_var(), &[3.0, 4.0]);
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut net = sample_net(1);
        let mut buf = Vec::new();
        save_to(&mut net, &mut buf).expect("save");
        let mut bigger = Sequential::new().with(Linear::new(5, 3, 0));
        assert!(matches!(
            load_from(&mut bigger, buf.as_slice()),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut net = sample_net(1);
        let err = load_from(&mut net, &b"NOTAMODEL0000"[..]);
        assert!(matches!(err, Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let mut net = sample_net(1);
        let mut buf = Vec::new();
        save_to(&mut net, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            load_from(&mut net, buf.as_slice()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn nan_weight_is_rejected_as_corrupt() {
        let mut net = sample_net(1);
        let mut buf = Vec::new();
        save_to(&mut net, &mut buf).expect("save");
        // poison the first stored weight via the shared corruption helper
        ldmo_guard::fault::corrupt_bytes(&mut buf, ldmo_guard::ModelFault::NanWeight { index: 0 });
        let mut fresh = sample_net(7);
        let x = Tensor::from_vec(vec![1, 4], vec![0.1, -0.2, 0.3, 0.4]);
        let before = fresh.forward(&x, false).as_slice().to_vec();
        let err = load_from(&mut fresh, buf.as_slice());
        assert!(matches!(err, Err(NnError::Corrupt { .. })), "{err:?}");
        // the rejected load must not have touched the network
        assert_eq!(fresh.forward(&x, false).as_slice(), &before[..]);
    }

    #[test]
    fn errors_bridge_into_the_workspace_taxonomy() {
        let corrupt: ldmo_guard::LdmoError = NnError::Corrupt { detail: "x".into() }.into();
        assert_eq!(corrupt.exit_code(), 4);
        let io: ldmo_guard::LdmoError =
            NnError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")).into();
        assert_eq!(io.exit_code(), 5);
    }
}
