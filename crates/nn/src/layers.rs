//! Neural-network layers with hand-written forward and backward passes.
//!
//! All layers follow the same contract: `forward` caches whatever the
//! gradient needs, `backward` consumes the cache and returns the gradient
//! with respect to the layer input. [`Sequential`] and
//! [`BasicBlock`] compose layers into the ResNet topology of the paper's
//! Fig. 5.

use crate::Tensor;

/// A trainable parameter: value and accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
    /// Diagnostic name (e.g. `"conv.weight"`).
    pub name: String,
}

impl Param {
    fn new(value: Tensor, name: &str) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Param {
            value,
            grad,
            name: name.to_owned(),
        }
    }
}

/// A differentiable layer.
pub trait Layer {
    /// Computes the output; `train` toggles training-time behaviour
    /// (batch statistics in [`BatchNorm2d`]).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (the loss gradient w.r.t. the forward
    /// output) and returns the gradient w.r.t. the forward input.
    /// Parameter gradients are *accumulated* into each [`Param::grad`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter (used by optimizers and
    /// serialization).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits every non-trainable state buffer (batch-norm running
    /// statistics), for serialization. Buffers are visited in a stable
    /// order matching the layer structure.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.as_mut_slice().fill(0.0));
    }
}

/// `out[m×n] += a[m×k] · b[k×n]` (row-major), the single GEMM primitive
/// behind convolution and linear layers.
pub(crate) fn matmul_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m×n] += aᵀ[k×m]ᵀ · b[k×n]`, i.e. `a` is stored transposed (k-major).
pub(crate) fn matmul_at_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution (square kernel) via im2col + GEMM.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Option<Param>,
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    input_shape: [usize; 4],
    cols: Vec<Vec<f32>>, // per-batch im2col matrices [C·k·k × OH·OW]
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        seed: u64,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(
            Tensor::randn_he(
                vec![out_channels, in_channels, kernel, kernel],
                fan_in,
                seed,
            ),
            "conv.weight",
        );
        let bias = bias.then(|| Param::new(Tensor::zeros(vec![out_channels]), "conv.bias"));
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias,
            cache: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.padding - self.kernel) / self.stride + 1,
            (w + 2 * self.padding - self.kernel) / self.stride + 1,
        )
    }

    fn im2col(&self, x: &Tensor, n: usize, oh: usize, ow: usize) -> Vec<f32> {
        let [_, c, h, w] = x.dims4();
        let k = self.kernel;
        let mut col = vec![0.0f32; c * k * k * oh * ow];
        let xs = x.as_slice();
        let base = n * c * h * w;
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ci * k + ky) * k + kx) * oh * ow;
                    for oy in 0..ow_range(oh) {
                        let iy = (oy * self.stride + ky) as i64 - self.padding as i64;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        let src = base + (ci * h + iy as usize) * w;
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as i64 - self.padding as i64;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            col[row + oy * ow + ox] = xs[src + ix as usize];
                        }
                    }
                }
            }
        }
        col
    }

    fn col2im(&self, col: &[f32], shape: [usize; 4], oh: usize, ow: usize) -> Vec<f32> {
        let [_, c, h, w] = shape;
        let k = self.kernel;
        let mut img = vec![0.0f32; c * h * w];
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ci * k + ky) * k + kx) * oh * ow;
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as i64 - self.padding as i64;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        let dst = (ci * h + iy as usize) * w;
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as i64 - self.padding as i64;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            img[dst + ix as usize] += col[row + oy * ow + ox];
                        }
                    }
                }
            }
        }
        img
    }
}

// helper so the inner loop in im2col reads naturally
#[inline]
fn ow_range(oh: usize) -> usize {
    oh
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = x.dims4();
        assert_eq!(c, self.in_channels, "input channel mismatch");
        let (oh, ow) = self.output_hw(h, w);
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        let k2 = self.in_channels * self.kernel * self.kernel;
        let pool = ldmo_par::global();
        let ohw = self.out_channels * oh * ow;
        let cols = if pool.threads() == 1 || n == 1 {
            let mut cols = Vec::with_capacity(n);
            for ni in 0..n {
                let col = self.im2col(x, ni, oh, ow);
                let dst = &mut out.as_mut_slice()[ni * ohw..][..ohw];
                matmul_acc(
                    self.weight.value.as_slice(),
                    &col,
                    self.out_channels,
                    k2,
                    oh * ow,
                    dst,
                );
                if let Some(b) = &self.bias {
                    for oc in 0..self.out_channels {
                        let bv = b.value.as_slice()[oc];
                        for v in &mut dst[oc * oh * ow..(oc + 1) * oh * ow] {
                            *v += bv;
                        }
                    }
                }
                cols.push(col);
            }
            cols
        } else {
            // samples are independent and write disjoint output slices:
            // compute each slab on the pool, copy back in index order
            let samples: Vec<usize> = (0..n).collect();
            let slabs = pool.par_map(&samples, |&ni| {
                let col = self.im2col(x, ni, oh, ow);
                let mut slab = vec![0.0f32; ohw];
                matmul_acc(
                    self.weight.value.as_slice(),
                    &col,
                    self.out_channels,
                    k2,
                    oh * ow,
                    &mut slab,
                );
                if let Some(b) = &self.bias {
                    for oc in 0..self.out_channels {
                        let bv = b.value.as_slice()[oc];
                        for v in &mut slab[oc * oh * ow..(oc + 1) * oh * ow] {
                            *v += bv;
                        }
                    }
                }
                (col, slab)
            });
            let os = out.as_mut_slice();
            let mut cols = Vec::with_capacity(n);
            for (ni, (col, slab)) in slabs.into_iter().enumerate() {
                os[ni * ohw..(ni + 1) * ohw].copy_from_slice(&slab);
                cols.push(col);
            }
            cols
        };
        self.cache = Some(ConvCache {
            input_shape: [n, c, h, w],
            cols,
            out_hw: (oh, ow),
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("forward before backward");
        let [n, c, h, w] = cache.input_shape;
        let (oh, ow) = cache.out_hw;
        let k2 = self.in_channels * self.kernel * self.kernel;
        let mut dx = Tensor::zeros(vec![n, c, h, w]);
        let pool = ldmo_par::global();
        if pool.threads() == 1 || n == 1 {
            for ni in 0..n {
                let go = &grad_out.as_slice()[ni * self.out_channels * oh * ow..]
                    [..self.out_channels * oh * ow];
                // dW[oc, k2] += go[oc, ohw] · col[k2, ohw]ᵀ  — implemented as
                // looping GEMM with B transposed: dW = go · colᵀ
                {
                    let dw = self.weight.grad.as_mut_slice();
                    let col = &cache.cols[ni];
                    for oc in 0..self.out_channels {
                        let gorow = &go[oc * oh * ow..(oc + 1) * oh * ow];
                        let dwrow = &mut dw[oc * k2..(oc + 1) * k2];
                        for p in 0..k2 {
                            let colrow = &col[p * oh * ow..(p + 1) * oh * ow];
                            let mut acc = 0.0f32;
                            for (g, cv) in gorow.iter().zip(colrow) {
                                acc += g * cv;
                            }
                            dwrow[p] += acc;
                        }
                    }
                }
                if let Some(b) = &mut self.bias {
                    let db = b.grad.as_mut_slice();
                    for oc in 0..self.out_channels {
                        db[oc] += go[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
                    }
                }
                // dcol[k2, ohw] = Wᵀ[k2, oc] · go[oc, ohw]
                let mut dcol = vec![0.0f32; k2 * oh * ow];
                matmul_at_acc(
                    self.weight.value.as_slice(),
                    go,
                    k2,
                    self.out_channels,
                    oh * ow,
                    &mut dcol,
                );
                let img = self.col2im(&dcol, cache.input_shape, oh, ow);
                dx.as_mut_slice()[ni * c * h * w..(ni + 1) * c * h * w].copy_from_slice(&img);
            }
        } else {
            // per-sample partials are written by ASSIGNMENT inside the
            // workers, then reduced here in ascending sample order: the
            // element-wise addition sequence is exactly the serial loop's,
            // so gradients are bit-identical for any thread count
            let samples: Vec<usize> = (0..n).collect();
            let parts = pool.par_map(&samples, |&ni| {
                let go = &grad_out.as_slice()[ni * self.out_channels * oh * ow..]
                    [..self.out_channels * oh * ow];
                let col = &cache.cols[ni];
                let mut dwp = vec![0.0f32; self.out_channels * k2];
                for oc in 0..self.out_channels {
                    let gorow = &go[oc * oh * ow..(oc + 1) * oh * ow];
                    let dwrow = &mut dwp[oc * k2..(oc + 1) * k2];
                    for p in 0..k2 {
                        let colrow = &col[p * oh * ow..(p + 1) * oh * ow];
                        let mut acc = 0.0f32;
                        for (g, cv) in gorow.iter().zip(colrow) {
                            acc += g * cv;
                        }
                        dwrow[p] = acc;
                    }
                }
                let dbp = self.bias.is_some().then(|| {
                    (0..self.out_channels)
                        .map(|oc| go[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>())
                        .collect::<Vec<f32>>()
                });
                let mut dcol = vec![0.0f32; k2 * oh * ow];
                matmul_at_acc(
                    self.weight.value.as_slice(),
                    go,
                    k2,
                    self.out_channels,
                    oh * ow,
                    &mut dcol,
                );
                let img = self.col2im(&dcol, cache.input_shape, oh, ow);
                (dwp, dbp, img)
            });
            let dw = self.weight.grad.as_mut_slice();
            for (dwp, _, _) in &parts {
                for (d, &p) in dw.iter_mut().zip(dwp) {
                    *d += p;
                }
            }
            if let Some(b) = &mut self.bias {
                let db = b.grad.as_mut_slice();
                for (_, dbp, _) in &parts {
                    let dbp = dbp.as_ref().expect("bias partial present");
                    for (d, &p) in db.iter_mut().zip(dbp) {
                        *d += p;
                    }
                }
            }
            let dxs = dx.as_mut_slice();
            for (ni, (_, _, img)) in parts.into_iter().enumerate() {
                dxs[ni * c * h * w..(ni + 1) * c * h * w].copy_from_slice(&img);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// Per-channel batch normalization with affine parameters and running
/// statistics (momentum 0.1, eps 1e-5), matching the paper's ResNet blocks.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: Param::new(Tensor::filled(vec![channels], 1.0), "bn.gamma"),
            beta: Param::new(Tensor::zeros(vec![channels]), "bn.beta"),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Read access to the running mean (for serialization).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Read access to the running variance (for serialization).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Overwrites the running statistics (for deserialization).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.channels);
        assert_eq!(var.len(), self.channels);
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = x.dims4();
        assert_eq!(c, self.channels, "channel mismatch");
        let spatial = h * w;
        let count = (n * spatial) as f32;
        let xs = x.as_slice();
        let mut out = Tensor::zeros(vec![n, c, h, w]);
        let mut x_hat = Tensor::zeros(vec![n, c, h, w]);
        let mut inv_stds = vec![0.0f32; c];
        for (ci, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * spatial;
                    for &v in &xs[base..base + spatial] {
                        sum += f64::from(v);
                        sq += f64::from(v) * f64::from(v);
                    }
                }
                let mean = (sum / f64::from(count)) as f32;
                let var = ((sq / f64::from(count)) - f64::from(mean) * f64::from(mean)) as f32;
                let var = var.max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            *inv_std_slot = inv_std;
            let g = self.gamma.value.as_slice()[ci];
            let b = self.beta.value.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                let xh_out = &mut x_hat.as_mut_slice()[base..base + spatial];
                let y_out = &mut out.as_mut_slice()[base..base + spatial];
                for ((xh_v, y_v), &xv) in xh_out
                    .iter_mut()
                    .zip(y_out.iter_mut())
                    .zip(&xs[base..base + spatial])
                {
                    let xh = (xv - mean) * inv_std;
                    *xh_v = xh;
                    *y_v = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std: inv_stds,
            shape: [n, c, h, w],
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("forward before backward");
        let [n, c, h, w] = cache.shape;
        let spatial = h * w;
        let m = (n * spatial) as f32;
        let go = grad_out.as_slice();
        let xh = cache.x_hat.as_slice();
        let mut dx = Tensor::zeros(vec![n, c, h, w]);
        for ci in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    sum_dy += f64::from(go[i]);
                    sum_dy_xhat += f64::from(go[i]) * f64::from(xh[i]);
                }
            }
            self.beta.grad.as_mut_slice()[ci] += sum_dy as f32;
            self.gamma.grad.as_mut_slice()[ci] += sum_dy_xhat as f32;
            let g = self.gamma.value.as_slice()[ci];
            let inv_std = cache.inv_std[ci];
            let k1 = (sum_dy / f64::from(m)) as f32;
            let k2 = (sum_dy_xhat / f64::from(m)) as f32;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    dx.as_mut_slice()[i] = g * inv_std * (go[i] - k1 - xh[i] * k2);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("forward before backward");
        let mut g = grad_out.clone();
        for (v, keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// Backward cache of [`MaxPool2d`]: argmax indices, input shape, output
/// spatial dims.
type PoolCache = (Vec<usize>, [usize; 4], (usize, usize));

/// Max pooling with square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    padding: usize,
    cache: Option<PoolCache>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            padding,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = x.dims4();
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        let xs = x.as_slice();
        let mut out = Tensor::zeros(vec![n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = base;
                        for ky in 0..self.kernel {
                            let iy = (oy * self.stride + ky) as i64 - self.padding as i64;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let ix = (ox * self.stride + kx) as i64 - self.padding as i64;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let idx = base + iy as usize * w + ix as usize;
                                if xs[idx] > best {
                                    best = xs[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                        out.as_mut_slice()[oidx] = best;
                        argmax[oidx] = best_idx;
                    }
                }
            }
        }
        self.cache = Some((argmax, [n, c, h, w], (oh, ow)));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, shape, _) = self.cache.take().expect("forward before backward");
        let mut dx = Tensor::zeros(shape.to_vec());
        let d = dx.as_mut_slice();
        for (g, &idx) in grad_out.as_slice().iter().zip(&argmax) {
            d[idx] += g;
        }
        dx
    }
}

// ---------------------------------------------------------------------------
// Global average pooling
// ---------------------------------------------------------------------------

/// Global average pooling `[N, C, H, W] → [N, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cache: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [n, c, h, w] = x.dims4();
        self.cache = Some([n, c, h, w]);
        let spatial = (h * w) as f32;
        let xs = x.as_slice();
        let mut out = Tensor::zeros(vec![n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                out.as_mut_slice()[ni * c + ci] =
                    xs[base..base + h * w].iter().sum::<f32>() / spatial;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.cache.take().expect("forward before backward");
        let scale = 1.0 / (h * w) as f32;
        let mut dx = Tensor::zeros(vec![n, c, h, w]);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.as_slice()[ni * c + ci] * scale;
                let base = (ni * c + ci) * h * w;
                for v in &mut dx.as_mut_slice()[base..base + h * w] {
                    *v = g;
                }
            }
        }
        dx
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer `[N, in] → [N, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with He-initialized weights.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Linear {
            in_features,
            out_features,
            weight: Param::new(
                Tensor::randn_he(vec![out_features, in_features], in_features, seed),
                "linear.weight",
            ),
            bias: Param::new(Tensor::zeros(vec![out_features]), "linear.bias"),
            cache: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear expects [N, in]");
        let n = x.shape()[0];
        assert_eq!(x.shape()[1], self.in_features, "feature mismatch");
        let mut out = Tensor::zeros(vec![n, self.out_features]);
        // out[n, o] = x[n, i] · W[o, i]ᵀ + b
        let xs = x.as_slice();
        let ws = self.weight.value.as_slice();
        let bs = self.bias.value.as_slice();
        for ni in 0..n {
            let xrow = &xs[ni * self.in_features..(ni + 1) * self.in_features];
            let orow =
                &mut out.as_mut_slice()[ni * self.out_features..(ni + 1) * self.out_features];
            for (o, ov) in orow.iter_mut().enumerate() {
                let wrow = &ws[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = bs[o];
                for (xv, wv) in xrow.iter().zip(wrow) {
                    acc += xv * wv;
                }
                *ov = acc;
            }
        }
        self.cache = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("forward before backward");
        let n = x.shape()[0];
        let xs = x.as_slice();
        let go = grad_out.as_slice();
        // dW[o, i] += Σ_n go[n, o] x[n, i];  db[o] += Σ_n go[n, o]
        {
            let dw = self.weight.grad.as_mut_slice();
            let db = self.bias.grad.as_mut_slice();
            for ni in 0..n {
                let xrow = &xs[ni * self.in_features..(ni + 1) * self.in_features];
                let grow = &go[ni * self.out_features..(ni + 1) * self.out_features];
                for (o, &g) in grow.iter().enumerate() {
                    db[o] += g;
                    if g == 0.0 {
                        continue;
                    }
                    let dwrow = &mut dw[o * self.in_features..(o + 1) * self.in_features];
                    for (d, &xv) in dwrow.iter_mut().zip(xrow) {
                        *d += g * xv;
                    }
                }
            }
        }
        // dx[n, i] = Σ_o go[n, o] W[o, i]
        let ws = self.weight.value.as_slice();
        let mut dx = Tensor::zeros(vec![n, self.in_features]);
        for ni in 0..n {
            let grow = &go[ni * self.out_features..(ni + 1) * self.out_features];
            let drow = &mut dx.as_mut_slice()[ni * self.in_features..(ni + 1) * self.in_features];
            for (o, &g) in grow.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let wrow = &ws[o * self.in_features..(o + 1) * self.in_features];
                for (d, &wv) in drow.iter_mut().zip(wrow) {
                    *d += g * wv;
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// A chain of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }
}

// ---------------------------------------------------------------------------
// BasicBlock (ResNet18 residual block)
// ---------------------------------------------------------------------------

/// The ResNet18 basic residual block: two 3×3 conv+BN stages with an
/// identity (or 1×1-conv downsample) skip connection, exactly the structure
/// in the paper's Fig. 5 ("identity mapping is added between two 3×3
/// conventional layers").
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    relu_out_mask: Option<Vec<bool>>,
}

impl BasicBlock {
    /// Creates a block mapping `in_channels → out_channels` at `stride`.
    /// A 1×1 downsample projection is added automatically when the shape
    /// changes.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, seed: u64) -> Self {
        let downsample = (stride != 1 || in_channels != out_channels).then(|| {
            (
                Conv2d::new(in_channels, out_channels, 1, stride, 0, false, seed ^ 0xD5),
                BatchNorm2d::new(out_channels),
            )
        });
        BasicBlock {
            conv1: Conv2d::new(in_channels, out_channels, 3, stride, 1, false, seed),
            bn1: BatchNorm2d::new(out_channels),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, 1, 1, false, seed ^ 0xA7),
            bn2: BatchNorm2d::new(out_channels),
            downsample,
            relu_out_mask: None,
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let main = self.conv1.forward(x, train);
        let main = self.bn1.forward(&main, train);
        let main = self.relu1.forward(&main, train);
        let main = self.conv2.forward(&main, train);
        let main = self.bn2.forward(&main, train);
        let skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        let mut out = Tensor::zeros(main.shape().to_vec());
        let mut mask = vec![false; out.len()];
        {
            let o = out.as_mut_slice();
            let ms = main.as_slice();
            let ss = skip.as_slice();
            for i in 0..o.len() {
                let v = ms[i] + ss[i];
                mask[i] = v > 0.0;
                o[i] = v.max(0.0);
            }
        }
        self.relu_out_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.relu_out_mask.take().expect("forward before backward");
        let mut g = grad_out.clone();
        for (v, keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        // main path
        let d = self.bn2.backward(&g);
        let d = self.conv2.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.bn1.backward(&d);
        let mut dx = self.conv1.backward(&d);
        // skip path
        let dskip = match &mut self.downsample {
            Some((conv, bn)) => {
                let d = bn.backward(&g);
                conv.backward(&d)
            }
            None => g,
        };
        for (a, &b) in dx.as_mut_slice().iter_mut().zip(dskip.as_slice()) {
            *a += b;
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.bn1.visit_buffers(f);
        self.bn2.visit_buffers(f);
        if let Some((_, bn)) = &mut self.downsample {
            bn.visit_buffers(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generic finite-difference check of a layer's input gradient.
    fn check_input_gradient<L: Layer>(layer: &mut L, x: &Tensor, probes: &[usize]) {
        // scalar loss: sum of outputs
        let out = layer.forward(x, true);
        let ones = Tensor::filled(out.shape().to_vec(), 1.0);
        let dx = layer.backward(&ones);
        let eps = 1e-2f32;
        for &i in probes {
            let mut xa = x.clone();
            xa.as_mut_slice()[i] += eps;
            let la: f64 = layer
                .forward(&xa, true)
                .as_slice()
                .iter()
                .map(|&v| f64::from(v))
                .sum();
            // cached state from the probe forward must not leak: run a
            // throwaway backward to clear it
            let _ = layer.backward(&ones);
            let mut xb = x.clone();
            xb.as_mut_slice()[i] -= eps;
            let lb: f64 = layer
                .forward(&xb, true)
                .as_slice()
                .iter()
                .map(|&v| f64::from(v))
                .sum();
            let _ = layer.backward(&ones);
            let numeric = ((la - lb) / (2.0 * f64::from(eps))) as f32;
            let analytic = dx.as_slice()[i];
            let denom = numeric.abs().max(analytic.abs()).max(0.1);
            assert!(
                (numeric - analytic).abs() / denom < 0.12,
                "input grad at {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    fn test_input(shape: Vec<usize>, seed: u64) -> Tensor {
        let n = shape.iter().product();
        Tensor::from_vec(shape, Tensor::randn_he(vec![n], 2, seed).into_vec())
    }

    #[test]
    fn conv_identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, 0);
        conv.visit_params(&mut |p| {
            if p.name == "conv.weight" {
                p.value.as_mut_slice()[0] = 1.0;
            }
        });
        let x = test_input(vec![1, 1, 4, 4], 3);
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_shapes_with_stride_and_padding() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, true, 1);
        let x = test_input(vec![2, 2, 8, 8], 5);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn conv_input_gradient_matches_fd() {
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, true, 11);
        let x = test_input(vec![1, 2, 5, 5], 7);
        check_input_gradient(&mut conv, &x, &[0, 7, 24, 33, 49]);
    }

    #[test]
    fn conv_weight_gradient_matches_fd() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, 13);
        let x = test_input(vec![1, 1, 5, 5], 17);
        let out = conv.forward(&x, true);
        let ones = Tensor::filled(out.shape().to_vec(), 1.0);
        conv.zero_grad();
        let _ = conv.backward(&ones);
        let mut analytic = Vec::new();
        conv.visit_params(&mut |p| analytic = p.grad.as_slice().to_vec());
        let eps = 1e-2f32;
        for (wi, &a_wi) in analytic.iter().enumerate() {
            let mut plus = 0.0f64;
            let mut minus = 0.0f64;
            for (sign, acc) in [(eps, &mut plus), (-eps, &mut minus)] {
                conv.visit_params(&mut |p| p.value.as_mut_slice()[wi] += sign);
                *acc = conv
                    .forward(&x, true)
                    .as_slice()
                    .iter()
                    .map(|&v| f64::from(v))
                    .sum();
                let _ = conv.backward(&ones);
                conv.visit_params(&mut |p| p.value.as_mut_slice()[wi] -= sign);
            }
            let numeric = ((plus - minus) / (2.0 * f64::from(eps))) as f32;
            let denom = numeric.abs().max(a_wi.abs()).max(0.1);
            assert!(
                (numeric - a_wi).abs() / denom < 0.08,
                "weight grad {wi}: numeric {numeric} vs analytic {a_wi}"
            );
        }
    }

    #[test]
    fn batchnorm_normalizes_in_train_mode() {
        let mut bn = BatchNorm2d::new(2);
        let x = test_input(vec![4, 2, 3, 3], 23);
        let y = bn.forward(&x, true);
        // each channel of the output has ~zero mean, ~unit variance
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for h in 0..3 {
                    for w in 0..3 {
                        vals.push(y.at4(ni, ci, h, w));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::filled(vec![2, 1, 2, 2], 3.0);
        // no training yet: running stats are (0, 1), so eval output = x
        let y = bn.forward(&x, false);
        assert!((y.as_slice()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_input_gradient_matches_fd() {
        let mut bn = BatchNorm2d::new(2);
        let x = test_input(vec![2, 2, 3, 3], 31);
        // use a non-uniform loss weighting so the gradient is non-trivial
        let out = bn.forward(&x, true);
        let weights: Vec<f32> = (0..out.len()).map(|i| ((i % 5) as f32) - 2.0).collect();
        let w_t = Tensor::from_vec(out.shape().to_vec(), weights.clone());
        let dx = bn.backward(&w_t);
        let eps = 1e-2f32;
        for &i in &[0usize, 5, 17, 35] {
            let mut xa = x.clone();
            xa.as_mut_slice()[i] += eps;
            let la: f64 = bn
                .forward(&xa, true)
                .as_slice()
                .iter()
                .zip(&weights)
                .map(|(&v, &wt)| f64::from(v) * f64::from(wt))
                .sum();
            let _ = bn.backward(&w_t);
            let mut xb = x.clone();
            xb.as_mut_slice()[i] -= eps;
            let lb: f64 = bn
                .forward(&xb, true)
                .as_slice()
                .iter()
                .zip(&weights)
                .map(|(&v, &wt)| f64::from(v) * f64::from(wt))
                .sum();
            let _ = bn.backward(&w_t);
            let numeric = ((la - lb) / (2.0 * f64::from(eps))) as f32;
            let analytic = dx.as_slice()[i];
            let denom = numeric.abs().max(analytic.abs()).max(0.1);
            assert!(
                (numeric - analytic).abs() / denom < 0.12,
                "bn grad at {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = relu.backward(&Tensor::filled(vec![1, 4], 1.0));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut pool = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(
            vec![1, 1, 2, 4],
            vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 6.0],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.as_slice(), &[5.0, 6.0]);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1, 2], vec![10.0, 20.0]));
        assert_eq!(g.as_slice(), &[0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 20.0]);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        let g = pool.backward(&Tensor::from_vec(vec![1, 2], vec![4.0, 8.0]));
        assert_eq!(g.as_slice()[0], 1.0); // 4 / 4
        assert_eq!(g.as_slice()[4], 2.0); // 8 / 4
    }

    #[test]
    fn linear_input_gradient_matches_fd() {
        let mut lin = Linear::new(6, 3, 41);
        let x = test_input(vec![2, 6], 43);
        check_input_gradient(&mut lin, &x, &[0, 3, 7, 11]);
    }

    #[test]
    fn sequential_composes() {
        let mut net = Sequential::new()
            .with(Linear::new(4, 8, 1))
            .with(Relu::new())
            .with(Linear::new(8, 2, 2));
        let x = test_input(vec![3, 4], 47);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[3, 2]);
        let dx = net.backward(&Tensor::filled(vec![3, 2], 1.0));
        assert_eq!(dx.shape(), &[3, 4]);
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4); // two linears × (weight + bias)
    }

    #[test]
    fn basic_block_identity_shape() {
        let mut block = BasicBlock::new(4, 4, 1, 53);
        let x = test_input(vec![2, 4, 6, 6], 59);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
        let dx = block.backward(&Tensor::filled(y.shape().to_vec(), 1.0));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn basic_block_downsample_shape() {
        let mut block = BasicBlock::new(4, 8, 2, 61);
        let x = test_input(vec![1, 4, 8, 8], 67);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        // downsample adds a conv + bn: 2 + 2 + 2 + 2·(bn gamma/beta) params
        let mut names = Vec::new();
        block.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names.iter().filter(|n| *n == "conv.weight").count(), 3);
    }

    #[test]
    fn basic_block_input_gradient_matches_fd() {
        let mut block = BasicBlock::new(2, 2, 1, 71);
        let x = test_input(vec![1, 2, 4, 4], 73);
        check_input_gradient(&mut block, &x, &[0, 9, 21, 31]);
    }

    #[test]
    fn conv_strided_input_gradient_matches_fd() {
        // stride-2 convolutions (the ResNet downsampling path) exercise the
        // col2im scatter differently from stride 1
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, false, 19);
        let x = test_input(vec![1, 2, 6, 6], 23);
        check_input_gradient(&mut conv, &x, &[0, 13, 35, 70]);
    }

    #[test]
    fn maxpool_padded_gradient_matches_fd() {
        let mut pool = MaxPool2d::new(3, 2, 1);
        // Distinct values with gaps (0.25) far above the FD step (1e-2):
        // a random input can leave a window's runner-up within eps of its
        // max, and the ±eps probe then crosses the max kink, producing a
        // spurious fractional numeric gradient where the analytic one is 0.
        let vals: Vec<f32> = (0..36)
            .map(|i| ((i * 17) % 36) as f32 * 0.25 - 4.0)
            .collect();
        let x = Tensor::from_vec(vec![1, 1, 6, 6], vals);
        check_input_gradient(&mut pool, &x, &[0, 7, 21, 35]);
    }

    #[test]
    fn global_avg_pool_gradient_matches_fd() {
        let mut pool = GlobalAvgPool::new();
        let x = test_input(vec![2, 3, 4, 4], 37);
        check_input_gradient(&mut pool, &x, &[0, 17, 40, 95]);
    }

    #[test]
    fn deep_sequential_gradient_matches_fd() {
        // a conv→bn→relu→pool→linear stack: the full composition must
        // still match finite differences end to end
        let mut net = Sequential::new()
            .with(Conv2d::new(1, 2, 3, 1, 1, false, 43))
            .with(BatchNorm2d::new(2))
            .with(Relu::new())
            .with(GlobalAvgPool::new())
            .with(Linear::new(2, 1, 47));
        let x = test_input(vec![1, 1, 5, 5], 53);
        check_input_gradient(&mut net, &x, &[0, 6, 12, 24]);
    }

    #[test]
    fn batchnorm_eval_consistent_after_training_passes() {
        // after several train-mode passes the running stats approximate the
        // data statistics, so eval output should roughly normalize the data
        let mut bn = BatchNorm2d::new(1);
        let x = test_input(vec![8, 1, 4, 4], 59).map(|v| v * 3.0 + 1.0);
        for _ in 0..60 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        let mean = y.mean();
        assert!(mean.abs() < 0.2, "eval mean {mean}");
    }

    #[test]
    fn zero_grad_clears() {
        let mut lin = Linear::new(3, 2, 79);
        let x = test_input(vec![1, 3], 83);
        let y = lin.forward(&x, true);
        let _ = lin.backward(&Tensor::filled(y.shape().to_vec(), 1.0));
        let mut any_nonzero = false;
        lin.visit_params(&mut |p| any_nonzero |= p.grad.as_slice().iter().any(|&v| v != 0.0));
        assert!(any_nonzero);
        lin.zero_grad();
        lin.visit_params(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
        });
    }
}
