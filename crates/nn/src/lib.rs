#![warn(missing_docs)]
//! # ldmo-nn — a from-scratch CPU neural-network substrate
//!
//! The paper trains a ResNet18 regressor (224×224×1 grayscale input, Adam
//! optimizer, mean-absolute-error loss) to predict the post-ILT
//! printability score of a decomposition. No deep-learning framework is
//! available to this reproduction, so this crate implements the required
//! subset from scratch:
//!
//! - [`Tensor`] — dense NCHW `f32` tensors;
//! - [`layers`] — `Conv2d` (im2col + GEMM), `BatchNorm2d`, `ReLU`,
//!   `MaxPool2d`, global average pooling, `Linear`, residual
//!   [`layers::BasicBlock`]s and a [`layers::Sequential`] container, each
//!   with hand-written backward passes;
//! - [`optim`] — Adam (the paper's choice) and SGD;
//! - [`loss`] — MAE (the paper's Eq. 10) and MSE;
//! - [`resnet`] — the ResNet regression network: `resnet18()` builds the
//!   paper's exact topology; `resnet_lite()` is a narrower variant for
//!   CPU-scale training (same architecture family, documented in
//!   DESIGN.md);
//! - [`serialize`] — a minimal binary weight format for saving/loading
//!   trained predictors.
//!
//! Every layer's backward pass is validated against finite differences in
//! the test suite.
//!
//! ```
//! use ldmo_nn::{layers::{Layer, Linear}, Tensor};
//!
//! let mut lin = Linear::new(4, 2, 42);
//! let x = Tensor::from_vec(vec![1, 4], vec![0.5, -0.25, 1.0, 0.0]);
//! let y = lin.forward(&x, false);
//! assert_eq!(y.shape(), &[1, 2]);
//! ```

pub mod layers;
pub mod loss;
pub mod optim;
pub mod resnet;
pub mod serialize;
mod tensor;

pub use tensor::Tensor;

/// Errors produced by the NN substrate.
#[derive(Debug)]
pub enum NnError {
    /// Weight (de)serialization failed.
    Io(std::io::Error),
    /// A serialized checkpoint did not match the network structure.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The checkpoint parsed but its payload is unusable (non-finite
    /// weights) — loading it would poison every forward pass.
    Corrupt {
        /// Which value was bad.
        detail: String,
    },
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            NnError::ShapeMismatch { detail } => {
                write!(f, "checkpoint does not match network: {detail}")
            }
            NnError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            NnError::ShapeMismatch { .. } | NnError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

// Bridge into the workspace-wide taxonomy (here rather than in ldmo-guard
// because of the orphan rule): missing files are I/O, everything else is a
// model error with exit code 4.
impl From<NnError> for ldmo_guard::LdmoError {
    fn from(e: NnError) -> Self {
        match e {
            NnError::Io(source) => ldmo_guard::LdmoError::Io {
                context: "model checkpoint".to_owned(),
                source,
            },
            other => ldmo_guard::LdmoError::Model {
                context: "model checkpoint".to_owned(),
                detail: other.to_string(),
            },
        }
    }
}
