//! The ResNet regression network of the paper's Fig. 5.
//!
//! "We take the structure of ResNet18 as the basic regression network. …
//! The input of the net is 224 × 224 × 1 tensor to receive a grayscale
//! image. Identity mapping is added between two 3×3 conventional layers.
//! After average pooling, there is a 1000 dimensions layer, and a fully
//! connected layer is added to output the score."
//!
//! [`resnet18`] builds exactly that topology. Training it from scratch on a
//! CPU is possible but slow, so [`resnet_lite`] provides a narrower member
//! of the same family (56×56 input, [8, 16, 32, 64] channels, one block
//! per stage) used as the default predictor in the end-to-end flow — the
//! substitution is recorded in DESIGN.md.

use crate::layers::{
    BasicBlock, BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2d, Param, Relu,
    Sequential,
};
use crate::Tensor;

/// Architecture description of a ResNet regressor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Expected input side length (images are square).
    pub input_size: usize,
    /// Stem convolution: `(kernel, stride, padding, out_channels)`.
    pub stem: (usize, usize, usize, usize),
    /// Stem max-pool: `(kernel, stride, padding)`; `None` disables it.
    pub stem_pool: Option<(usize, usize, usize)>,
    /// Output channels per stage.
    pub stage_channels: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Width of the pre-output fully connected layer (paper: 1000).
    pub hidden_dim: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// The full ResNet18 configuration from the paper (224×224×1 input).
pub fn resnet18_config(seed: u64) -> ResNetConfig {
    ResNetConfig {
        input_size: 224,
        stem: (7, 2, 3, 64),
        stem_pool: Some((3, 2, 1)),
        stage_channels: vec![64, 128, 256, 512],
        blocks_per_stage: 2,
        hidden_dim: 1000,
        seed,
    }
}

/// A CPU-scale member of the same family: 56×56 input, narrow stages,
/// one block per stage — trainable in minutes on one core.
pub fn resnet_lite_config(seed: u64) -> ResNetConfig {
    ResNetConfig {
        input_size: 56,
        stem: (3, 1, 1, 8),
        stem_pool: Some((2, 2, 0)),
        stage_channels: vec![8, 16, 32, 64],
        blocks_per_stage: 1,
        hidden_dim: 64,
        seed,
    }
}

/// A ResNet regressor: grayscale image in, scalar printability score out.
pub struct ResNetRegressor {
    config: ResNetConfig,
    net: Sequential,
}

impl ResNetRegressor {
    /// Builds the network described by `config`.
    pub fn new(config: ResNetConfig) -> Self {
        let seed = config.seed;
        let (sk, ss, sp, sc) = config.stem;
        let mut net = Sequential::new()
            .with(Conv2d::new(1, sc, sk, ss, sp, false, seed))
            .with(BatchNorm2d::new(sc))
            .with(Relu::new());
        if let Some((pk, ps, pp)) = config.stem_pool {
            net.push(Box::new(MaxPool2d::new(pk, ps, pp)));
        }
        let mut in_c = sc;
        for (si, &out_c) in config.stage_channels.iter().enumerate() {
            for bi in 0..config.blocks_per_stage {
                // first block of stages 2+ downsamples spatially
                let stride = if si > 0 && bi == 0 { 2 } else { 1 };
                let block_seed = seed ^ ((si as u64 + 1) << 8) ^ ((bi as u64 + 1) << 16);
                net.push(Box::new(BasicBlock::new(in_c, out_c, stride, block_seed)));
                in_c = out_c;
            }
        }
        net.push(Box::new(GlobalAvgPool::new()));
        net.push(Box::new(Linear::new(
            in_c,
            config.hidden_dim,
            seed ^ 0xF00D,
        )));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Linear::new(config.hidden_dim, 1, seed ^ 0xBEEF)));
        ResNetRegressor { config, net }
    }

    /// The architecture description.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Predicted scores for a batch of images `[N, 1, S, S]`, in eval mode.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, 1, input_size, input_size]`.
    pub fn predict(&mut self, batch: &Tensor) -> Vec<f32> {
        let [_, c, h, w] = batch.dims4();
        assert_eq!(c, 1, "the regressor takes grayscale input");
        assert_eq!(
            (h, w),
            (self.config.input_size, self.config.input_size),
            "input must be {0}×{0}",
            self.config.input_size
        );
        self.net.forward(batch, false).into_vec()
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&mut self) -> usize {
        let mut count = 0;
        self.net.visit_params(&mut |p| count += p.value.len());
        count
    }
}

/// Builds the paper's ResNet18 regressor.
pub fn resnet18(seed: u64) -> ResNetRegressor {
    ResNetRegressor::new(resnet18_config(seed))
}

/// Builds the CPU-scale lite regressor.
pub fn resnet_lite(seed: u64) -> ResNetRegressor {
    ResNetRegressor::new(resnet_lite_config(seed))
}

impl Layer for ResNetRegressor {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.net.forward(x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.net.visit_buffers(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mae_loss, mae_loss_grad};
    use crate::optim::Adam;

    #[test]
    fn lite_forward_shape() {
        let mut net = resnet_lite(1);
        let x = Tensor::zeros(vec![2, 1, 56, 56]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[2, 1]);
    }

    #[test]
    fn resnet18_builds_with_paper_dimensions() {
        let mut net = resnet18(1);
        assert_eq!(net.config().input_size, 224);
        assert_eq!(net.config().hidden_dim, 1000);
        assert_eq!(net.config().stage_channels, vec![64, 128, 256, 512]);
        // ResNet18 has ~11M backbone parameters; ours adds the 512→1000→1
        // head: sanity-check the order of magnitude
        let count = net.parameter_count();
        assert!(
            (11_000_000..13_500_000).contains(&count),
            "parameter count {count}"
        );
    }

    #[test]
    fn lite_is_small_enough_for_cpu_training() {
        let mut net = resnet_lite(1);
        let count = net.parameter_count();
        assert!(count < 100_000, "lite parameter count {count}");
    }

    #[test]
    #[should_panic(expected = "grayscale")]
    fn rejects_multichannel_input() {
        let mut net = resnet_lite(1);
        let x = Tensor::zeros(vec![1, 3, 56, 56]);
        let _ = net.predict(&x);
    }

    #[test]
    fn lite_overfits_tiny_regression_set() {
        // four distinguishable images with distinct targets: a healthy
        // network + optimizer must drive MAE well below the initial value
        let mut net = resnet_lite(7);
        let mut xs = Tensor::zeros(vec![4, 1, 56, 56]);
        for i in 0..4 {
            for y in 0..56 {
                for x in 0..56 {
                    // different quadrants lit per sample
                    let lit = match i {
                        0 => y < 28,
                        1 => y >= 28,
                        2 => x < 28,
                        _ => x >= 28,
                    };
                    *xs.at4_mut(i, 0, y, x) = if lit { 1.0 } else { 0.0 };
                }
            }
        }
        let targets = Tensor::from_vec(vec![4, 1], vec![-1.0, -0.25, 0.25, 1.0]);
        let mut adam = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let pred = net.forward(&xs, true);
            last = mae_loss(&pred, &targets);
            first.get_or_insert(last);
            let grad = mae_loss_grad(&pred, &targets);
            net.zero_grad();
            let _ = net.backward(&grad);
            adam.step(&mut net);
        }
        let first = first.expect("at least one epoch");
        assert!(
            last < first * 0.5,
            "training failed to reduce MAE: {first} -> {last}"
        );
    }

    #[test]
    fn full_resnet18_forward_runs_at_paper_resolution() {
        // the paper's exact topology at 224×224×1; one forward pass takes a
        // few seconds on one core, so just the shape is checked
        let mut net = resnet18(2);
        let x = Tensor::zeros(vec![1, 1, 224, 224]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1]);
        assert!(y.as_slice()[0].is_finite());
    }

    #[test]
    fn deterministic_construction() {
        let mut a = resnet_lite(3);
        let mut b = resnet_lite(3);
        let x = Tensor::filled(vec![1, 1, 56, 56], 0.5);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
