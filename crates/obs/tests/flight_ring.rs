//! Flight-recorder ring semantics: wraparound eviction, dump-order
//! stability and the meta header. Lives in its own integration-test
//! binary because ring capacity is first-init-wins per process — the
//! single test here pins a small capacity before anything else (the
//! `obs::enable` inside would otherwise size it at the default 4096).

use ldmo_obs as obs;
use ldmo_obs::analyze::Trace;

#[test]
fn ring_wraps_evicts_oldest_and_dumps_in_ticket_order() {
    assert_eq!(obs::flight::init(16), 16);
    obs::enable();
    obs::set_run_info("backend", "scalar");

    // 8 convergence rows first, then 40 span closes: the spans overwrite
    // the whole ring, so the conv rows (the oldest tickets) must be gone
    {
        let _span = obs::span("flight.conv_host");
        for i in 0..8 {
            obs::convergence(i, 100.0 - f64::from(i), f64::NAN, -1);
        }
    }
    for _ in 0..40 {
        let _span = obs::span("flight.filler");
    }

    assert!(obs::flight::active());
    assert_eq!(obs::flight::capacity(), Some(16));
    // 8 conv + 1 host span + 40 filler spans = 49 tickets issued
    assert_eq!(obs::flight::recorded(), 49);

    let events = obs::flight::events();
    assert_eq!(events.len(), 16, "ring keeps exactly its capacity");
    let ids: Vec<u64> = events
        .iter()
        .map(|e| match e {
            obs::flight::FlightEvent::Span { id, name, .. } => {
                assert_eq!(*name, "flight.filler", "older events were evicted");
                *id
            }
            other => panic!("conv rows should have been overwritten: {other:?}"),
        })
        .collect();
    // dump order is ticket order: strictly increasing, contiguous span ids
    for pair in ids.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "events out of ring order: {ids:?}");
    }

    let mut dump = Vec::new();
    let lines = obs::flight::dump_to(&mut dump, "test-reason").expect("dump to memory");
    assert_eq!(lines, 17, "meta header + 16 events");
    let dump = String::from_utf8(dump).expect("utf-8 dump");
    let header = dump.lines().next().expect("header line");
    for needle in [
        "\"type\":\"meta\"",
        "\"kind\":\"flight\"",
        "\"reason\":\"test-reason\"",
        "\"capacity\":16",
        "\"recorded\":49",
        "\"events\":16",
        "\"backend\":\"scalar\"",
        &format!("\"pid\":{}", std::process::id()),
    ] {
        assert!(header.contains(needle), "header missing {needle}: {header}");
    }

    // the dump is a valid trace: `ldmo trace summarize` can load it
    let trace = Trace::parse(&dump).expect("dump parses as a trace");
    assert_eq!(trace.spans.len(), 16);
    assert_eq!(trace.skipped_lines, 0);
    assert!(trace.spans.iter().all(|s| s.name == "flight.filler"));
}
