//! Behavioral tests of the observability layer. These run in one
//! integration-test binary (and mostly one #[test]) because the collector
//! is global per-process.

use ldmo_obs::json;
use std::time::Duration;

/// Everything that touches global collector state lives in this single
/// test: enable/disable, spans, metrics, convergence records, both sinks.
#[test]
fn collector_end_to_end() {
    // disabled: recording is a no-op
    assert!(!ldmo_obs::enabled());
    {
        let _s = ldmo_obs::span("off.span");
        ldmo_obs::convergence(0, 1.0, f64::NAN, -1);
    }
    ldmo_obs::enable();
    assert!(ldmo_obs::enabled());
    assert!(ldmo_obs::events_snapshot().is_empty());
    assert!(ldmo_obs::records_snapshot().is_empty());

    // spans nest via the per-thread stack
    {
        let mut root = ldmo_obs::span("test.root");
        root.set("layouts", 2.0);
        std::thread::sleep(Duration::from_millis(2));
        {
            let mut child = ldmo_obs::span("test.child");
            child.set("k", 1.0);
            child.set("k", 3.0); // overwrite, not a second slot
            ldmo_obs::convergence(0, 10.0, 0.5, -1);
            ldmo_obs::convergence(1, 8.0, f64::NAN, 4);
        }
        assert!(root.elapsed() >= Duration::from_millis(2));
    }
    let events = ldmo_obs::events_snapshot();
    assert_eq!(events.len(), 2, "off.span must not have recorded");
    let child = events.iter().find(|e| e.name == "test.child").unwrap();
    let root = events.iter().find(|e| e.name == "test.root").unwrap();
    assert_eq!(child.parent, root.id);
    assert_eq!(root.parent, 0);
    assert!(root.dur_us >= 2000, "span timing is monotonic wall-clock");
    assert!(root.dur_us >= child.dur_us);
    assert_eq!(child.meta[0], Some(("k", 3.0)));
    assert_eq!(child.meta[1], None);

    // convergence records carry the enclosing span
    let records = ldmo_obs::records_snapshot();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].span, child.id);
    assert_eq!(records[0].iteration, 0);
    assert_eq!(records[0].l2, 10.0);
    assert!(records[1].step_norm.is_nan());
    assert_eq!(records[1].epe_violations, 4);
    assert_eq!(ldmo_obs::dropped_records(), 0);

    // metrics: same name returns the same underlying cell
    let c = ldmo_obs::counter("test.counter");
    c.add(3);
    ldmo_obs::counter("test.counter").incr();
    assert_eq!(c.get(), 4);
    let g = ldmo_obs::gauge("test.gauge");
    g.set(2.5);
    assert_eq!(ldmo_obs::gauge("test.gauge").get(), 2.5);
    let h = ldmo_obs::histogram("test.hist");
    h.record(0);
    h.record(1);
    h.record(1000);
    h.record_duration(Duration::from_micros(1000));
    let snap = h.snapshot();
    assert_eq!(snap.count, 4);
    assert_eq!(snap.sum, 2001);
    assert_eq!(snap.max, 1000);
    assert_eq!(snap.bins.iter().sum::<u64>(), 4);
    assert_eq!(snap.bins[0], 1, "zero lands in bucket 0");

    // JSONL sink: every line parses, and the content round-trips
    let mut buf = Vec::new();
    let lines = ldmo_obs::write_jsonl(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("utf-8");
    let values = json::parse_jsonl(&text).expect("valid JSONL");
    assert_eq!(values.len(), lines);
    assert_eq!(
        values[0].get("type").and_then(|v| v.as_str()),
        Some("meta"),
        "first line is the meta header"
    );
    let span_lines: Vec<_> = values
        .iter()
        .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some("span"))
        .collect();
    assert_eq!(span_lines.len(), 2);
    assert!(span_lines
        .iter()
        .any(
            |v| v.get("name").and_then(|n| n.as_str()) == Some("test.child")
                && v.get("k").and_then(|k| k.as_f64()) == Some(3.0)
        ));
    let conv_lines: Vec<_> = values
        .iter()
        .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some("conv"))
        .collect();
    assert_eq!(conv_lines.len(), 2);
    assert_eq!(
        conv_lines[1].get("step_norm"),
        Some(&json::Value::Null),
        "NaN must serialize as null"
    );
    assert!(values.iter().any(|v| {
        v.get("type").and_then(|t| t.as_str()) == Some("counter")
            && v.get("name").and_then(|n| n.as_str()) == Some("test.counter")
            && v.get("value").and_then(|x| x.as_f64()) == Some(4.0)
    }));
    assert!(values.iter().any(|v| {
        v.get("type").and_then(|t| t.as_str()) == Some("hist")
            && v.get("bins").and_then(|b| b.as_array()).is_some()
    }));

    // summary tree renders the hierarchy and the metrics
    let summary = ldmo_obs::summary();
    assert!(summary.contains("test.root"));
    assert!(summary.contains("test.child"));
    assert!(summary.contains("test.counter"));
    assert!(summary.contains("test.hist"));

    // file sink
    let path = std::env::temp_dir().join("ldmo_obs_test_trace.jsonl");
    let written = ldmo_obs::flush_jsonl(&path).expect("file write");
    assert_eq!(written, lines);
    let reread = std::fs::read_to_string(&path).expect("read back");
    json::parse_jsonl(&reread).expect("file trace is valid JSONL");
    let _ = std::fs::remove_file(&path);

    // reset clears data but keeps the enabled flag and metric identities
    ldmo_obs::reset();
    assert!(ldmo_obs::enabled());
    assert!(ldmo_obs::events_snapshot().is_empty());
    assert!(ldmo_obs::records_snapshot().is_empty());
    assert_eq!(c.get(), 0);
    // records stay allocation-bounded: capacity survives reset
    assert!(ldmo_obs::convergence_capacity() > 0);

    ldmo_obs::disable();
    assert!(!ldmo_obs::enabled());
}

#[test]
fn json_parser_accepts_and_rejects() {
    let v = json::parse(r#"{"a":[1,2.5,-3e2],"b":"x\"y\n","c":null,"d":true}"#).unwrap();
    assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    assert_eq!(
        v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
        Some(-300.0)
    );
    assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n"));
    assert_eq!(v.get("c"), Some(&json::Value::Null));
    assert_eq!(v.get("d"), Some(&json::Value::Bool(true)));
    assert_eq!(v.get("missing"), None);

    assert!(json::parse("{").is_err());
    assert!(json::parse("[1,]").is_err());
    assert!(json::parse("{\"a\":1} trailing").is_err());
    assert!(json::parse("nul").is_err());

    assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    assert_eq!(json::number(1.5), "1.5");
    assert_eq!(json::number(f64::NAN), "null");
    assert_eq!(json::number(f64::INFINITY), "null");
}
