//! Tests for the trace read side: JSON parser edge cases, log2-histogram
//! percentile reconstruction bounds, and the `analyze` rollup/diff/
//! reconcile machinery that `ldmo trace` is built on.

use ldmo_obs::analyze::{diff, render_diff, render_summary, Trace, DIFF_MIN_GROWTH_US};
use ldmo_obs::json::{self, Value};
use ldmo_obs::{HistogramSnapshot, HISTOGRAM_BINS};

// ---------------------------------------------------------------- json

#[test]
fn json_escaped_strings_round_trip() {
    for original in [
        "plain",
        "quote\"backslash\\slash/",
        "newline\n tab\t return\r",
        "control\u{1} bell\u{7}",
        "unicode: µs → spän",
        "",
    ] {
        let encoded = format!("\"{}\"", json::escape(original));
        let parsed = json::parse(&encoded).expect("escaped string parses");
        assert_eq!(
            parsed.as_str(),
            Some(original),
            "round trip through escape/parse for {original:?}"
        );
    }
}

#[test]
fn json_deep_nesting_parses() {
    const DEPTH: usize = 200;
    let text = format!("{}42{}", "[".repeat(DEPTH), "]".repeat(DEPTH));
    let mut value = &json::parse(&text).expect("deep array parses");
    for _ in 0..DEPTH {
        value = &value.as_array().expect("array level")[0];
    }
    assert_eq!(value.as_f64(), Some(42.0));

    let object = format!("{}1{}", "{\"k\":".repeat(DEPTH), "}".repeat(DEPTH));
    let mut value = &json::parse(&object).expect("deep object parses");
    for _ in 0..DEPTH - 1 {
        value = value.get("k").expect("object level");
    }
    assert_eq!(value.get("k").and_then(Value::as_f64), Some(1.0));
}

#[test]
fn json_non_finite_numbers_become_null_and_round_trip() {
    assert_eq!(json::number(f64::NAN), "null");
    assert_eq!(json::number(f64::INFINITY), "null");
    assert_eq!(json::number(f64::NEG_INFINITY), "null");
    let line = format!("{{\"value\":{}}}", json::number(f64::NAN));
    let parsed = json::parse(&line).expect("null-value object parses");
    assert_eq!(parsed.get("value"), Some(&Value::Null));
}

#[test]
fn trace_parse_recovers_from_truncated_tail() {
    let text = concat!(
        "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"a\",\"start_us\":0,\"dur_us\":10}\n",
        "{\"type\":\"counter\",\"name\":\"c\",\"value\":3}\n",
        // a writer killed mid-line leaves an unterminated object
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"na"
    );
    let trace = Trace::parse(text).expect("truncated trace still parses");
    assert_eq!(trace.spans.len(), 1);
    assert_eq!(trace.counters, vec![("c".to_owned(), 3.0)]);
    assert_eq!(trace.skipped_lines, 1);
    assert!(
        render_summary(&trace).contains("1 unparsable line"),
        "recovery must be surfaced, not silent"
    );
}

#[test]
fn trace_parse_rejects_fully_unparsable_input() {
    assert!(Trace::parse("not json at all\nstill not\n").is_err());
    // but an empty file is a valid (empty) trace
    let empty = Trace::parse("").expect("empty input is an empty trace");
    assert_eq!(empty.spans.len(), 0);
}

#[test]
fn trace_parse_ignores_unknown_line_types() {
    let text = concat!(
        "{\"type\":\"meta\",\"version\":1}\n",
        "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"a\",\"start_us\":0,\"dur_us\":5}\n",
        "{\"type\":\"hologram\",\"name\":\"future\"}\n"
    );
    let trace = Trace::parse(text).expect("unknown types pass through");
    assert_eq!(trace.spans.len(), 1);
    assert_eq!(trace.skipped_lines, 0, "unknown type is not an error");
}

// --------------------------------------------------- percentiles

/// Mirrors the collector's bucketing: 0 → bucket 0, v → floor(log2 v) + 1.
fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let mut bins = vec![0u64; HISTOGRAM_BINS];
    let mut sum = 0u64;
    let mut max = 0u64;
    for &v in samples {
        let b = ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BINS - 1);
        bins[b] += 1;
        sum = sum.saturating_add(v);
        max = max.max(v);
    }
    HistogramSnapshot {
        count: samples.len() as u64,
        sum,
        max,
        bins,
    }
}

/// True percentile by sorting (1-based ceil rank, matching the
/// reconstruction's definition).
fn exact_percentile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[test]
fn percentiles_of_uniform_distribution_within_log2_bound() {
    let samples: Vec<u64> = (1..=1000).collect();
    let snap = snapshot_of(&samples);
    for q in [0.5, 0.9, 0.99] {
        let truth = exact_percentile(&samples, q) as f64;
        let approx = snap.percentile(q);
        assert!(
            approx >= truth / 2.0 && approx <= truth * 2.0,
            "p{q}: reconstructed {approx} vs exact {truth} exceeds the one-bucket (2x) bound"
        );
    }
}

#[test]
fn percentiles_of_lognormal_like_distribution_within_log2_bound() {
    // heavy-tailed: many small latencies, few huge ones (the par.* shape)
    let mut samples = Vec::new();
    for i in 0..900u64 {
        samples.push(50 + i % 90);
    }
    for i in 0..90u64 {
        samples.push(3_000 + i * 37);
    }
    for i in 0..10u64 {
        samples.push(700_000 + i * 1_001);
    }
    let snap = snapshot_of(&samples);
    for q in [0.10, 0.5, 0.9, 0.99, 1.0] {
        let truth = exact_percentile(&samples, q) as f64;
        let approx = snap.percentile(q);
        assert!(
            approx >= truth / 2.0 && approx <= truth * 2.0,
            "p{q}: reconstructed {approx} vs exact {truth} exceeds the one-bucket (2x) bound"
        );
    }
}

#[test]
fn percentiles_are_monotone_and_bounded_by_max() {
    let samples: Vec<u64> = (0..500).map(|i| (i * i) % 10_000).collect();
    let snap = snapshot_of(&samples);
    let mut last = 0.0f64;
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let p = snap.percentile(q);
        assert!(
            p >= last,
            "percentile must be monotone in q (p{q} = {p} < {last})"
        );
        assert!(p <= snap.max as f64, "p{q} = {p} exceeds max {}", snap.max);
        last = p;
    }
}

#[test]
fn percentile_of_zeros_and_point_mass() {
    let zeros = snapshot_of(&[0, 0, 0, 0]);
    assert_eq!(zeros.percentile(0.5), 0.0);
    assert_eq!(zeros.percentile(0.99), 0.0);

    let point = snapshot_of(&[700; 32]);
    for q in [0.01, 0.5, 0.99] {
        let p = point.percentile(q);
        assert!(
            (350.0..=700.0).contains(&p),
            "point mass at 700 reconstructs within its bucket, got {p}"
        );
    }

    let empty = snapshot_of(&[]);
    assert_eq!(empty.percentile(0.5), 0.0, "empty histogram yields 0");
}

#[test]
fn percentile_survives_last_bucket_saturation() {
    // u64::MAX lands in the saturating last bucket; hi is clamped to max
    let snap = snapshot_of(&[u64::MAX, u64::MAX]);
    let p = snap.percentile(0.99);
    assert!(p.is_finite());
    assert!(p <= u64::MAX as f64);
    assert!(p >= (1u128 << (HISTOGRAM_BINS - 2)) as f64);
}

// ------------------------------------------------------- analyze

fn span_line(id: u64, parent: u64, name: &str, start_us: u64, dur_us: u64) -> String {
    format!(
        "{{\"type\":\"span\",\"id\":{id},\"parent\":{parent},\"name\":\"{name}\",\
         \"start_us\":{start_us},\"dur_us\":{dur_us}}}\n"
    )
}

#[test]
fn rollup_aggregates_calls_and_self_time() {
    let mut text = String::new();
    text += &span_line(1, 0, "flow.run", 0, 1_000_000);
    text += &span_line(2, 1, "flow.rank", 0, 300_000);
    text += &span_line(3, 1, "flow.ilt", 300_000, 600_000);
    text += &span_line(4, 0, "flow.run", 2_000_000, 500_000);
    let trace = Trace::parse(&text).expect("parses");
    let rollup = trace.rollup();

    let root = rollup
        .iter()
        .find(|r| r.path == ["flow.run"])
        .expect("root aggregate");
    assert_eq!(root.calls, 2);
    assert_eq!(root.total_us, 1_500_000);
    // self = total − children = 1.5s − (0.3s + 0.6s)
    assert_eq!(root.self_us, 600_000);
    assert_eq!(root.min_us, 500_000);
    assert_eq!(root.max_us, 1_000_000);

    // leaf aggregates keep self == total
    let rank = rollup
        .iter()
        .find(|r| r.path == ["flow.run".to_owned(), "flow.rank".to_owned()])
        .expect("child aggregate");
    assert_eq!(rank.self_us, rank.total_us);

    // depth-first order: root first, then children by total descending
    assert_eq!(rollup[0].path, ["flow.run"]);
    assert_eq!(rollup[1].path.last().unwrap(), "flow.ilt");
    assert_eq!(rollup[2].path.last().unwrap(), "flow.rank");
}

#[test]
fn merge_re_offsets_span_ids() {
    let a = Trace::parse(&span_line(1, 0, "x", 0, 10)).expect("a");
    let b = Trace::parse(&(span_line(1, 0, "y", 0, 20) + &span_line(2, 1, "z", 0, 5))).expect("b");
    let mut merged = a;
    merged.merge(b);
    assert_eq!(merged.spans.len(), 3);
    let ids: Vec<u64> = merged.spans.iter().map(|s| s.id).collect();
    assert_eq!(
        ids.len(),
        ids.iter().collect::<std::collections::HashSet<_>>().len()
    );
    // z's parent must still resolve to y after the offset
    let z = merged.spans.iter().find(|s| s.name == "z").unwrap();
    let y = merged.spans.iter().find(|s| s.name == "y").unwrap();
    assert_eq!(z.parent, y.id);
}

#[test]
fn diff_flags_large_regressions_only() {
    let old = Trace::parse(&(span_line(1, 0, "big", 0, 100_000) + &span_line(2, 0, "tiny", 0, 10)))
        .expect("old");
    let new = Trace::parse(&(span_line(1, 0, "big", 0, 300_000) + &span_line(2, 0, "tiny", 0, 40)))
        .expect("new");
    let rows = diff(&old, &new, 1.5);

    let big = rows.iter().find(|r| r.path == ["big"]).unwrap();
    assert!(big.regressed, "3x growth on a 100ms span is a regression");
    assert!((big.ratio - 3.0).abs() < 1e-9);

    let tiny = rows.iter().find(|r| r.path == ["tiny"]).unwrap();
    assert!(
        !tiny.regressed,
        "4x on a 10µs span is below the {DIFF_MIN_GROWTH_US}µs absolute floor"
    );

    let rendered = render_diff(&rows, 40);
    assert!(rendered.contains("! big"));
    assert!(rendered.contains("1 regression(s)"));
}

#[test]
fn diff_handles_new_and_vanished_aggregates() {
    let old = Trace::parse(&span_line(1, 0, "gone", 0, 50_000)).expect("old");
    let new = Trace::parse(&span_line(1, 0, "fresh", 0, 80_000)).expect("new");
    let rows = diff(&old, &new, 1.5);
    let fresh = rows.iter().find(|r| r.path == ["fresh"]).unwrap();
    assert!(fresh.ratio.is_infinite());
    assert!(
        !fresh.regressed,
        "a new aggregate has no baseline to regress from"
    );
    let gone = rows.iter().find(|r| r.path == ["gone"]).unwrap();
    assert_eq!(gone.new_total_us, 0);
    assert_eq!(gone.new_calls, 0);
}

#[test]
fn conv_summaries_collapse_trajectories() {
    let text = concat!(
        "{\"type\":\"span\",\"id\":7,\"parent\":0,\"name\":\"ilt.run\",\"start_us\":0,\"dur_us\":100}\n",
        "{\"type\":\"conv\",\"span\":7,\"t_us\":1,\"iter\":0,\"l2\":100.0,\"step_norm\":1.0,\"epe\":5}\n",
        "{\"type\":\"conv\",\"span\":7,\"t_us\":2,\"iter\":1,\"l2\":null,\"step_norm\":null,\"epe\":-1}\n",
        "{\"type\":\"conv\",\"span\":7,\"t_us\":3,\"iter\":2,\"l2\":40.0,\"step_norm\":0.5,\"epe\":1}\n"
    );
    let trace = Trace::parse(text).expect("parses");
    let conv = trace.conv_summaries();
    assert_eq!(conv.len(), 1);
    let c = &conv[0];
    assert_eq!(c.span_name, "ilt.run");
    assert_eq!(c.rows, 3);
    assert_eq!(c.iters, 3);
    assert_eq!(c.first_l2, 100.0);
    assert_eq!(c.last_l2, 40.0);
    assert_eq!(c.min_l2, 40.0);
}

#[test]
fn reconcile_checks_flow_timing_meta() {
    let good = "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"flow.run\",\"start_us\":0,\"dur_us\":1000000,\"sel_us\":400000,\"opt_us\":599000}\n";
    let trace = Trace::parse(good).expect("parses");
    assert_eq!(trace.reconcile_flow_timing(0.01), Ok(1));

    let bad = "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"flow.run\",\"start_us\":0,\"dur_us\":1000000,\"sel_us\":100000,\"opt_us\":100000}\n";
    let trace = Trace::parse(bad).expect("parses");
    assert!(trace.reconcile_flow_timing(0.01).is_err());

    // a flow.run span without the meta must fail the check loudly
    let missing = span_line(1, 0, "flow.run", 0, 1_000_000);
    let trace = Trace::parse(&missing).expect("parses");
    assert!(trace.reconcile_flow_timing(0.01).is_err());
}

#[test]
fn reconcile_checks_chip_timing_meta() {
    // chip.run spans reconcile setup+tiles+stitch against the duration
    let good = "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"chip.run\",\"start_us\":0,\"dur_us\":1000000,\"setup_us\":100000,\"tiles_us\":800000,\"stitch_us\":99500}\n";
    let trace = Trace::parse(good).expect("parses");
    assert_eq!(trace.reconcile_flow_timing(0.01), Ok(1));

    let bad = "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"chip.run\",\"start_us\":0,\"dur_us\":1000000,\"setup_us\":100000,\"tiles_us\":100000,\"stitch_us\":100000}\n";
    let trace = Trace::parse(bad).expect("parses");
    assert!(trace.reconcile_flow_timing(0.01).is_err());

    // a chip trace with bucket-less chip.run spans must fail loudly
    let missing = span_line(1, 0, "chip.run", 0, 1_000_000);
    let trace = Trace::parse(&missing).expect("parses");
    assert!(trace.reconcile_flow_timing(0.01).is_err());

    // mixed traces: both kinds are counted
    let mixed = format!(
        "{}{}",
        "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"flow.run\",\"start_us\":0,\"dur_us\":1000000,\"sel_us\":400000,\"opt_us\":599000}\n",
        "{\"type\":\"span\",\"id\":2,\"parent\":0,\"name\":\"chip.run\",\"start_us\":0,\"dur_us\":500000,\"setup_us\":50000,\"tiles_us\":400000,\"stitch_us\":49800}\n"
    );
    let trace = Trace::parse(&mixed).expect("parses");
    assert_eq!(trace.reconcile_flow_timing(0.01), Ok(2));
}

#[test]
fn hist_lines_round_trip_into_percentile_capable_snapshots() {
    ldmo_obs::reset();
    ldmo_obs::enable();
    let h = ldmo_obs::histogram("test.analyze_round_trip_us");
    for v in [0u64, 3, 100, 100, 5_000, 1_000_000] {
        h.record(v);
    }
    let mut buffer = Vec::new();
    ldmo_obs::write_jsonl(&mut buffer).expect("serializes");
    ldmo_obs::disable();
    let text = String::from_utf8(buffer).expect("utf8");
    let trace = Trace::parse(&text).expect("parses");
    let hist = trace
        .hists
        .iter()
        .find(|h| h.name == "test.analyze_round_trip_us")
        .expect("histogram survives the round trip");
    assert_eq!(hist.snapshot.count, 6);
    assert_eq!(hist.snapshot.max, 1_000_000);
    let p99 = hist.snapshot.percentile(0.99);
    assert!(
        (500_000.0..=1_000_000.0).contains(&p99),
        "p99 reconstructs the top sample's bucket, got {p99}"
    );
}
