//! Live-ops layer tests: snapshot delta correctness under concurrent
//! increments, Prometheus rendering of point-mass and saturated
//! histograms, and an end-to-end `/metrics` smoke test over a real TCP
//! socket (including the gauge-omission rule: `mem.*` must not appear
//! without an installed counting allocator).

use ldmo_obs as obs;
use ldmo_obs::snapshot::MetricsSnapshot;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn snapshot_delta_counts_concurrent_increments(per_thread in 1u64..2_000) {
        obs::enable();
        let before = MetricsSnapshot::take();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        obs::counter("liveops.prop").incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("incrementer thread");
        }
        let after = MetricsSnapshot::take();
        prop_assert!(after.seq > before.seq, "snapshot sequence must advance");
        let delta = after.delta(&before);
        let counted = delta
            .counters
            .iter()
            .find(|(name, _)| *name == "liveops.prop")
            .map(|(_, v)| *v)
            .expect("counter registered");
        prop_assert_eq!(counted, 4 * per_thread);
    }
}

#[test]
fn prometheus_renders_point_mass_histogram_exactly() {
    obs::enable();
    for _ in 0..3 {
        obs::histogram("liveops.pointmass").record(5);
    }
    let text = obs::serve::prometheus_text();
    // value 5 lands in log2 bucket 3 ([4, 8)); the integer-exact upper
    // bound is le="7"
    assert!(
        text.contains("ldmo_liveops_pointmass_bucket{le=\"7\"} 3"),
        "missing exact point-mass bucket:\n{text}"
    );
    assert!(text.contains("ldmo_liveops_pointmass_bucket{le=\"3\"} 0"));
    assert!(text.contains("ldmo_liveops_pointmass_bucket{le=\"+Inf\"} 3"));
    assert!(text.contains("ldmo_liveops_pointmass_sum 15"));
    assert!(text.contains("ldmo_liveops_pointmass_count 3"));
}

#[test]
fn prometheus_renders_saturated_histogram() {
    obs::enable();
    obs::histogram("liveops.saturated").record(u64::MAX);
    let text = obs::serve::prometheus_text();
    // the saturating last bucket has no finite bound: the observation
    // appears only in +Inf, and every finite bucket stays at 0
    assert!(text.contains("ldmo_liveops_saturated_bucket{le=\"+Inf\"} 1"));
    assert!(!text.contains("ldmo_liveops_saturated_bucket{le=\"18446744073709551615\"}"));
    let max_finite = format!(
        "ldmo_liveops_saturated_bucket{{le=\"{}\"}} 0",
        (1u64 << 62) - 1
    );
    assert!(
        text.contains(&max_finite),
        "highest finite bucket must render empty:\n{text}"
    );
    assert!(text.contains("ldmo_liveops_saturated_count 1"));
}

/// Minimal HTTP/1.0 GET against the in-process server; returns
/// (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or("").to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_endpoint_serves_over_real_tcp() {
    obs::enable();
    obs::counter("liveops.http").incr();
    let server = obs::serve::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "bad /metrics status: {status}");
    assert!(body.contains("ldmo_up 1"));
    assert!(body.contains("ldmo_liveops_http_total"));
    // gauge omission: no counting allocator is installed in this test
    // binary, so the mem.* family must be absent, not zero-reported
    assert!(
        !body.contains("ldmo_mem_"),
        "mem.* gauges must be omitted without a counting allocator:\n{body}"
    );

    let (status, body) = http_get(addr, "/snapshot");
    assert!(status.contains("200"), "bad /snapshot status: {status}");
    let value = obs::json::parse(body.trim()).expect("snapshot is valid JSON");
    assert_eq!(
        value.get("type").and_then(obs::json::Value::as_str),
        Some("snapshot")
    );
    assert!(
        value
            .get("seq")
            .and_then(obs::json::Value::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );

    let (status, _) = http_get(addr, "/spans");
    assert!(status.contains("200"), "bad /spans status: {status}");

    let (status, _) = http_get(addr, "/nonexistent");
    assert!(status.contains("404"), "unknown path must 404: {status}");
}
