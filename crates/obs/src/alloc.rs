//! Opt-in heap self-profiling: a counting global allocator.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps four atomics:
//! allocation count, reallocation count, live bytes, and a resettable
//! high-water mark. It grew out of the counting allocator in
//! `crates/ilt/tests/alloc_free.rs` (which now uses this type), promoted
//! so binaries can opt in and feed the `mem.*` gauges of the trace:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: ldmo_obs::alloc::CountingAlloc = ldmo_obs::alloc::CountingAlloc;
//! ```
//!
//! Binaries that do not install it pay nothing and emit no `mem.*`
//! gauges ([`installed`] stays false, and the sink skips publishing).
//! The instrumentation itself is three relaxed atomic RMWs per
//! allocation — cheap enough for the bench bins, and exactly zero on the
//! ILT hot path, which performs no allocations at all (the invariant the
//! original test guards).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A `#[global_allocator]` wrapper over [`System`] that feeds the
/// process-wide counters read by [`alloc_count`], [`current_bytes`] and
/// [`peak_bytes`].
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the bookkeeping never
// allocates (plain statics) and never observes the pointers it counts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let size = layout.size() as u64;
        let live = CURRENT_BYTES.fetch_add(size, Ordering::Relaxed) + size;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        let (old, new) = (layout.size() as u64, new_size as u64);
        let live = if new >= old {
            CURRENT_BYTES.fetch_add(new - old, Ordering::Relaxed) + (new - old)
        } else {
            CURRENT_BYTES.fetch_sub(old - new, Ordering::Relaxed) - (old - new)
        };
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Whether a [`CountingAlloc`] is installed as the global allocator in
/// this process (detected on its first allocation).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Heap allocations performed so far (excludes reallocations).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// Heap reallocations performed so far.
pub fn realloc_count() -> u64 {
    REALLOCS.load(Ordering::SeqCst)
}

/// Allocations plus reallocations — the quantity the zero-allocation
/// hot-path regression tests assert on.
pub fn alloc_event_count() -> u64 {
    alloc_count() + realloc_count()
}

/// Live heap bytes right now (as seen by the counting allocator).
pub fn current_bytes() -> u64 {
    CURRENT_BYTES.load(Ordering::SeqCst)
}

/// High-water live-byte mark since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::SeqCst)
}

/// Restarts the high-water mark at the current live-byte level, enabling
/// per-stage peak attribution (each flow stage resets, runs, then reads
/// [`peak_bytes`] as its own peak).
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::SeqCst), Ordering::SeqCst);
}

/// Publishes the `mem.*` gauges (`mem.peak_bytes`, `mem.current_bytes`,
/// `mem.allocs`, `mem.reallocs`) into the metric registry. A no-op unless
/// a [`CountingAlloc`] is installed and the collector is enabled, so
/// traces never carry all-zero memory gauges that merely mean
/// "unprofiled". Called by the JSONL sink just before serialization.
pub fn publish_gauges() {
    if !installed() || !crate::enabled() {
        return;
    }
    crate::gauge("mem.peak_bytes").set(peak_bytes() as f64);
    crate::gauge("mem.current_bytes").set(current_bytes() as f64);
    crate::gauge("mem.allocs").set(alloc_count() as f64);
    crate::gauge("mem.reallocs").set(realloc_count() as f64);
}
