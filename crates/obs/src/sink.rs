//! Sinks draining the collector: the JSONL event stream and the
//! human-readable end-of-run summary tree.

use crate::collector::{self, SpanEvent};
use crate::json;
use crate::metrics;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// Writes the full trace as JSONL (one JSON object per line) to `w`.
/// Returns the number of lines written.
///
/// Line types (`"type"` field): `meta`, `span`, `conv`, `counter`,
/// `gauge`, `hist`. Span metadata fields are flattened into the span
/// object; non-finite numbers are emitted as `null`.
pub fn write_jsonl<W: Write>(w: &mut W) -> io::Result<usize> {
    // opt-in memory self-profiling: refresh the mem.* gauges so every
    // flushed trace carries the run's high-water mark (no-op without an
    // installed CountingAlloc)
    crate::alloc::publish_gauges();
    let mut lines = 0usize;
    let spans = collector::events_snapshot();
    let records = collector::records_snapshot();
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    writeln!(
        w,
        "{{\"type\":\"meta\",\"version\":1,\"written_unix_ms\":{unix_ms},\
         \"spans\":{},\"conv_records\":{},\"conv_dropped\":{}}}",
        spans.len(),
        records.len(),
        collector::dropped_records()
    )?;
    lines += 1;

    let mut ordered = spans;
    ordered.sort_by_key(|s| (s.start_us, s.id));
    for s in &ordered {
        let mut line = format!(
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\
             \"start_us\":{},\"dur_us\":{}",
            s.id,
            s.parent,
            json::escape(s.name),
            s.start_us,
            s.dur_us
        );
        for (key, value) in s.meta.iter().flatten() {
            line.push_str(&format!(
                ",\"{}\":{}",
                json::escape(key),
                json::number(*value)
            ));
        }
        line.push('}');
        writeln!(w, "{line}")?;
        lines += 1;
    }

    for r in &records {
        writeln!(
            w,
            "{{\"type\":\"conv\",\"span\":{},\"t_us\":{},\"iter\":{},\
             \"l2\":{},\"step_norm\":{},\"epe\":{}}}",
            r.span,
            r.t_us,
            r.iteration,
            json::number(r.l2),
            json::number(r.step_norm),
            r.epe_violations
        )?;
        lines += 1;
    }

    for (name, value) in metrics::counters_snapshot() {
        writeln!(
            w,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name)
        )?;
        lines += 1;
    }
    for (name, value) in metrics::gauges_snapshot() {
        writeln!(
            w,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json::escape(name),
            json::number(value)
        )?;
        lines += 1;
    }
    for (name, h) in metrics::histograms_snapshot() {
        // sparse bucket encoding: [[bucket, count], ...]
        let bins: Vec<String> = h
            .bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| format!("[{b},{c}]"))
            .collect();
        writeln!(
            w,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
             \"max\":{},\"bins\":[{}]}}",
            json::escape(name),
            h.count,
            h.sum,
            h.max,
            bins.join(",")
        )?;
        lines += 1;
    }
    // folded sampling-profiler stacks (empty unless --sample-hz ran)
    for (stack, count) in crate::profiler::folded_snapshot() {
        writeln!(
            w,
            "{{\"type\":\"sample\",\"stack\":\"{}\",\"count\":{count}}}",
            json::escape(&stack)
        )?;
        lines += 1;
    }
    Ok(lines)
}

/// Writes the JSONL trace to `path` (created or truncated). The special
/// path `-` streams to stdout instead — which is why every binary keeps
/// its diagnostics on stderr, so `--trace-out - | jq` sees clean JSON.
/// Returns the number of lines written.
pub fn flush_jsonl(path: &Path) -> io::Result<usize> {
    if path.as_os_str() == "-" {
        let stdout = io::stdout();
        let mut lock = stdout.lock();
        let lines = write_jsonl(&mut lock)?;
        lock.flush()?;
        return Ok(lines);
    }
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    let lines = write_jsonl(&mut file)?;
    file.flush()?;
    Ok(lines)
}

struct TreeNode {
    calls: u64,
    total: Duration,
    children: Vec<usize>, // aggregate indices
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

/// Renders the human-readable end-of-run summary: the span tree aggregated
/// by name path (call count + total wall time), followed by counters,
/// gauges and histograms. Empty string when nothing was recorded.
pub fn summary() -> String {
    let events = collector::events_snapshot();
    let records = collector::records_snapshot();
    let counters = metrics::counters_snapshot();
    let gauges = metrics::gauges_snapshot();
    let histograms = metrics::histograms_snapshot();
    if events.is_empty() && records.is_empty() && counters.is_empty() && histograms.is_empty() {
        return String::new();
    }

    let mut out = String::from("── telemetry summary ──\n");

    // Aggregate span instances into a tree keyed by the chain of names.
    let by_id: HashMap<u64, &SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    let path_of = |e: &SpanEvent| -> Vec<&'static str> {
        let mut path = vec![e.name];
        let mut parent = e.parent;
        let mut guard = 0;
        while parent != 0 && guard < 64 {
            guard += 1;
            match by_id.get(&parent) {
                Some(p) => {
                    path.push(p.name);
                    parent = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        path
    };
    let mut aggregates: Vec<(Vec<&'static str>, TreeNode)> = Vec::new();
    let mut index: HashMap<Vec<&'static str>, usize> = HashMap::new();
    for e in &events {
        let path = path_of(e);
        // materialize every ancestor aggregate so orphaned prefixes render
        for depth in 1..=path.len() {
            let prefix = path[..depth].to_vec();
            if !index.contains_key(&prefix) {
                index.insert(prefix.clone(), aggregates.len());
                aggregates.push((
                    prefix,
                    TreeNode {
                        calls: 0,
                        total: Duration::ZERO,
                        children: Vec::new(),
                    },
                ));
            }
        }
        let i = index[&path];
        aggregates[i].1.calls += 1;
        aggregates[i].1.total += Duration::from_micros(e.dur_us);
    }
    // link children
    let links: Vec<(usize, usize)> = index
        .iter()
        .filter(|(path, _)| path.len() > 1)
        .map(|(path, &i)| (index[&path[..path.len() - 1].to_vec()], i))
        .collect();
    for (parent, child) in links {
        aggregates[parent].1.children.push(child);
    }
    let mut roots: Vec<usize> = index
        .iter()
        .filter(|(path, _)| path.len() == 1)
        .map(|(_, &i)| i)
        .collect();
    let order_key = |i: usize| {
        let (path, node) = &aggregates[i];
        (std::cmp::Reverse(node.total), path.clone())
    };
    roots.sort_by_key(|&i| order_key(i));
    fn render(
        out: &mut String,
        aggregates: &[(Vec<&'static str>, TreeNode)],
        i: usize,
        depth: usize,
        order_key: &dyn Fn(usize) -> (std::cmp::Reverse<Duration>, Vec<&'static str>),
    ) {
        let (path, node) = &aggregates[i];
        let name = path.last().expect("non-empty path");
        let label = format!("{}{}", "  ".repeat(depth + 1), name);
        out.push_str(&format!(
            "{label:<38} {calls:>6} call{s} {total:>10}\n",
            calls = node.calls,
            s = if node.calls == 1 { " " } else { "s" },
            total = fmt_duration(node.total)
        ));
        let mut children = node.children.clone();
        children.sort_by_key(|&c| order_key(c));
        for child in children {
            render(out, aggregates, child, depth + 1, order_key);
        }
    }
    if !events.is_empty() {
        out.push_str("spans:\n");
        for root in roots {
            render(&mut out, &aggregates, root, 0, &order_key);
        }
    }

    if !records.is_empty() {
        out.push_str(&format!(
            "convergence records: {} ({} dropped)\n",
            records.len(),
            collector::dropped_records()
        ));
    }
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            out.push_str(&format!("  {name:<36} {value:>12}\n"));
        }
    }
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in gauges {
            out.push_str(&format!("  {name:<36} {value:>12.4}\n"));
        }
    }
    if !histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in histograms {
            out.push_str(&format!(
                "  {name:<36} n={} mean={:.1} max={}\n",
                h.count,
                h.mean(),
                h.max
            ));
        }
    }
    out
}
