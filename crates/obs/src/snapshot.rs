//! Point-in-time metrics snapshots: every registered counter, gauge and
//! histogram read into one sequenced, timestamped [`MetricsSnapshot`].
//!
//! Reads are lock-free per metric (each value is one atomic load; the
//! registry mutex is held only to walk the registration list, never while
//! a recording site holds anything). Snapshots carry a process-global
//! sequence number so consumers polling `/snapshot` can detect missed or
//! duplicate reads, and [`Snapshotter`] computes deltas against the
//! previous snapshot — the rate view a dashboard actually wants.
//! Serialization uses the crate's own [`crate::json`] writer helpers, so
//! the endpoint stays dependency-free.

use crate::metrics::{self, HistogramSnapshot};
use crate::{collector, json};
use std::sync::atomic::{AtomicU64, Ordering};

static SNAPSHOT_SEQ: AtomicU64 = AtomicU64::new(0);

/// One atomic read of the whole metric registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Process-global snapshot sequence number (1-based, strictly
    /// increasing across all takers).
    pub seq: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Microseconds since the collector epoch when the snapshot was taken.
    pub uptime_us: u64,
    /// Counter values, registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values, registration order. Only gauges something actually
    /// registered appear — an absent gauge means "unmeasured", never 0.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram states, registration order.
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
}

/// The change between two snapshots of the same process.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Microseconds elapsed between the two snapshots.
    pub interval_us: u64,
    /// Counter increments over the interval (saturating at 0 — a counter
    /// can only shrink across an explicit [`crate::reset`]).
    pub counters: Vec<(&'static str, u64)>,
    /// New histogram observations over the interval.
    pub hist_counts: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    /// Takes a snapshot of every registered metric right now. The mem.*
    /// gauges are refreshed first ([`crate::alloc::publish_gauges`]), a
    /// no-op unless a counting allocator is installed — so they are
    /// *omitted*, not zero-reported, in unprofiled processes.
    pub fn take() -> MetricsSnapshot {
        crate::alloc::publish_gauges();
        MetricsSnapshot {
            seq: SNAPSHOT_SEQ.fetch_add(1, Ordering::Relaxed) + 1,
            unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            uptime_us: collector::now_us(),
            counters: metrics::counters_snapshot(),
            gauges: metrics::gauges_snapshot(),
            hists: metrics::histograms_snapshot(),
        }
    }

    /// Delta of this snapshot against an earlier one. Metrics registered
    /// since `prev` count their full value (a new metric's previous value
    /// is 0 by definition).
    pub fn delta(&self, prev: &MetricsSnapshot) -> SnapshotDelta {
        let prev_counter = |name: &str| {
            prev.counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, v)| *v)
        };
        let prev_hist = |name: &str| {
            prev.hists
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, h)| h.count)
        };
        SnapshotDelta {
            interval_us: self.uptime_us.saturating_sub(prev.uptime_us),
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (*n, v.saturating_sub(prev_counter(n))))
                .collect(),
            hist_counts: self
                .hists
                .iter()
                .map(|(n, h)| (*n, h.count.saturating_sub(prev_hist(n))))
                .collect(),
        }
    }

    /// JSON object for this snapshot, including `delta` when one is
    /// supplied (the `/snapshot` endpoint schema, DESIGN.md §14).
    pub fn to_json_with(&self, delta: Option<&SnapshotDelta>) -> String {
        let mut out = format!(
            "{{\"type\":\"snapshot\",\"seq\":{},\"unix_ms\":{},\"uptime_us\":{}",
            self.seq, self.unix_ms, self.uptime_us
        );
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{value}", json::escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                json::escape(name),
                json::number(*value)
            ));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bins: Vec<String> = h
                .bins
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| format!("[{b},{c}]"))
                .collect();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{},\"bins\":[{}]}}",
                json::escape(name),
                h.count,
                h.sum,
                h.max,
                json::number(h.percentile(0.50)),
                json::number(h.percentile(0.99)),
                bins.join(",")
            ));
        }
        out.push('}');
        if let Some(d) = delta {
            out.push_str(&format!(",\"delta\":{{\"interval_us\":{}", d.interval_us));
            out.push_str(",\"counters\":{");
            for (i, (name, value)) in d.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{value}", json::escape(name)));
            }
            out.push_str("},\"hist_counts\":{");
            for (i, (name, value)) in d.hist_counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{value}", json::escape(name)));
            }
            out.push_str("}}");
        }
        out.push('}');
        out
    }

    /// JSON object for this snapshot without a delta.
    pub fn to_json(&self) -> String {
        self.to_json_with(None)
    }
}

/// A stateful taker: remembers the previous snapshot so every call after
/// the first comes with a delta.
#[derive(Debug, Default)]
pub struct Snapshotter {
    prev: Option<MetricsSnapshot>,
}

impl Snapshotter {
    /// A snapshotter with no history (the first take has no delta).
    pub fn new() -> Snapshotter {
        Snapshotter::default()
    }

    /// Takes a snapshot and the delta against the previous take.
    pub fn take(&mut self) -> (MetricsSnapshot, Option<SnapshotDelta>) {
        let snapshot = MetricsSnapshot::take();
        let delta = self.prev.as_ref().map(|prev| snapshot.delta(prev));
        self.prev = Some(snapshot.clone());
        (snapshot, delta)
    }
}
