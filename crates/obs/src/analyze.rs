//! Post-hoc analysis of JSONL traces — the read side of the sink in
//! [`crate::sink`], powering `ldmo trace summarize` / `ldmo trace diff`.
//!
//! A [`Trace`] is parsed back from the JSONL event stream (tolerating a
//! truncated tail, so a trace from a crashed or killed run still
//! analyzes), then reduced three ways:
//!
//! - **Span rollups** ([`Trace::rollup`]): spans aggregated by their
//!   name path with call counts, total and *self* time (total minus the
//!   time attributed to child aggregates).
//! - **Percentiles** ([`HistogramSnapshot::percentile`]): p50/p90/p99
//!   reconstructed from the log2 buckets, correct to within one bucket
//!   (< 2×; see DESIGN.md §12 for the error-bound statement).
//! - **Convergence summaries** ([`Trace::conv_summaries`]): per-run ILT
//!   L2 trajectories collapsed to first/last/min and reduction ratio.
//!
//! [`diff`] compares the rollups of two traces and flags aggregates whose
//! total time regressed beyond a threshold ratio, and
//! [`Trace::reconcile_flow_timing`] cross-checks the `flow.run` span
//! durations against the `FlowTiming` buckets the flow stamps into span
//! metadata — the accounting invariant CI enforces on every real trace.

use crate::json::{self, Value};
use crate::metrics::{HistogramSnapshot, HISTOGRAM_BINS};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// One span event read back from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span id (unique within one parsed [`Trace`]; merging re-offsets).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span name (`layer.operation`).
    pub name: String,
    /// Start offset from the collector epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Flattened numeric metadata fields.
    pub meta: Vec<(String, f64)>,
}

impl TraceSpan {
    /// Metadata field lookup.
    pub fn meta_get(&self, key: &str) -> Option<f64> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// One convergence record read back from a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConv {
    /// Innermost enclosing span id at record time (0 = none).
    pub span: u64,
    /// Offset from the collector epoch, microseconds.
    pub t_us: u64,
    /// 0-based ILT iteration index.
    pub iter: u32,
    /// L2 error (`NaN` when the writer emitted `null`).
    pub l2: f64,
    /// Step norm (`NaN` = not measured).
    pub step_norm: f64,
    /// EPE violation count (−1 = not measured).
    pub epe: i64,
}

/// One histogram read back from a trace (sparse bins re-densified).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHist {
    /// Histogram name.
    pub name: String,
    /// Aggregate state, percentile-capable via
    /// [`HistogramSnapshot::percentile`].
    pub snapshot: HistogramSnapshot,
}

/// One folded profiler sample read back from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Root-first span-name path (the `;`-separated folded stack split).
    pub stack: Vec<String>,
    /// Number of samples observed on this exact path.
    pub count: u64,
}

/// A fully parsed trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All span events.
    pub spans: Vec<TraceSpan>,
    /// All convergence records.
    pub conv: Vec<TraceConv>,
    /// Counter values, file order.
    pub counters: Vec<(String, f64)>,
    /// Gauge values, file order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, file order.
    pub hists: Vec<TraceHist>,
    /// Folded sampling-profiler stacks, file order.
    pub samples: Vec<TraceSample>,
    /// Lines that failed to parse and were skipped (e.g. a line truncated
    /// by a crashed writer). Recovery, not silence: consumers surface it.
    pub skipped_lines: usize,
}

fn num(v: &Value, key: &str) -> f64 {
    match v.get(key) {
        Some(Value::Num(n)) => *n,
        _ => f64::NAN,
    }
}

fn num_or(v: &Value, key: &str, default: f64) -> f64 {
    match v.get(key) {
        Some(Value::Num(n)) => *n,
        _ => default,
    }
}

impl Trace {
    /// Parses a JSONL trace. Unparsable lines (a tail truncated mid-write,
    /// an interleaved diagnostic) are skipped and counted in
    /// [`Trace::skipped_lines`]; the parse only fails when *no* line of a
    /// non-empty input is a valid trace event.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        let mut parsed_any = false;
        let mut saw_content = false;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            saw_content = true;
            let value = match json::parse(line) {
                Ok(v) => v,
                Err(_) => {
                    trace.skipped_lines += 1;
                    continue;
                }
            };
            parsed_any = true;
            match value.get("type").and_then(Value::as_str) {
                Some("span") => trace.spans.push(TraceSpan {
                    id: num_or(&value, "id", 0.0) as u64,
                    parent: num_or(&value, "parent", 0.0) as u64,
                    name: value
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    start_us: num_or(&value, "start_us", 0.0) as u64,
                    dur_us: num_or(&value, "dur_us", 0.0) as u64,
                    meta: match &value {
                        Value::Obj(fields) => fields
                            .iter()
                            .filter(|(k, _)| {
                                !matches!(
                                    k.as_str(),
                                    "type" | "id" | "parent" | "name" | "start_us" | "dur_us"
                                )
                            })
                            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                            .collect(),
                        _ => Vec::new(),
                    },
                }),
                Some("conv") => trace.conv.push(TraceConv {
                    span: num_or(&value, "span", 0.0) as u64,
                    t_us: num_or(&value, "t_us", 0.0) as u64,
                    iter: num_or(&value, "iter", 0.0) as u32,
                    l2: num(&value, "l2"),
                    step_norm: num(&value, "step_norm"),
                    epe: num_or(&value, "epe", -1.0) as i64,
                }),
                Some("counter") => trace.counters.push((
                    value
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    num_or(&value, "value", 0.0),
                )),
                Some("gauge") => trace.gauges.push((
                    value
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    num(&value, "value"),
                )),
                Some("hist") => {
                    let mut bins = vec![0u64; HISTOGRAM_BINS];
                    if let Some(pairs) = value.get("bins").and_then(Value::as_array) {
                        for pair in pairs {
                            if let Some([b, c]) = pair.as_array().and_then(|p| p.get(0..2)) {
                                let b = b.as_f64().unwrap_or(0.0) as usize;
                                if b < HISTOGRAM_BINS {
                                    bins[b] = c.as_f64().unwrap_or(0.0) as u64;
                                }
                            }
                        }
                    }
                    trace.hists.push(TraceHist {
                        name: value
                            .get("name")
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_owned(),
                        snapshot: HistogramSnapshot {
                            count: num_or(&value, "count", 0.0) as u64,
                            sum: num_or(&value, "sum", 0.0) as u64,
                            max: num_or(&value, "max", 0.0) as u64,
                            bins,
                        },
                    });
                }
                Some("sample") => {
                    let stack: Vec<String> = value
                        .get("stack")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .split(';')
                        .filter(|f| !f.is_empty())
                        .map(str::to_owned)
                        .collect();
                    if !stack.is_empty() {
                        trace.samples.push(TraceSample {
                            stack,
                            count: num_or(&value, "count", 0.0) as u64,
                        });
                    }
                }
                // `meta` and any future line types pass through silently:
                // the reader is forward-compatible by construction
                _ => {}
            }
        }
        if saw_content && !parsed_any {
            return Err(format!(
                "no parseable trace lines ({} skipped)",
                trace.skipped_lines
            ));
        }
        Ok(trace)
    }

    /// Reads and parses a trace file.
    pub fn load(path: &Path) -> Result<Trace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Trace::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Merges another trace into this one (for multi-file summaries).
    /// Span ids of `other` are re-offset past this trace's maximum so
    /// parent links stay unambiguous; root parents (0) stay 0.
    pub fn merge(&mut self, other: Trace) {
        let offset = self.spans.iter().map(|s| s.id).max().unwrap_or(0);
        for mut s in other.spans {
            s.id += offset;
            if s.parent != 0 {
                s.parent += offset;
            }
            self.spans.push(s);
        }
        for mut c in other.conv {
            if c.span != 0 {
                c.span += offset;
            }
            self.conv.push(c);
        }
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.hists.extend(other.hists);
        self.samples.extend(other.samples);
        self.skipped_lines += other.skipped_lines;
    }

    /// Name path of each span (root-first), resolved through parent links.
    fn paths(&self) -> Vec<Vec<String>> {
        let by_id: HashMap<u64, &TraceSpan> = self.spans.iter().map(|s| (s.id, s)).collect();
        self.spans
            .iter()
            .map(|s| {
                let mut path = vec![s.name.clone()];
                let mut parent = s.parent;
                let mut guard = 0;
                while parent != 0 && guard < 64 {
                    guard += 1;
                    match by_id.get(&parent) {
                        Some(p) => {
                            path.push(p.name.clone());
                            parent = p.parent;
                        }
                        None => break,
                    }
                }
                path.reverse();
                path
            })
            .collect()
    }

    /// Aggregates spans by name path into rollup rows, ordered for
    /// rendering: depth-first, siblings by total time descending.
    ///
    /// `self_us` is the aggregate's total minus its child aggregates'
    /// totals (clamped at 0 — overlapping adopted-parent spans from pool
    /// workers can legitimately sum past their parent's wall time).
    pub fn rollup(&self) -> Vec<RollupRow> {
        let mut index: HashMap<Vec<String>, usize> = HashMap::new();
        let mut rows: Vec<RollupRow> = Vec::new();
        for (span, path) in self.spans.iter().zip(self.paths()) {
            // materialize ancestor aggregates so orphaned prefixes render
            for depth in 1..=path.len() {
                let prefix = path[..depth].to_vec();
                index.entry(prefix.clone()).or_insert_with(|| {
                    rows.push(RollupRow {
                        path: prefix,
                        calls: 0,
                        total_us: 0,
                        self_us: 0,
                        min_us: u64::MAX,
                        max_us: 0,
                    });
                    rows.len() - 1
                });
            }
            let row = &mut rows[index[&path]];
            row.calls += 1;
            row.total_us += span.dur_us;
            row.min_us = row.min_us.min(span.dur_us);
            row.max_us = row.max_us.max(span.dur_us);
        }
        for row in &mut rows {
            if row.calls == 0 {
                row.min_us = 0;
            }
        }
        // self time: total minus direct-child totals
        let child_totals: Vec<(usize, u64)> = rows
            .iter()
            .filter(|r| r.path.len() > 1)
            .map(|r| (index[&r.path[..r.path.len() - 1]], r.total_us))
            .collect();
        for row in &mut rows {
            row.self_us = row.total_us;
        }
        for (parent, child_total) in child_totals {
            rows[parent].self_us = rows[parent].self_us.saturating_sub(child_total);
        }
        // depth-first render order, siblings by total descending
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&rows[a].path, &rows[b].path);
            let common = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
            if common == pa.len().min(pb.len()) {
                return pa.len().cmp(&pb.len()); // ancestor before descendant
            }
            // compare the subtrees diverging at `common` by total time
            let total_at = |path: &[String]| {
                let prefix = path[..=common].to_vec();
                index.get(&prefix).map_or(0, |&i| rows[i].total_us)
            };
            total_at(pb)
                .cmp(&total_at(pa))
                .then_with(|| pa[common].cmp(&pb[common]))
        });
        order.into_iter().map(|i| rows[i].clone()).collect()
    }

    /// One summary per distinct convergence-recording span: the L2
    /// trajectory collapsed to first/last/min and iteration count.
    pub fn conv_summaries(&self) -> Vec<ConvSummary> {
        let names: HashMap<u64, &str> =
            self.spans.iter().map(|s| (s.id, s.name.as_str())).collect();
        let mut order: Vec<u64> = Vec::new();
        let mut by_span: HashMap<u64, ConvSummary> = HashMap::new();
        for c in &self.conv {
            let entry = by_span.entry(c.span).or_insert_with(|| {
                order.push(c.span);
                ConvSummary {
                    span: c.span,
                    span_name: names.get(&c.span).unwrap_or(&"?").to_string(),
                    rows: 0,
                    iters: 0,
                    first_l2: f64::NAN,
                    last_l2: f64::NAN,
                    min_l2: f64::INFINITY,
                }
            });
            entry.rows += 1;
            entry.iters = entry.iters.max(c.iter + 1);
            if c.l2.is_finite() {
                if !entry.first_l2.is_finite() {
                    entry.first_l2 = c.l2;
                }
                entry.last_l2 = c.l2;
                entry.min_l2 = entry.min_l2.min(c.l2);
            }
        }
        order
            .into_iter()
            .filter_map(|s| by_span.remove(&s))
            .collect()
    }

    /// Cross-checks timing-bucket metadata against span durations: every
    /// `flow.run` span's `FlowTiming` buckets (`sel_us` + `opt_us`) and
    /// every `chip.run` span's `ChipTiming` buckets (`setup_us` +
    /// `tiles_us` + `stitch_us`) must reconcile with the span's own
    /// duration within `tolerance`, a fraction — CI uses 0.01. Returns the
    /// number of spans checked; it is an error if no span of either kind
    /// carries the timing metadata, so the check cannot silently pass on
    /// an instrumentation regression.
    pub fn reconcile_flow_timing(&self, tolerance: f64) -> Result<usize, String> {
        let mut checked = 0usize;
        for span in &self.spans {
            let bucketed = match span.name.as_str() {
                "flow.run" => {
                    let (Some(sel), Some(opt)) = (span.meta_get("sel_us"), span.meta_get("opt_us"))
                    else {
                        continue;
                    };
                    sel + opt
                }
                "chip.run" => {
                    let (Some(setup), Some(tiles), Some(stitch)) = (
                        span.meta_get("setup_us"),
                        span.meta_get("tiles_us"),
                        span.meta_get("stitch_us"),
                    ) else {
                        continue;
                    };
                    setup + tiles + stitch
                }
                _ => continue,
            };
            checked += 1;
            let dur = span.dur_us as f64;
            // floor the slack at 1 ms so microsecond-scale smoke runs don't
            // fail on scheduler jitter
            let slack = (dur * tolerance).max(1_000.0);
            if (bucketed - dur).abs() > slack {
                return Err(format!(
                    "{} span {}: timing buckets {bucketed:.0}µs vs span {dur:.0}µs \
                     (allowed slack {slack:.0}µs)",
                    span.name, span.id
                ));
            }
        }
        if checked == 0 {
            return Err(
                "no flow.run span carries sel_us/opt_us and no chip.run span carries \
                 setup_us/tiles_us/stitch_us timing metadata"
                    .into(),
            );
        }
        Ok(checked)
    }

    /// Aggregates the profiler samples per span name: `self` counts
    /// samples whose *leaf* frame is the name (time spent there), `total`
    /// counts samples whose stack contains the name anywhere (time spent
    /// there or below). Rows are ordered by self count descending.
    pub fn flame(&self) -> Vec<FlameRow> {
        let mut index: HashMap<&str, usize> = HashMap::new();
        let mut rows: Vec<FlameRow> = Vec::new();
        for sample in &self.samples {
            let mut seen: Vec<&str> = Vec::new();
            for frame in &sample.stack {
                if seen.contains(&frame.as_str()) {
                    continue; // recursive frames count once per sample
                }
                seen.push(frame);
                let i = *index.entry(frame).or_insert_with(|| {
                    rows.push(FlameRow {
                        name: frame.clone(),
                        self_count: 0,
                        total_count: 0,
                    });
                    rows.len() - 1
                });
                rows[i].total_count += sample.count;
            }
            if let Some(leaf) = sample.stack.last() {
                rows[index[leaf.as_str()]].self_count += sample.count;
            }
        }
        rows.sort_by(|a, b| {
            b.self_count
                .cmp(&a.self_count)
                .then_with(|| b.total_count.cmp(&a.total_count))
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// Collapsed-stack output — one `path;to;frame count` line per folded
    /// stack, the format standard flamegraph tooling consumes. Identical
    /// stacks from merged traces are combined.
    pub fn folded(&self) -> String {
        let mut merged: HashMap<String, u64> = HashMap::new();
        for sample in &self.samples {
            *merged.entry(sample.stack.join(";")).or_insert(0) += sample.count;
        }
        let mut lines: Vec<(String, u64)> = merged.into_iter().collect();
        lines.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        for (stack, count) in lines {
            let _ = writeln!(out, "{stack} {count}");
        }
        out
    }

    /// `(attributed, total)` sample counts: a sample is *attributed* when
    /// every frame on its stack resolved to a known span name (no `?`
    /// placeholder from a torn mirror read).
    pub fn sample_attribution(&self) -> (u64, u64) {
        let total: u64 = self.samples.iter().map(|s| s.count).sum();
        let attributed: u64 = self
            .samples
            .iter()
            .filter(|s| s.stack.iter().all(|f| f != "?"))
            .map(|s| s.count)
            .sum();
        (attributed, total)
    }
}

/// One aggregated span-tree row (see [`Trace::rollup`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RollupRow {
    /// Root-first chain of span names identifying the aggregate.
    pub path: Vec<String>,
    /// Number of span instances aggregated.
    pub calls: u64,
    /// Summed wall-clock time.
    pub total_us: u64,
    /// Total minus direct-child aggregate totals (clamped at 0).
    pub self_us: u64,
    /// Shortest single instance.
    pub min_us: u64,
    /// Longest single instance.
    pub max_us: u64,
}

/// One per-span-name profiler hotspot row (see [`Trace::flame`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FlameRow {
    /// Span name (`layer.operation`; `?` for frames the sampler could not
    /// resolve).
    pub name: String,
    /// Samples whose innermost frame was this span — time spent *in* it.
    pub self_count: u64,
    /// Samples with this span anywhere on the stack — time in it or below.
    pub total_count: u64,
}

/// One collapsed ILT convergence trajectory (see
/// [`Trace::conv_summaries`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvSummary {
    /// Recording span id (0 = rows recorded outside any span).
    pub span: u64,
    /// Name of the recording span (`?` when the span is not in the trace).
    pub span_name: String,
    /// Convergence rows recorded under this span.
    pub rows: usize,
    /// Iterations covered (max iteration index + 1).
    pub iters: u32,
    /// First finite L2 value.
    pub first_l2: f64,
    /// Last finite L2 value.
    pub last_l2: f64,
    /// Smallest finite L2 value.
    pub min_l2: f64,
}

/// One span-aggregate comparison between two traces (see [`diff`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Root-first chain of span names identifying the aggregate.
    pub path: Vec<String>,
    /// Total time in the old trace (0 when the aggregate is new).
    pub old_total_us: u64,
    /// Total time in the new trace (0 when the aggregate vanished).
    pub new_total_us: u64,
    /// Calls in the old trace.
    pub old_calls: u64,
    /// Calls in the new trace.
    pub new_calls: u64,
    /// `new_total / old_total` (infinite for new aggregates).
    pub ratio: f64,
    /// Whether this row exceeds the regression threshold.
    pub regressed: bool,
}

/// Minimum absolute growth for a rollup aggregate to count as a
/// regression: ratio thresholds alone would flag microsecond-scale spans
/// on scheduler noise.
pub const DIFF_MIN_GROWTH_US: u64 = 5_000;

/// Compares the span rollups of two traces. A row regresses when its
/// total grew beyond `threshold` (a ratio, e.g. 1.5 = +50%) *and* by at
/// least [`DIFF_MIN_GROWTH_US`] in absolute terms. Rows are ordered by
/// the new trace's rollup order, with vanished aggregates appended.
pub fn diff(old: &Trace, new: &Trace, threshold: f64) -> Vec<DiffRow> {
    let old_rows = old.rollup();
    let new_rows = new.rollup();
    let old_by_path: HashMap<&[String], &RollupRow> =
        old_rows.iter().map(|r| (r.path.as_slice(), r)).collect();
    let mut rows: Vec<DiffRow> = Vec::new();
    for nr in &new_rows {
        let or = old_by_path.get(nr.path.as_slice());
        let (old_total, old_calls) = or.map_or((0, 0), |r| (r.total_us, r.calls));
        let ratio = if old_total == 0 {
            f64::INFINITY
        } else {
            nr.total_us as f64 / old_total as f64
        };
        rows.push(DiffRow {
            path: nr.path.clone(),
            old_total_us: old_total,
            new_total_us: nr.total_us,
            old_calls,
            new_calls: nr.calls,
            ratio,
            regressed: old_total > 0
                && ratio > threshold
                && nr.total_us.saturating_sub(old_total) >= DIFF_MIN_GROWTH_US,
        });
    }
    let new_paths: std::collections::HashSet<&[String]> =
        new_rows.iter().map(|r| r.path.as_slice()).collect();
    for or in old_rows
        .iter()
        .filter(|r| !new_paths.contains(r.path.as_slice()))
    {
        rows.push(DiffRow {
            path: or.path.clone(),
            old_total_us: or.total_us,
            new_total_us: 0,
            old_calls: or.calls,
            new_calls: 0,
            ratio: 0.0,
            regressed: false,
        });
    }
    rows
}

fn fmt_us(us: u64) -> String {
    let secs = us as f64 / 1e6;
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Renders the human-readable summary of one (possibly merged) trace:
/// span rollups with self time, histogram percentiles, convergence
/// summaries, counters, and the skipped-line recovery note.
pub fn render_summary(trace: &Trace) -> String {
    let mut out = String::new();
    if trace.skipped_lines > 0 {
        let _ = writeln!(
            out,
            "note: {} unparsable line(s) skipped (truncated trace?)",
            trace.skipped_lines
        );
    }
    let rollup = trace.rollup();
    if !rollup.is_empty() {
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "span", "calls", "total", "self", "min", "max"
        );
        for row in &rollup {
            let depth = row.path.len() - 1;
            let name = format!(
                "{}{}",
                "  ".repeat(depth),
                row.path.last().map(String::as_str).unwrap_or("?")
            );
            let _ = writeln!(
                out,
                "{name:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
                row.calls,
                fmt_us(row.total_us),
                fmt_us(row.self_us),
                fmt_us(row.min_us),
                fmt_us(row.max_us)
            );
        }
    }
    if !trace.hists.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<36} {:>9} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "n", "p50", "p90", "p99", "max"
        );
        for h in &trace.hists {
            let s = &h.snapshot;
            let _ = writeln!(
                out,
                "{:<36} {:>9} {:>10.0} {:>10.0} {:>10.0} {:>10}",
                h.name,
                s.count,
                s.percentile(0.50),
                s.percentile(0.90),
                s.percentile(0.99),
                s.max
            );
        }
    }
    let conv = trace.conv_summaries();
    if !conv.is_empty() {
        let finite: Vec<&ConvSummary> = conv.iter().filter(|c| c.first_l2.is_finite()).collect();
        let improved = finite.iter().filter(|c| c.last_l2 < c.first_l2).count();
        let _ = writeln!(
            out,
            "\nconvergence: {} runs, {} rows; {} of {} runs reduced L2",
            conv.len(),
            conv.iter().map(|c| c.rows).sum::<usize>(),
            improved,
            finite.len()
        );
        for c in conv.iter().take(8) {
            let _ = writeln!(
                out,
                "  span {:>5} ({:<16}) {:>3} iters  L2 {:>10.1} -> {:>10.1} (min {:.1})",
                c.span, c.span_name, c.iters, c.first_l2, c.last_l2, c.min_l2
            );
        }
        if conv.len() > 8 {
            let _ = writeln!(out, "  … and {} more runs", conv.len() - 8);
        }
    }
    if !trace.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, value) in &trace.counters {
            let _ = writeln!(out, "  {name:<36} {value:>12.0}");
        }
    }
    if !trace.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, value) in &trace.gauges {
            let _ = writeln!(out, "  {name:<36} {value:>12.4}");
        }
    }
    out
}

/// Renders a [`diff`] result; regressions are prefixed with `!`.
/// `max_rows` bounds the unchanged-row spam (regressed rows always
/// render).
pub fn render_diff(rows: &[DiffRow], max_rows: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>10} {:>8} {:>13}",
        "span", "old", "new", "ratio", "calls"
    );
    let mut shown = 0usize;
    for row in rows {
        if !row.regressed {
            shown += 1;
            if shown > max_rows {
                continue;
            }
        }
        let depth = row.path.len() - 1;
        let name = format!(
            "{}{}{}",
            if row.regressed { "! " } else { "  " },
            "  ".repeat(depth),
            row.path.last().map(String::as_str).unwrap_or("?")
        );
        let ratio = if row.ratio.is_finite() {
            format!("{:.2}x", row.ratio)
        } else {
            "new".to_owned()
        };
        let _ = writeln!(
            out,
            "{name:<44} {:>10} {:>10} {:>8} {:>6}->{:<6}",
            fmt_us(row.old_total_us),
            fmt_us(row.new_total_us),
            ratio,
            row.old_calls,
            row.new_calls
        );
    }
    if shown > max_rows {
        let _ = writeln!(out, "  … {} unchanged rows elided", shown - max_rows);
    }
    let regressions = rows.iter().filter(|r| r.regressed).count();
    let _ = writeln!(
        out,
        "{regressions} regression(s) beyond threshold ({} aggregates compared)",
        rows.len()
    );
    out
}

/// Renders the sampling-profiler hotspot table for `ldmo trace flame`:
/// per-span self/total sample counts and percentages, then the
/// attribution line (share of samples whose whole stack resolved to
/// known span names). `max_rows` bounds the table.
pub fn render_flame(trace: &Trace, max_rows: usize) -> String {
    let rows = trace.flame();
    let (attributed, total) = trace.sample_attribution();
    let mut out = String::new();
    if total == 0 {
        let _ = writeln!(
            out,
            "no profiler samples in trace (run with --sample-hz N to record them)"
        );
        return out;
    }
    let pct = |count: u64| 100.0 * count as f64 / total as f64;
    let _ = writeln!(
        out,
        "{:<36} {:>9} {:>7} {:>9} {:>7}",
        "span", "self", "self%", "total", "total%"
    );
    for row in rows.iter().take(max_rows) {
        let _ = writeln!(
            out,
            "{:<36} {:>9} {:>6.1}% {:>9} {:>6.1}%",
            row.name,
            row.self_count,
            pct(row.self_count),
            row.total_count,
            pct(row.total_count)
        );
    }
    if rows.len() > max_rows {
        let _ = writeln!(out, "  … and {} more spans", rows.len() - max_rows);
    }
    let _ = writeln!(
        out,
        "{total} samples, {:.1}% attributed to known span paths",
        pct(attributed)
    );
    out
}
