#![warn(missing_docs)]
//! # ldmo-obs — the observability layer
//!
//! A minimal `tracing`-style telemetry substrate for the LDMO workspace,
//! implemented from scratch (the build environment has no crates.io
//! access). Three instrument families feed one global collector:
//!
//! - **Spans** ([`span`]): hierarchical wall-clock regions with monotonic
//!   timing and up to [`MAX_SPAN_META`] numeric metadata fields. Parent
//!   links come from a per-thread span stack.
//! - **Metrics** ([`counter`], [`gauge`], [`histogram`]): named atomics
//!   registered once and recorded allocation-free — safe inside the
//!   zero-allocation ILT hot path (DESIGN.md §6).
//! - **Convergence records** ([`convergence`]): fixed-capacity,
//!   per-iteration ILT trace rows (L2, step norm, EPE count) pushed into a
//!   preallocated buffer; overflow drops rows and counts them instead of
//!   allocating.
//!
//! When the collector is disabled (the default) every recording call is a
//! single relaxed atomic load plus a branch, so instrumented hot paths stay
//! measurably free. Enable with [`enable`], `LDMO_TRACE=1`, or
//! [`trace_setup`] (which also understands the `--trace-out PATH` CLI
//! convention used by the bench bins and the `ldmo` CLI).
//!
//! Two sinks drain the collector: a machine-readable JSONL event stream
//! ([`flush_jsonl`], one JSON object per line) and a human-readable
//! end-of-run summary tree ([`summary`]). [`json`] carries a dependency-free
//! JSON parser so traces can be validated and round-tripped in tests
//! without external crates. The read side lives in [`analyze`]: span-tree
//! rollups, histogram percentile reconstruction, convergence summaries and
//! trace diffing, powering the `ldmo trace` subcommand. [`alloc`] adds an
//! opt-in counting global allocator feeding `mem.*` gauges.
//!
//! Span naming, counter-vs-histogram guidance and the hot-path allocation
//! rules are documented in DESIGN.md §8.

pub mod alloc;
pub mod analyze;
mod collector;
pub mod flight;
pub mod json;
mod metrics;
pub mod profiler;
pub mod serve;
mod sink;
pub mod snapshot;

pub use collector::{
    adopt_parent_span, convergence, convergence_capacity, current_span_id, dropped_records,
    events_snapshot, records_snapshot, register_sampler_thread, span, ConvergenceRecord, Span,
    SpanEvent, MAX_SPAN_META,
};
pub use metrics::{
    counter, counters_snapshot, gauge, gauges_snapshot, histogram, histograms_snapshot, Counter,
    Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BINS,
};
pub use sink::{flush_jsonl, summary, write_jsonl};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the global collector is recording.
///
/// This is the compile-cheap no-op gate: a single relaxed atomic load.
/// Instrumentation sites with non-trivial argument computation should check
/// it before doing the work.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Increments the counter `name` when the collector is enabled; with the
/// collector disabled the cost is one relaxed atomic load. Convenience for
/// the common `if enabled() { counter(name).incr() }` pattern at guard and
/// recovery sites.
pub fn incr(name: &'static str) {
    if enabled() {
        counter(name).incr();
    }
}

/// Turns the global collector on (idempotent).
///
/// All collector storage — the convergence-record buffer in particular —
/// is allocated here, so recording afterwards stays allocation-free.
pub fn enable() {
    collector::collector(); // force allocation of all buffers up front
    flight::init_from_env(); // the flight ring preallocates alongside
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the global collector off. Already-recorded data is kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears all recorded spans, convergence records and metric values.
/// The enabled/disabled state is unchanged.
pub fn reset() {
    collector::reset();
    metrics::reset();
    profiler::reset();
}

/// Enables the collector when the environment asks for it
/// (`LDMO_TRACE=1`). Returns whether tracing is now enabled.
pub fn init_from_env() -> bool {
    if std::env::var("LDMO_TRACE").is_ok_and(|v| v == "1") {
        enable();
    }
    enabled()
}

// ---------------------------------------------------------------------------
// Run info: a small key/value registry describing the process (git rev,
// thread count, litho backend, …) that rides along in every flight-recorder
// dump header. Populated by the setup calls that know the values —
// `ldmo_par::cli_setup` sets `threads`, the litho backend setup sets
// `backend` — so the obs crate stays dependency-free.
// ---------------------------------------------------------------------------

static RUN_INFO: OnceLock<Mutex<Vec<(&'static str, String)>>> = OnceLock::new();

fn run_info() -> &'static Mutex<Vec<(&'static str, String)>> {
    RUN_INFO.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records (or overwrites) one run-info entry, e.g. `("threads", "4")`.
/// Entries appear in every flight-recorder dump header ([`flight::dump`]).
pub fn set_run_info(key: &'static str, value: impl Into<String>) {
    let value = value.into();
    let mut info = run_info().lock().expect("run info lock");
    match info.iter_mut().find(|(k, _)| *k == key) {
        Some((_, v)) => *v = value,
        None => info.push((key, value)),
    }
}

/// All run-info entries, insertion order.
pub fn run_info_snapshot() -> Vec<(&'static str, String)> {
    run_info().lock().expect("run info lock").clone()
}

/// The trace output path registered by [`trace_setup`], if any — what the
/// crash path flushes to ([`emergency_flush`]).
static TRACE_PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn trace_path() -> &'static Mutex<Option<PathBuf>> {
    TRACE_PATH.get_or_init(|| Mutex::new(None))
}

/// The JSONL path the current process traces to (`None` when tracing is
/// off or streaming to stdout).
pub fn trace_out_path() -> Option<PathBuf> {
    trace_path().lock().expect("trace path lock").clone()
}

/// Crash-time best effort, called from the `ldmo-guard` panic hook: flush
/// the JSONL trace to the registered [`trace_out_path`] (so a crashed run
/// leaves a terminated trace, not a truncated tail) and dump the flight
/// ring. Every failure is swallowed — this runs while the process is
/// already dying.
pub fn emergency_flush(reason: &str) {
    if let Some(path) = trace_out_path() {
        match flush_jsonl(&path) {
            Ok(lines) => eprintln!(
                "[trace] {reason}: {lines} events flushed to {}",
                path.display()
            ),
            Err(e) => eprintln!("[trace] {reason}: could not write {}: {e}", path.display()),
        }
    }
    flight::dump(reason);
}

/// One-call CLI setup shared by the `ldmo` binary and the bench bins.
///
/// Tracing is requested by either a `--trace-out PATH` argument (scanned
/// from `std::env::args`) or `LDMO_TRACE=1` in the environment; with the
/// env var alone the output path falls back to `LDMO_TRACE_OUT` and then to
/// `ldmo_trace.jsonl`. Returns the JSONL output path when tracing was
/// enabled, for a matching [`trace_finish`] at the end of the run. The
/// path is also registered for the crash path ([`emergency_flush`]).
pub fn trace_setup() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let mut out: Option<PathBuf> = None;
    for pair in args.windows(2) {
        if pair[0] == "--trace-out" {
            out = Some(PathBuf::from(&pair[1]));
        }
    }
    if out.is_none() && std::env::var("LDMO_TRACE").is_ok_and(|v| v == "1") {
        let path = std::env::var("LDMO_TRACE_OUT").unwrap_or_else(|_| "ldmo_trace.jsonl".into());
        out = Some(PathBuf::from(path));
    }
    if let Some(path) = &out {
        enable();
        if path.as_os_str() != "-" {
            *trace_path().lock().expect("trace path lock") = Some(path.clone());
        }
    }
    out
}

/// Writes the JSONL trace to `out` (when tracing was set up) and prints the
/// end-of-run summary tree to stderr. `--trace-out -` streams the JSONL to
/// stdout (diagnostics stay on stderr, so piped JSON stays clean). Errors
/// are reported to stderr, never panicked — telemetry must not take down a
/// finished run.
pub fn trace_finish(out: Option<&Path>) {
    let Some(path) = out else { return };
    match flush_jsonl(path) {
        Ok(lines) => eprintln!("[trace] {lines} events written to {}", path.display()),
        Err(e) => eprintln!("[trace] could not write {}: {e}", path.display()),
    }
    eprint!("{}", summary());
}
