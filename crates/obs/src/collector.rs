//! The global collector: span events, the per-thread span stack, and the
//! fixed-capacity convergence-record buffer.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum numeric metadata fields per span; further [`Span::set`] calls
/// are dropped silently. Sized for the widest span in the inventory:
/// `flow.run` carries patterns/pool/backend/attempts/sel_us/opt_us plus
/// peak_kb under memory profiling.
pub const MAX_SPAN_META: usize = 8;

/// Maximum span nesting depth tracked for parent attribution; deeper spans
/// still record but their children attach to the deepest tracked ancestor.
const MAX_SPAN_DEPTH: usize = 32;

/// Default capacity of the convergence-record buffer (override with
/// `LDMO_TRACE_RECORDS`). Sized for a full Table-I run with headroom:
/// 13 testcases × ~10 ILT runs × 29 iterations ≈ 4k records.
const DEFAULT_RECORD_CAPACITY: usize = 1 << 17;

/// A completed span, pushed to the collector when the [`Span`] guard drops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Unique id (1-based; 0 means "no span").
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 at the root.
    pub parent: u64,
    /// Static span name (DESIGN.md §8 naming: `layer.operation`).
    pub name: &'static str,
    /// Start offset from the collector epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Numeric metadata recorded via [`Span::set`].
    pub meta: [Option<(&'static str, f64)>; MAX_SPAN_META],
}

/// One per-iteration ILT convergence row (the Fig. 8 trace substrate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceRecord {
    /// Innermost enclosing span at record time (0 = none).
    pub span: u64,
    /// Offset from the collector epoch, microseconds.
    pub t_us: u64,
    /// 0-based ILT iteration index.
    pub iteration: u32,
    /// L2 error at the start of the iteration.
    pub l2: f64,
    /// L2 norm of the applied parameter update (`NaN` = not measured).
    pub step_norm: f64,
    /// EPE violation count (`-1` = not measured this iteration).
    pub epe_violations: i64,
}

pub(crate) struct Collector {
    epoch: Instant,
    next_span_id: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
    /// Preallocated at [`crate::enable`]; pushes beyond capacity are
    /// dropped and counted so recording never reallocates.
    records: Mutex<Vec<ConvergenceRecord>>,
    dropped_records: AtomicU64,
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

pub(crate) fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(|| {
        let cap = std::env::var("LDMO_TRACE_RECORDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_RECORD_CAPACITY)
            .max(1);
        Collector {
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(0),
            events: Mutex::new(Vec::with_capacity(4096)),
            records: Mutex::new(Vec::with_capacity(cap)),
            dropped_records: AtomicU64::new(0),
        }
    })
}

pub(crate) fn reset() {
    let c = collector();
    c.events.lock().expect("events lock").clear();
    c.records.lock().expect("records lock").clear();
    c.dropped_records.store(0, Ordering::SeqCst);
    c.next_span_id.store(0, Ordering::SeqCst);
}

impl Collector {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Microseconds since the collector epoch (process uptime as telemetry
/// sees it).
pub(crate) fn now_us() -> u64 {
    collector().now_us()
}

// ---------------------------------------------------------------------------
// Span-name intern table: maps `&'static str` span names to small integer
// keys (index + 1; 0 = "no name"). The flight ring and the sampler mirror
// store keys, never pointers, so a torn or stale read can at worst resolve
// to a *different registered name* — it can never be dereferenced as a
// dangling pointer. Registration locks and may allocate; the set of span
// names is small and static, so this happens a bounded number of times.
// ---------------------------------------------------------------------------

static NAME_TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();

fn name_table() -> &'static Mutex<Vec<&'static str>> {
    NAME_TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn intern_name(name: &'static str) -> usize {
    let mut table = name_table().lock().expect("name table lock");
    if let Some(i) = table
        .iter()
        .position(|&n| std::ptr::eq(n, name) || n == name)
    {
        return i + 1;
    }
    table.push(name);
    table.len()
}

/// Resolves an intern key back to its span name (`None` for 0 or
/// out-of-range keys — the caller renders those as unknown).
pub(crate) fn resolve_name(key: usize) -> Option<&'static str> {
    if key == 0 {
        return None;
    }
    name_table()
        .lock()
        .expect("name table lock")
        .get(key - 1)
        .copied()
}

// ---------------------------------------------------------------------------
// Sampler stack mirror: when profiling is on, each thread mirrors its span
// stack into a shared, atomically-readable shadow so the sampler thread
// can snapshot any thread's current span path without stopping it. The
// mirror is maintained only while `MIRROR` is set (profiler running), so
// unprofiled runs pay a single relaxed load per span open/close. Frames
// hold intern keys; the sampler reads `depth` then the frames with relaxed
// loads — a concurrent push/pop can yield an off-by-one-sample stale
// frame, which resolves to a recently valid name (sampling is statistical,
// DESIGN.md §14 states the tolerance).
// ---------------------------------------------------------------------------

pub(crate) struct SharedStack {
    depth: AtomicUsize,
    frames: [AtomicUsize; MAX_SPAN_DEPTH],
    retired: AtomicBool,
}

impl SharedStack {
    fn new() -> Self {
        SharedStack {
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicUsize::new(0)),
            retired: AtomicBool::new(false),
        }
    }

    /// Snapshot of the thread's current span path as intern keys,
    /// root-first. Empty when the thread is between spans.
    pub(crate) fn sample(&self) -> Vec<usize> {
        let depth = self.depth.load(Ordering::Acquire).min(MAX_SPAN_DEPTH);
        (0..depth)
            .map(|i| self.frames[i].load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn retired(&self) -> bool {
        self.retired.load(Ordering::Relaxed)
    }
}

static STACK_REGISTRY: OnceLock<Mutex<Vec<Arc<SharedStack>>>> = OnceLock::new();
static MIRROR: AtomicBool = AtomicBool::new(false);

fn stack_registry() -> &'static Mutex<Vec<Arc<SharedStack>>> {
    STACK_REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns the per-thread stack mirroring on or off (profiler start/stop).
pub(crate) fn set_mirror(on: bool) {
    MIRROR.store(on, Ordering::SeqCst);
}

#[inline]
pub(crate) fn mirror_active() -> bool {
    MIRROR.load(Ordering::Relaxed)
}

/// Registered, live shared stacks; retired entries (exited threads) are
/// pruned as a side effect.
pub(crate) fn sampler_stacks() -> Vec<Arc<SharedStack>> {
    let mut registry = stack_registry().lock().expect("stack registry lock");
    registry.retain(|s| !s.retired());
    registry.clone()
}

/// Ensures the calling thread has a shared span stack the sampling
/// profiler can observe. Worker pools call this once per worker at spawn;
/// span opens also ensure it lazily while profiling is on. Idempotent and
/// cheap after the first call.
pub fn register_sampler_thread() {
    SPAN_STACK.with(|s| {
        ensure_shared(&mut s.borrow_mut());
    });
}

fn ensure_shared(stack: &mut SpanStack) -> Arc<SharedStack> {
    if let Some(shared) = &stack.shared {
        return Arc::clone(shared);
    }
    let shared = Arc::new(SharedStack::new());
    stack_registry()
        .lock()
        .expect("stack registry lock")
        .push(Arc::clone(&shared));
    stack.shared = Some(Arc::clone(&shared));
    shared
}

struct SpanStack {
    ids: [u64; MAX_SPAN_DEPTH],
    depth: usize,
    /// Fallback parent while the stack is empty: pool workers adopt the
    /// span that was open on the thread that dispatched to them, so spans
    /// opened inside parallel regions stay attached to the root tree.
    adopted: u64,
    /// This thread's sampler-visible stack mirror (created on demand).
    shared: Option<Arc<SharedStack>>,
}

impl Drop for SpanStack {
    fn drop(&mut self) {
        // thread exit: retire the mirror so the sampler stops reading it
        if let Some(shared) = &self.shared {
            shared.retired.store(true, Ordering::Relaxed);
        }
    }
}

thread_local! {
    static SPAN_STACK: RefCell<SpanStack> = const {
        RefCell::new(SpanStack {
            ids: [0; MAX_SPAN_DEPTH],
            depth: 0,
            adopted: 0,
            shared: None,
        })
    };
}

fn current_span() -> u64 {
    SPAN_STACK.with(|s| {
        let s = s.borrow();
        if s.depth == 0 {
            s.adopted
        } else {
            s.ids[(s.depth - 1).min(MAX_SPAN_DEPTH - 1)]
        }
    })
}

/// Id of the innermost span on the calling thread (0 = none). Pool
/// dispatchers capture this and hand it to workers via
/// [`adopt_parent_span`].
pub fn current_span_id() -> u64 {
    current_span()
}

/// Sets the calling thread's fallback parent: spans opened (and
/// convergence rows recorded) while this thread's own span stack is empty
/// attach to `parent` instead of floating at the root. Returns the
/// previous fallback so callers can restore it when the parallel region
/// ends. Spans already on the stack are unaffected — the adoption only
/// fills the empty-stack case, so it cannot corrupt span nesting.
pub fn adopt_parent_span(parent: u64) -> u64 {
    SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        std::mem::replace(&mut s.adopted, parent)
    })
}

/// An RAII span guard. The span is recorded when the guard drops; when the
/// collector is disabled the guard still measures wall time (so callers can
/// keep populating legacy timing structs) but records nothing.
#[must_use = "a span measures the region until the guard drops"]
#[derive(Debug)]
pub struct Span {
    id: u64,
    parent: u64,
    name: &'static str,
    name_key: usize,
    start: Instant,
    start_us: u64,
    meta: [Option<(&'static str, f64)>; MAX_SPAN_META],
    active: bool,
    mirrored: bool,
}

/// Opens a span named `name` under the current thread's innermost span.
///
/// Names must be `'static` (recording never allocates for them) and follow
/// the `layer.operation` convention of DESIGN.md §8.
pub fn span(name: &'static str) -> Span {
    let start = Instant::now();
    if !crate::enabled() {
        return Span {
            id: 0,
            parent: 0,
            name,
            name_key: 0,
            start,
            start_us: 0,
            meta: [None; MAX_SPAN_META],
            active: false,
            mirrored: false,
        };
    }
    let c = collector();
    let id = c.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
    let parent = current_span();
    // the intern key feeds the flight ring and the sampler mirror; only
    // computed when at least one of them can observe it
    let name_key = if crate::flight::active() || mirror_active() {
        intern_name(name)
    } else {
        0
    };
    let mut mirrored = false;
    SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        if s.depth < MAX_SPAN_DEPTH {
            let d = s.depth;
            s.ids[d] = id;
        }
        s.depth += 1;
        if mirror_active() {
            let shared = ensure_shared(&mut s);
            let d = shared.depth.load(Ordering::Relaxed);
            if d < MAX_SPAN_DEPTH {
                shared.frames[d].store(name_key, Ordering::Relaxed);
            }
            shared.depth.store(d + 1, Ordering::Release);
            // each span pops exactly what it pushed, even if the profiler
            // stops (or starts) while it is open
            mirrored = true;
        }
    });
    Span {
        id,
        parent,
        name,
        name_key,
        start,
        start_us: c.now_us(),
        meta: [None; MAX_SPAN_META],
        active: true,
        mirrored,
    }
}

impl Span {
    /// The span id (0 when the collector was disabled at creation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Wall time since the span opened; valid whether or not the collector
    /// is enabled.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Attaches a numeric metadata field, overwriting an existing field
    /// with the same key. At most [`MAX_SPAN_META`] distinct keys are kept;
    /// further keys are dropped.
    pub fn set(&mut self, key: &'static str, value: f64) {
        if !self.active {
            return;
        }
        for slot in &mut self.meta {
            match slot {
                Some((k, v)) if *k == key => {
                    *v = value;
                    return;
                }
                None => {
                    *slot = Some((key, value));
                    return;
                }
                _ => {}
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.depth > 0 {
                s.depth -= 1;
            }
            if self.mirrored {
                if let Some(shared) = &s.shared {
                    let d = shared.depth.load(Ordering::Relaxed);
                    shared.depth.store(d.saturating_sub(1), Ordering::Release);
                }
            }
        });
        let c = collector();
        let dur_us = self.start.elapsed().as_micros() as u64;
        if crate::flight::active() {
            let key = if self.name_key != 0 {
                self.name_key
            } else {
                // flight recording turned on after this span opened
                intern_name(self.name)
            };
            crate::flight::record_span(self.id, self.parent, key, self.start_us, dur_us);
        }
        let event = SpanEvent {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            dur_us,
            meta: self.meta,
        };
        c.events.lock().expect("events lock").push(event);
    }
}

/// Records one ILT convergence row under the current span.
///
/// Allocation-free once the collector is enabled: the row is copied into a
/// buffer preallocated by [`crate::enable`]; at capacity the row is dropped
/// and counted in [`dropped_records`]. A no-op (one relaxed load) when the
/// collector is disabled.
///
/// `step_norm = NaN` and `epe_violations = -1` mean "not measured".
#[inline]
pub fn convergence(iteration: u32, l2: f64, step_norm: f64, epe_violations: i64) {
    if !crate::enabled() {
        return;
    }
    let c = collector();
    let record = ConvergenceRecord {
        span: current_span(),
        t_us: c.now_us(),
        iteration,
        l2,
        step_norm,
        epe_violations,
    };
    if crate::flight::active() {
        crate::flight::record_conv(
            record.span,
            record.t_us,
            iteration,
            l2,
            step_norm,
            epe_violations,
        );
    }
    let mut records = c.records.lock().expect("records lock");
    if records.len() < records.capacity() {
        records.push(record);
    } else {
        c.dropped_records.fetch_add(1, Ordering::Relaxed);
    }
}

/// Convergence rows dropped because the preallocated buffer was full.
pub fn dropped_records() -> u64 {
    collector().dropped_records.load(Ordering::SeqCst)
}

/// Capacity of the convergence-record buffer.
pub fn convergence_capacity() -> usize {
    collector().records.lock().expect("records lock").capacity()
}

/// A copy of all completed span events (test/sink access).
pub fn events_snapshot() -> Vec<SpanEvent> {
    collector().events.lock().expect("events lock").clone()
}

/// A copy of all convergence records (test/sink access).
pub fn records_snapshot() -> Vec<ConvergenceRecord> {
    collector().records.lock().expect("records lock").clone()
}
